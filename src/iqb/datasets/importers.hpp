// Importers for the public dataset formats the paper cites.
//
// Users with access to the real data can feed it straight into the
// pipeline:
//
//  * Ookla "Global Fixed and Mobile Network Performance" open data
//    (registry.opendata.aws/speedtest-global-performance): quarterly
//    tiles with PRE-AGGREGATED columns. We accept the documented CSV
//    schema (quadkey, avg_d_kbps, avg_u_kbps, avg_lat_ms, tests, ...)
//    and produce AggregateCells directly — matching how the real IQB
//    must treat Ookla, since raw tests are not published.
//
//  * M-Lab NDT "unified views" (measurement_lab.ndt.unified_downloads
//    / _uploads exported as CSV): per-test rows. We accept a merged
//    export with the documented column names and produce raw
//    MeasurementRecords.
//
// Both importers validate eagerly and report row-precise errors;
// ingesting measurement data silently wrong is worse than failing.
// In lenient mode (robust::IngestPolicy) malformed rows are diverted
// to a robust::Quarantine with row-precise errors instead of aborting
// the import; the import still fails if the error *rate* exceeds the
// policy threshold (a mostly-corrupt feed must not be trusted).
#pragma once

#include <string>
#include <vector>

#include "iqb/datasets/aggregate.hpp"
#include "iqb/datasets/record.hpp"
#include "iqb/robust/quarantine.hpp"

namespace iqb::obs {
struct Telemetry;
}

namespace iqb::datasets {

/// Ookla open-data tile CSV -> pre-aggregated cells.
///
/// Expected header (subset, extra columns ignored):
///   quadkey,avg_d_kbps,avg_u_kbps,avg_lat_ms,tests
/// Each tile becomes a region (the quadkey, or `region_override` for
/// all rows if non-empty, letting callers merge tiles into one region).
/// Values are means, not percentiles — exactly the limitation of the
/// real feed; they are imported as-is with dataset name "ookla".
util::Result<AggregateTable> import_ookla_tiles_csv(
    std::string_view csv_text, const std::string& region_override = "");

/// Policy-aware variant: in lenient mode malformed rows land in
/// `quarantine` (may be null to only count implicitly) and the import
/// continues; strict mode behaves exactly like the overload above.
/// `telemetry`, when non-null, receives rows read / rejected /
/// quarantined counters labeled {importer="ookla_csv"}; the imported
/// data is identical either way.
util::Result<AggregateTable> import_ookla_tiles_csv(
    std::string_view csv_text, const std::string& region_override,
    const robust::IngestPolicy& policy,
    robust::Quarantine* quarantine = nullptr,
    obs::Telemetry* telemetry = nullptr);

/// M-Lab NDT unified-views CSV -> per-test records.
///
/// Expected header (subset, extra columns ignored):
///   date,client_region,client_asn_name,direction,throughput_mbps,
///   min_rtt_ms,loss_rate
/// `direction` is "download" or "upload"; each row yields one record
/// with that single throughput metric filled (plus latency/loss on
/// download rows, which is where NDT measures them).
util::Result<std::vector<MeasurementRecord>> import_ndt_unified_csv(
    std::string_view csv_text);

/// Policy-aware variant; see import_ookla_tiles_csv (telemetry label
/// {importer="ndt_csv"}).
util::Result<std::vector<MeasurementRecord>> import_ndt_unified_csv(
    std::string_view csv_text, const robust::IngestPolicy& policy,
    robust::Quarantine* quarantine = nullptr,
    obs::Telemetry* telemetry = nullptr);

}  // namespace iqb::datasets
