// Zero-copy ingestion fast path for the record CSV schema.
//
// The legacy reader (io.hpp) materializes every field of every row as
// a std::string before binding; for multi-megabyte measurement dumps
// that is one allocation per field. This reader maps (or slurps) the
// file once and walks it as std::string_view slices: fields are bound
// straight from the mapped bytes via std::from_chars, and only the
// four identity strings of accepted records are ever copied.
//
// Parity contract: for any input, records_from_csv_fast produces the
// exact records, the exact error message, and the exact quarantine
// contents (same source, row indices and messages, in the same order)
// as records_from_csv. The legacy reader stays in the tree as the
// oracle; tests/ingest/fast_csv_parity_test.cpp holds the two to
// byte-identical behavior. Documents containing a '"' anywhere fall
// back to the legacy parser wholesale (quoted fields cannot be sliced
// zero-copy once "" escapes appear), which keeps the contract trivially.
//
// Parallel mode splits the data region at newline boundaries into
// per-worker chunks, parses each into a private slab, and splices the
// slabs in chunk order, so the output is byte-identical to the serial
// path regardless of thread count (see DESIGN.md §16 for the
// determinism argument).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "iqb/datasets/io.hpp"
#include "iqb/datasets/record.hpp"
#include "iqb/robust/quarantine.hpp"
#include "iqb/util/result.hpp"
#include "iqb/util/thread_pool.hpp"

namespace iqb::datasets {

/// Observability of one fast parse, for benches and tests.
struct FastParseStats {
  std::size_t rows_total = 0;  ///< Data rows seen (trailing blank excluded).
  std::size_t chunks = 0;      ///< Chunks the data region was split into.
  bool fell_back_to_legacy = false;  ///< Quoted document → legacy parser.
};

struct FastParseOptions {
  robust::IngestPolicy policy = robust::IngestPolicy::strict();
  /// Lenient-mode sink; when null in lenient mode a local quarantine
  /// is used (mirrors records_from_csv).
  robust::Quarantine* quarantine = nullptr;
  /// Execution width for chunked parsing: 1 = serial, 0 = hardware
  /// concurrency, N = N-wide (util::ThreadPool::resolve_threads).
  std::size_t threads = 1;
  /// Optional pool to reuse across loads (e.g. the daemon's); when
  /// null and threads != 1 a transient pool is created.
  util::ThreadPool* pool = nullptr;
  FastParseStats* stats = nullptr;  ///< Optional, filled on return.
};

/// Strict parse of record CSV text. Zero-copy equivalent of
/// records_from_csv(text).
util::Result<std::vector<MeasurementRecord>> records_from_csv_fast(
    std::string_view csv_text);

/// Policy-aware parse. Zero-copy equivalent of
/// records_from_csv(text, policy, quarantine), plus optional chunked
/// parallelism.
util::Result<std::vector<MeasurementRecord>> records_from_csv_fast(
    std::string_view csv_text, const FastParseOptions& options);

/// load_records LoadOptions plus parse parallelism, for the mmap'd
/// file loader below.
struct LoadFileOptions {
  robust::RetryPolicy retry;
  robust::IngestPolicy ingest = robust::IngestPolicy::lenient();
  /// Optional metrics/trace sink (non-owning); emits the same
  /// iqb_ingest_* series as load_records, labeled by path.
  obs::Telemetry* telemetry = nullptr;
  std::size_t threads = 1;          ///< See FastParseOptions::threads.
  util::ThreadPool* pool = nullptr;
  FastParseStats* stats = nullptr;
};

/// Fast-path sibling of load_records_csv: maps the file (read()-slurp
/// fallback inside util::fs::MappedFile), sniffs the leading bytes —
/// IQBREC magic loads the binary format, a leading '{'/'[' is rejected
/// as JSON with a clear error, anything else parses as record CSV via
/// records_from_csv_fast — and reports through the same retry /
/// circuit-breaker / quarantine / telemetry seams as load_records.
util::Result<LoadOutcome> load_records_file(
    const std::string& path, const LoadFileOptions& options = {},
    robust::CircuitBreaker* breaker = nullptr,
    robust::Quarantine* quarantine = nullptr);

}  // namespace iqb::datasets
