// Columnar index over a record store: interned symbols, records
// partitioned by (region, dataset) group, contiguous per-metric value
// columns.
//
// The aggregation tier's hot loop asks the same questions for every
// (region, dataset, metric) cell — "which records belong to this
// cell, and what are their values?" — and answering each from a full
// scan with per-record string comparisons is accidentally quadratic
// in the cell count. A StoreIndex answers all of them from one O(N)
// pass: every region/dataset/ISP string is interned to a dense id
// once, records are bucketed into (region, dataset) groups, and each
// group stores one contiguous double column per metric, in store
// order, ready for selection-based percentiles.
//
// The index is immutable once built; RecordStore caches one and
// invalidates it on mutation (see RecordStore::index()).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "iqb/datasets/record.hpp"

namespace iqb::datasets {

/// Position of a metric in per-metric column arrays.
constexpr std::size_t metric_index(Metric metric) noexcept {
  return static_cast<std::size_t>(metric);
}

/// Interns strings to dense, insertion-ordered uint32 ids.
class SymbolTable {
 public:
  /// Id for `name`, inserting it if unseen. Ids are dense: the K-th
  /// distinct string interned gets id K-1.
  std::uint32_t intern(const std::string& name);

  /// Id for `name` if it was interned, else nullopt.
  std::optional<std::uint32_t> find(const std::string& name) const;

  const std::string& name(std::uint32_t id) const { return names_[id]; }
  std::size_t size() const noexcept { return names_.size(); }

  /// All interned strings, sorted lexicographically.
  std::vector<std::string> sorted_names() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> ids_;
};

class StoreIndex {
 public:
  /// One (region, dataset) partition of the store.
  struct Group {
    std::uint32_t region_id = 0;
    std::uint32_t dataset_id = 0;
    /// Row numbers (indices into the source record span) of the
    /// group's records, in store order.
    std::vector<std::uint32_t> rows;
    /// Present values of each metric across the group's records, in
    /// store order — the same sequence a filtered scan would yield.
    std::array<std::vector<double>, kAllMetrics.size()> columns;

    const std::vector<double>& column(Metric metric) const noexcept {
      return columns[metric_index(metric)];
    }
  };

  /// One pass over `records`: intern symbols, partition into groups,
  /// fill columns. Groups come out sorted by (region name, dataset
  /// name) so iteration order matches the sorted-distinct order the
  /// scan path used.
  static StoreIndex build(std::span<const MeasurementRecord> records);

  /// Groups sorted by (region name, dataset name).
  const std::vector<Group>& groups() const noexcept { return groups_; }

  /// Group lookup by names; null if the combination has no records.
  const Group* find(const std::string& region,
                    const std::string& dataset) const;

  /// Distinct names, sorted — the regions()/dataset_names()/isps()
  /// answers, precomputed.
  const std::vector<std::string>& regions() const noexcept {
    return sorted_regions_;
  }
  const std::vector<std::string>& datasets() const noexcept {
    return sorted_datasets_;
  }
  const std::vector<std::string>& isps() const noexcept {
    return sorted_isps_;
  }

  const SymbolTable& region_symbols() const noexcept { return regions_; }
  const SymbolTable& dataset_symbols() const noexcept { return datasets_; }
  const SymbolTable& isp_symbols() const noexcept { return isps_; }

  std::size_t record_count() const noexcept { return record_count_; }

 private:
  static std::uint64_t group_key(std::uint32_t region_id,
                                 std::uint32_t dataset_id) noexcept {
    return (static_cast<std::uint64_t>(region_id) << 32) | dataset_id;
  }

  SymbolTable regions_;
  SymbolTable datasets_;
  SymbolTable isps_;
  std::vector<Group> groups_;
  /// (region_id, dataset_id) -> index into groups_.
  std::unordered_map<std::uint64_t, std::size_t> group_lookup_;
  std::vector<std::string> sorted_regions_;
  std::vector<std::string> sorted_datasets_;
  std::vector<std::string> sorted_isps_;
  std::size_t record_count_ = 0;
};

}  // namespace iqb::datasets
