// In-memory record store with filtering, grouping and column
// extraction — the query layer between raw measurement records and
// the aggregation tier.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "iqb/datasets/index.hpp"
#include "iqb/datasets/record.hpp"

namespace iqb::datasets {

/// Declarative record filter; empty/unset members match everything.
struct RecordFilter {
  std::optional<std::string> dataset;
  std::optional<std::string> region;
  std::optional<std::string> isp;
  std::optional<util::Timestamp> from;  ///< Inclusive.
  std::optional<util::Timestamp> to;    ///< Exclusive.

  bool matches(const MeasurementRecord& record) const noexcept;
};

class RecordStore {
 public:
  RecordStore() = default;
  explicit RecordStore(std::vector<MeasurementRecord> records)
      : records_(std::move(records)) {}

  // The cached index is immutable and derived purely from the
  // records, so copies share it and moves carry it; the index mutex
  // itself is per-store.
  RecordStore(const RecordStore& other);
  RecordStore& operator=(const RecordStore& other);
  RecordStore(RecordStore&& other) noexcept;
  RecordStore& operator=(RecordStore&& other) noexcept;

  /// Append one record. Invalid records (non-finite / out-of-range
  /// metric values) are rejected.
  util::Result<void> add(MeasurementRecord record);

  /// Append, skipping invalid records; returns how many were skipped.
  std::size_t add_all(std::vector<MeasurementRecord> records);

  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }
  std::span<const MeasurementRecord> records() const noexcept { return records_; }

  /// Records matching a filter (copies; stores are small relative to
  /// simulation cost, and callers usually aggregate immediately).
  std::vector<MeasurementRecord> query(const RecordFilter& filter) const;

  /// Present values of one metric across matching records, in
  /// canonical units. Records missing the metric are skipped.
  std::vector<double> metric_values(Metric metric,
                                    const RecordFilter& filter = {}) const;

  /// Distinct values, sorted, for iteration in deterministic order.
  /// Served from the columnar index (one O(N) build, then lookups).
  std::vector<std::string> regions() const;
  std::vector<std::string> dataset_names() const;
  std::vector<std::string> isps() const;

  /// Group matching records by region name (deep copies; prefer
  /// by_region_refs when the caller only reads).
  std::map<std::string, std::vector<MeasurementRecord>> by_region(
      const RecordFilter& filter = {}) const;

  /// As by_region, but non-owning pointers into the store — no record
  /// copies. Pointers are invalidated by any mutation of the store.
  std::map<std::string, std::vector<const MeasurementRecord*>> by_region_refs(
      const RecordFilter& filter = {}) const;

  /// Merge another store's records into this one.
  void merge(const RecordStore& other);

  void clear() noexcept {
    records_.clear();
    invalidate_index();
  }

  /// Columnar index over the current records (see index.hpp). Built
  /// lazily in one O(N) pass on first use and cached until the next
  /// mutation. Safe to call from several reader threads; the returned
  /// reference stays valid until the store is mutated or destroyed.
  const StoreIndex& index() const;

  /// True if index() would return a cached index without building.
  bool index_ready() const noexcept;

 private:
  void invalidate_index() noexcept;

  std::vector<MeasurementRecord> records_;
  mutable std::mutex index_mutex_;
  mutable std::shared_ptr<const StoreIndex> index_;
};

/// Copy of the store with region keys replaced by "region<sep>isp",
/// so the region-keyed aggregation/scoring pipeline produces per-ISP
/// results within each region ("which provider is holding this region
/// back?") without any changes to the scoring tier.
RecordStore rekey_by_region_isp(const RecordStore& store, char separator = '/');

}  // namespace iqb::datasets
