#include "iqb/datasets/fast_csv.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <optional>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "iqb/datasets/record_io.hpp"
#include "iqb/obs/telemetry.hpp"
#include "iqb/util/fs.hpp"
#include "iqb/util/strings.hpp"

namespace iqb::datasets {

using util::ErrorCode;
using util::Result;
using util::make_error;

namespace {

/// Chunks below this size are not worth a thread handoff.
constexpr std::size_t kMinChunkBytes = 64 * 1024;

bool all_whitespace(std::string_view text) noexcept {
  for (char c : text) {
    if (c != ' ' && c != '\t' && c != '\r' && c != '\n') return false;
  }
  return true;
}

/// Position of the next ',', '\r' or '\n' at or after `pos`. The scan
/// touches every byte of the document, so it runs sixteen bytes per
/// step with SSE2 compares where available (baseline on x86-64), else
/// eight bytes per step with the SWAR zero-byte trick (borrows in
/// the `x - 0x01..` probe only corrupt bytes above the first true
/// match on LE, so the first hit is exact).
std::size_t next_stop(const char* data, std::size_t pos,
                      std::size_t size) noexcept {
#if defined(__SSE2__)
  const __m128i comma = _mm_set1_epi8(',');
  const __m128i cr = _mm_set1_epi8('\r');
  const __m128i lf = _mm_set1_epi8('\n');
  while (pos + 16 <= size) {
    const __m128i block =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + pos));
    const __m128i hit =
        _mm_or_si128(_mm_or_si128(_mm_cmpeq_epi8(block, comma),
                                  _mm_cmpeq_epi8(block, cr)),
                     _mm_cmpeq_epi8(block, lf));
    const unsigned mask =
        static_cast<unsigned>(_mm_movemask_epi8(hit));
    if (mask != 0) {
      return pos + static_cast<std::size_t>(std::countr_zero(mask));
    }
    pos += 16;
  }
#endif
  if constexpr (std::endian::native == std::endian::little) {
    constexpr std::uint64_t kOnes = 0x0101010101010101ULL;
    constexpr std::uint64_t kHigh = 0x8080808080808080ULL;
    const auto zero_bytes = [](std::uint64_t x) {
      return (x - kOnes) & ~x & kHigh;
    };
    while (pos + 8 <= size) {
      std::uint64_t w;
      std::memcpy(&w, data + pos, 8);
      const std::uint64_t m = zero_bytes(w ^ (kOnes * ',')) |
                              zero_bytes(w ^ (kOnes * '\r')) |
                              zero_bytes(w ^ (kOnes * '\n'));
      if (m != 0) {
        return pos + (static_cast<std::size_t>(std::countr_zero(m)) >> 3);
      }
      pos += 8;
    }
  }
  while (pos < size) {
    const char c = data[pos];
    if (c == ',' || c == '\r' || c == '\n') break;
    ++pos;
  }
  return pos;
}

/// Scan one quote-free CSV row starting at `pos`. Fields are sliced
/// into `fields` (up to capacity; the count keeps going regardless so
/// arity errors report the true width). Advances pos past the row
/// terminator and bumps `newlines` when a '\n' is consumed — exactly
/// the line bookkeeping of util::CsvParser, including the lone-'\r'
/// row ending that terminates a row without advancing the line.
std::size_t scan_row(std::string_view text, std::size_t& pos,
                     std::size_t& newlines, std::string_view* fields,
                     std::size_t capacity) {
  const char* data = text.data();
  const std::size_t size = text.size();
  std::size_t count = 0;
  while (true) {
    const std::size_t start = pos;
    pos = next_stop(data, pos, size);
    if (count < capacity) {
      fields[count] = std::string_view(data + start, pos - start);
    }
    ++count;
    if (pos >= size) break;
    const char c = data[pos];
    if (c == ',') {
      ++pos;
      continue;
    }
    if (c == '\r') {
      ++pos;
      if (pos < size && data[pos] == '\n') {
        ++pos;
        ++newlines;
      }
      break;
    }
    ++pos;  // '\n'
    ++newlines;
    break;
  }
  return count;
}

/// A row the chunk parser could not turn into a record. Positions are
/// chunk-local; the coordinator rebases them to global row and line
/// numbers before formatting, so messages match the serial reader
/// bit-for-bit no matter how the document was split.
struct RowIssue {
  std::size_t local_row = 0;  ///< 0-based data row within the chunk.
  std::size_t local_nl = 0;   ///< Newlines consumed before the row.
  bool arity = false;         ///< Wrong field count (fatal, like legacy).
  std::size_t fields = 0;     ///< Actual field count (arity only).
  std::string detail;         ///< Message suffix after row_label(...).
};

struct ChunkResult {
  std::vector<MeasurementRecord> records;
  std::vector<RowIssue> issues;
  std::size_t rows = 0;      ///< Data rows seen in this chunk.
  std::size_t newlines = 0;  ///< '\n' consumed in this chunk.
  bool last_row_sole_empty = false;
};

/// util::trim, inlined: it runs five times per row and the fields
/// almost never carry whitespace, so the common case is two compares.
inline std::string_view trim_fast(std::string_view s) noexcept {
  const char* b = s.data();
  const char* e = b + s.size();
  while (b < e && (*b == ' ' || *b == '\t' || *b == '\r' || *b == '\n')) ++b;
  while (e > b &&
         (e[-1] == ' ' || e[-1] == '\t' || e[-1] == '\r' || e[-1] == '\n')) {
    --e;
  }
  return std::string_view(b, static_cast<std::size_t>(e - b));
}

constexpr bool is_digit(char c) noexcept {
  return static_cast<unsigned>(static_cast<unsigned char>(c)) - '0' <= 9u;
}

constexpr int two_digits(const char* p) noexcept {
  return (p[0] - '0') * 10 + (p[1] - '0');
}

bool is_leap(int year) noexcept {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int days_in_month(int year, int month) noexcept {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31,
                                  30, 31};
  if (month == 2 && is_leap(year)) return 29;
  return kDays[month - 1];
}

/// Days from the unix epoch, proleptic Gregorian (Howard Hinnant's
/// algorithm, same as util::Timestamp).
std::int64_t days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

/// Parse the canonical "YYYY-MM-DD" / "YYYY-MM-DD[T ]HH:MM:SS"
/// (optional trailing 'Z') shape with in-range fields. Anything else —
/// surrounding whitespace, signed or padded components, out-of-range
/// dates — returns false and the caller delegates to
/// util::Timestamp::parse, which is the semantic (and error-message)
/// authority. On the canonical shape the two agree by construction.
bool parse_timestamp_fast(std::string_view s, std::int64_t& unix_seconds) {
  if (!s.empty() && (s.back() == 'Z' || s.back() == 'z')) s.remove_suffix(1);
  if (s.size() != 10 && s.size() != 19) return false;
  if (!is_digit(s[0]) || !is_digit(s[1]) || !is_digit(s[2]) ||
      !is_digit(s[3]) || s[4] != '-' || !is_digit(s[5]) || !is_digit(s[6]) ||
      s[7] != '-' || !is_digit(s[8]) || !is_digit(s[9])) {
    return false;
  }
  const int year = two_digits(s.data()) * 100 + two_digits(s.data() + 2);
  const int month = two_digits(s.data() + 5);
  const int day = two_digits(s.data() + 8);
  if (month < 1 || month > 12 || day < 1 || day > days_in_month(year, month)) {
    return false;
  }
  int hour = 0;
  int minute = 0;
  int second = 0;
  if (s.size() == 19) {
    if ((s[10] != 'T' && s[10] != ' ') || s[13] != ':' || s[16] != ':' ||
        !is_digit(s[11]) || !is_digit(s[12]) || !is_digit(s[14]) ||
        !is_digit(s[15]) || !is_digit(s[17]) || !is_digit(s[18])) {
      return false;
    }
    hour = two_digits(s.data() + 11);
    minute = two_digits(s.data() + 14);
    second = two_digits(s.data() + 17);
    if (hour > 23 || minute > 59 || second > 59) return false;
  }
  unix_seconds = days_from_civil(year, month, day) * 86400 + hour * 3600 +
                 minute * 60 + second;
  return true;
}

/// Parse a plain "digits[.digits]" decimal whose value is exactly
/// representable as integer-mantissa / power-of-ten with both sides
/// exact in double (Clinger's fast path: one correctly-rounded IEEE
/// division gives the same bits std::from_chars would). Signs,
/// exponents, nan/inf, and long mantissas return false and the caller
/// delegates to util::parse_double.
bool parse_double_fast(std::string_view s, double& out) {
  std::uint64_t mantissa = 0;
  int digits = 0;
  int frac = 0;
  bool dot = false;
  for (const char c : s) {
    if (is_digit(c)) {
      if (++digits > 19) return false;
      mantissa = mantissa * 10 + static_cast<std::uint64_t>(c - '0');
      if (dot) ++frac;
    } else if (c == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  if (digits == 0 || mantissa >= (std::uint64_t{1} << 53)) return false;
  static constexpr double kPow10[] = {1e0,  1e1,  1e2,  1e3,  1e4,  1e5,
                                      1e6,  1e7,  1e8,  1e9,  1e10, 1e11,
                                      1e12, 1e13, 1e14, 1e15, 1e16, 1e17,
                                      1e18, 1e19, 1e20, 1e21, 1e22};
  if (frac >= static_cast<int>(std::size(kPow10))) return false;
  out = static_cast<double>(mantissa) / kPow10[frac];
  return true;
}

/// Bind one arity-checked row to a record. On failure returns false
/// and fills `detail` with the suffix the legacy reader would append
/// to row_label(row, line).
bool bind_row(const std::string_view* f, MeasurementRecord& record,
              std::string& detail) {
  record.dataset.assign(f[0]);
  record.region.assign(f[1]);
  record.isp.assign(f[2]);
  record.subscriber_id.assign(f[3]);
  std::int64_t unix_seconds = 0;
  if (parse_timestamp_fast(f[4], unix_seconds)) {
    record.timestamp = util::Timestamp(unix_seconds);
  } else {
    auto ts = util::Timestamp::parse(f[4]);
    if (!ts.ok()) {
      detail = ": " + ts.error().message;
      return false;
    }
    record.timestamp = ts.value();
  }
  // One inlined block per metric column (direct member assignment; the
  // out-of-line set_value switch costs real time at millions of rows
  // per second). Column order matches kMetricBindings / the header.
  const auto bind_metric = [&](std::size_t column, auto&& assign) {
    const std::string_view field = trim_fast(f[column]);
    if (field.empty()) return true;
    double value = 0.0;
    if (!parse_double_fast(field, value)) {
      auto parsed = util::parse_double(field);
      if (!parsed.ok()) {
        detail = " column '" + record_csv_header()[column] +
                 "': " + parsed.error().message;
        return false;
      }
      value = parsed.value();
    }
    assign(value);
    return true;
  };
  if (!bind_metric(5, [&](double v) { record.download = util::Mbps(v); }) ||
      !bind_metric(6, [&](double v) { record.upload = util::Mbps(v); }) ||
      !bind_metric(7, [&](double v) { record.latency = util::Millis(v); }) ||
      !bind_metric(8,
                   [&](double v) { record.loaded_latency = util::Millis(v); }) ||
      !bind_metric(9, [&](double v) { record.loss = util::LossRate(v); })) {
    return false;
  }
  if (!record.is_valid()) {
    detail = ": metric value out of range";
    return false;
  }
  return true;
}

/// Parse one quote-free chunk of the data region. The chunk starts at
/// a row boundary and ends at a row boundary (or document end).
void parse_chunk(std::string_view chunk, std::size_t expected_fields,
                 ChunkResult& out) {
  std::size_t pos = 0;
  std::size_t nl = 0;
  std::string_view fields[16];
  // Typical record rows run ~100 bytes; a slight under-reserve costs
  // one growth step, a large over-reserve would cost real memory.
  out.records.reserve(chunk.size() / 96);
  while (pos < chunk.size()) {
    const std::size_t row_nl = nl;
    const std::size_t count =
        scan_row(chunk, pos, nl, fields, std::size(fields));
    const std::size_t local_row = out.rows++;
    out.last_row_sole_empty = (count == 1 && fields[0].empty());
    if (count != expected_fields) {
      RowIssue issue;
      issue.local_row = local_row;
      issue.local_nl = row_nl;
      issue.arity = true;
      issue.fields = count;
      out.issues.push_back(std::move(issue));
      continue;
    }
    MeasurementRecord& record = out.records.emplace_back();
    std::string detail;
    if (!bind_row(fields, record, detail)) {
      out.records.pop_back();
      RowIssue issue;
      issue.local_row = local_row;
      issue.local_nl = row_nl;
      issue.detail = std::move(detail);
      out.issues.push_back(std::move(issue));
    }
  }
  out.newlines = nl;
}

/// Split [0, size) into at most `want` chunks on '\n' boundaries.
/// Returns chunk end offsets (the last is always `size`).
std::vector<std::size_t> chunk_boundaries(std::string_view data,
                                          std::size_t want) {
  std::vector<std::size_t> ends;
  if (want <= 1 || data.size() < 2 * kMinChunkBytes) {
    ends.push_back(data.size());
    return ends;
  }
  want = std::min(want, data.size() / kMinChunkBytes);
  const std::size_t target = data.size() / want;
  std::size_t begin = 0;
  for (std::size_t c = 0; c + 1 < want && begin < data.size(); ++c) {
    std::size_t cut = begin + target;
    if (cut >= data.size()) break;
    const char* nl = static_cast<const char*>(
        std::memchr(data.data() + cut, '\n', data.size() - cut));
    if (nl == nullptr) break;  // no later boundary: last chunk takes the rest
    cut = static_cast<std::size_t>(nl - data.data()) + 1;
    ends.push_back(cut);
    begin = cut;
  }
  ends.push_back(data.size());
  return ends;
}

}  // namespace

Result<std::vector<MeasurementRecord>> records_from_csv_fast(
    std::string_view csv_text) {
  return records_from_csv_fast(csv_text, FastParseOptions{});
}

Result<std::vector<MeasurementRecord>> records_from_csv_fast(
    std::string_view csv_text, const FastParseOptions& options) {
  if (options.stats) *options.stats = FastParseStats{};
  if (all_whitespace(csv_text)) {
    return make_error(ErrorCode::kEmptyInput, "empty CSV document");
  }
  // Quoted fields cannot be sliced zero-copy once "" escapes appear;
  // any quote anywhere sends the whole document through the legacy
  // state machine, which makes parity trivial for that class of input.
  if (std::memchr(csv_text.data(), '"', csv_text.size()) != nullptr) {
    if (options.stats) options.stats->fell_back_to_legacy = true;
    return records_from_csv(csv_text, options.policy, options.quarantine);
  }

  const std::vector<std::string>& expected = record_csv_header();

  // Header row: validated once; data binding below is positional.
  std::size_t pos = 0;
  std::size_t header_newlines = 0;
  std::string_view header_fields[16];
  const std::size_t header_count = scan_row(
      csv_text, pos, header_newlines, header_fields, std::size(header_fields));
  bool header_ok = header_count == expected.size();
  for (std::size_t i = 0; header_ok && i < header_count; ++i) {
    header_ok = header_fields[i] == expected[i];
  }
  if (!header_ok) {
    // Legacy surfaces arity errors before the header check (parse_csv
    // validates the whole table first); delegating reproduces both the
    // ordering and the exact "unexpected record CSV header" message.
    if (options.stats) options.stats->fell_back_to_legacy = true;
    return records_from_csv(csv_text, options.policy, options.quarantine);
  }
  // Physical line of the first data row: the header starts on line 1
  // and consumes header_newlines newlines (0 when it ends at EOF or
  // with a lone '\r').
  const std::size_t first_data_line = 1 + header_newlines;

  const std::string_view data = csv_text.substr(pos);
  const std::size_t width = util::ThreadPool::resolve_threads(options.threads);
  const std::vector<std::size_t> ends = chunk_boundaries(data, width);
  std::vector<ChunkResult> chunks(ends.size());

  auto parse_one = [&](std::size_t c) {
    const std::size_t begin = c == 0 ? 0 : ends[c - 1];
    parse_chunk(data.substr(begin, ends[c] - begin), expected.size(),
                chunks[c]);
  };
  if (chunks.size() == 1) {
    parse_one(0);
  } else if (options.pool != nullptr) {
    options.pool->parallel_for(chunks.size(), parse_one);
  } else {
    util::ThreadPool pool(width);
    pool.parallel_for(chunks.size(), parse_one);
  }

  // A document-final blank line parses as a sole empty row; the legacy
  // reader drops it (and only it — a blank line anywhere else is an
  // arity error). It lives in the last non-empty chunk by construction.
  for (std::size_t c = chunks.size(); c-- > 0;) {
    ChunkResult& chunk = chunks[c];
    if (chunk.rows == 0) continue;
    if (chunk.last_row_sole_empty) {
      --chunk.rows;
      // The dropped row is always that chunk's final issue (an empty
      // row can never bind to a record).
      chunk.issues.pop_back();
    }
    break;
  }

  // Rebase chunk-local positions to global row indices and physical
  // lines (prefix sums over chunk row/newline counts).
  std::size_t total_rows = 0;
  std::size_t total_records = 0;
  for (const ChunkResult& chunk : chunks) {
    total_rows += chunk.rows;
    total_records += chunk.records.size();
  }
  if (options.stats) {
    options.stats->rows_total = total_rows;
    options.stats->chunks = chunks.size();
  }

  // Arity errors are fatal in both modes, and the legacy reader
  // reports the first one before looking at row contents (parse_csv
  // validates the whole table up front). Row numbering there counts
  // the header as row 0, hence the +1.
  {
    std::size_t row_base = 0;
    std::size_t nl_base = 0;
    for (const ChunkResult& chunk : chunks) {
      for (const RowIssue& issue : chunk.issues) {
        if (!issue.arity) continue;
        const std::size_t row = row_base + issue.local_row;
        const std::size_t line = first_data_line + nl_base + issue.local_nl;
        return make_error(ErrorCode::kParseError,
                          "CSV row " + std::to_string(row + 1) + " (line " +
                              std::to_string(line) + ") has " +
                              std::to_string(issue.fields) +
                              " fields, expected " +
                              std::to_string(expected.size()));
      }
      row_base += chunk.rows;
      nl_base += chunk.newlines;
    }
  }

  robust::Quarantine local(options.policy.max_stored);
  robust::Quarantine* quarantine = options.quarantine;
  if (options.policy.mode == robust::IngestMode::kLenient && !quarantine) {
    quarantine = &local;
  }

  std::vector<MeasurementRecord> records;
  // Serial parses (the common case) steal the chunk's vector outright;
  // moving 100k records one at a time shows up in profiles.
  if (chunks.size() == 1) {
    records = std::move(chunks[0].records);
  } else {
    records.reserve(total_records);
  }
  std::size_t row_base = 0;
  std::size_t nl_base = 0;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    ChunkResult& chunk = chunks[c];
    for (const RowIssue& issue : chunk.issues) {
      const std::size_t row = row_base + issue.local_row;
      const std::size_t line = first_data_line + nl_base + issue.local_nl;
      util::Error error = make_error(ErrorCode::kParseError,
                                     row_label(row, line) + issue.detail);
      if (options.policy.mode == robust::IngestMode::kStrict) {
        return error;
      }
      quarantine->add("records_csv", row, std::move(error));
    }
    if (chunks.size() > 1) {
      std::move(chunk.records.begin(), chunk.records.end(),
                std::back_inserter(records));
    }
    row_base += chunk.rows;
    nl_base += chunk.newlines;
  }

  if (options.policy.mode == robust::IngestMode::kLenient &&
      quarantine->exceeds(options.policy, total_rows)) {
    return make_error(
        ErrorCode::kParseError,
        "records_csv: quarantined " + std::to_string(quarantine->count()) +
            "/" + std::to_string(total_rows) +
            " rows, above max error rate " +
            util::format_fixed(options.policy.max_error_rate, 2));
  }
  return records;
}

Result<LoadOutcome> load_records_file(const std::string& path,
                                      const LoadFileOptions& options,
                                      robust::CircuitBreaker* breaker,
                                      robust::Quarantine* quarantine) {
  obs::Telemetry* telemetry = options.telemetry;
  const obs::LabelSet source_label{{"source", path}};
  obs::ScopedSpan span(telemetry ? telemetry->tracer : nullptr, "ingest.load");
  span.set_attribute("source", path);

  if (breaker && !breaker->allow_request()) {
    obs::add_counter(telemetry, "iqb_ingest_loads_denied_total",
                     "Loads refused because the source breaker was open",
                     source_label);
    return make_error(ErrorCode::kIoError,
                      "circuit breaker open for '" + path + "'");
  }
  robust::RetryStats retry_stats;
  auto mapped = robust::run_with_retry(
      options.retry, [&] { return util::fs::MappedFile::open(path); },
      &retry_stats);
  obs::add_counter(telemetry, "iqb_ingest_fetch_attempts_total",
                   "Source fetch attempts (including the first)", source_label,
                   static_cast<double>(retry_stats.attempts));
  if (retry_stats.attempts > 1) {
    obs::add_counter(telemetry, "iqb_robust_retry_attempts_total",
                     "Retries beyond the first fetch attempt", source_label,
                     static_cast<double>(retry_stats.attempts - 1));
  }
  if (!mapped.ok()) {
    if (breaker) breaker->record_failure();
    obs::add_counter(telemetry, "iqb_ingest_fetch_failures_total",
                     "Source fetches that exhausted their retry policy",
                     source_label);
    return mapped.error();
  }

  robust::Quarantine local(options.ingest.max_stored);
  robust::Quarantine* sink = quarantine ? quarantine : &local;
  const std::size_t quarantined_before = sink->count();

  const std::string_view view = mapped->view();
  auto parse = [&]() -> Result<std::vector<MeasurementRecord>> {
    // Content sniffing, not extensions: a renamed file still loads
    // (or is rejected) for what it actually is.
    if (looks_like_iqbr(view)) return records_from_iqbr(view);
    const std::string_view body = util::trim(view);
    if (!body.empty() && (body.front() == '{' || body.front() == '[')) {
      return make_error(ErrorCode::kParseError,
                        "looks like JSON, expected record CSV or IQBREC "
                        "binary");
    }
    FastParseOptions parse_options;
    parse_options.policy = options.ingest;
    parse_options.quarantine = sink;
    parse_options.threads = options.threads;
    parse_options.pool = options.pool;
    parse_options.stats = options.stats;
    return records_from_csv_fast(view, parse_options);
  };
  auto records = parse().with_context("loading '" + path + "'");
  if (!records.ok()) {
    if (breaker) breaker->record_failure();
    obs::add_counter(telemetry, "iqb_ingest_parse_failures_total",
                     "Imports rejected outright (bad header or error rate)",
                     source_label);
    return records.error();
  }
  if (breaker) breaker->record_success();

  LoadOutcome outcome;
  outcome.records = std::move(records).value();
  outcome.rows_quarantined = sink->count() - quarantined_before;
  outcome.attempts = retry_stats.attempts;
  obs::add_counter(telemetry, "iqb_ingest_rows_read_total",
                   "Data rows read (accepted + quarantined)", source_label,
                   static_cast<double>(outcome.records.size() +
                                       outcome.rows_quarantined));
  obs::add_counter(telemetry, "iqb_ingest_rows_quarantined_total",
                   "Data rows diverted to quarantine", source_label,
                   static_cast<double>(outcome.rows_quarantined));
  obs::set_gauge(telemetry, "iqb_robust_quarantine_rows",
                 "Quarantine occupancy after the load", source_label,
                 static_cast<double>(sink->count()));
  return outcome;
}

}  // namespace iqb::datasets
