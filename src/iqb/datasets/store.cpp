#include "iqb/datasets/store.hpp"

#include <algorithm>

namespace iqb::datasets {

bool RecordFilter::matches(const MeasurementRecord& record) const noexcept {
  if (dataset && record.dataset != *dataset) return false;
  if (region && record.region != *region) return false;
  if (isp && record.isp != *isp) return false;
  if (from && record.timestamp < *from) return false;
  if (to && !(record.timestamp < *to)) return false;
  return true;
}

RecordStore::RecordStore(const RecordStore& other) : records_(other.records_) {
  std::lock_guard<std::mutex> lock(other.index_mutex_);
  index_ = other.index_;
}

RecordStore& RecordStore::operator=(const RecordStore& other) {
  if (this == &other) return *this;
  std::shared_ptr<const StoreIndex> other_index;
  {
    std::lock_guard<std::mutex> lock(other.index_mutex_);
    other_index = other.index_;
  }
  records_ = other.records_;
  std::lock_guard<std::mutex> lock(index_mutex_);
  index_ = std::move(other_index);
  return *this;
}

RecordStore::RecordStore(RecordStore&& other) noexcept
    : records_(std::move(other.records_)), index_(std::move(other.index_)) {
  other.records_.clear();
}

RecordStore& RecordStore::operator=(RecordStore&& other) noexcept {
  if (this == &other) return *this;
  records_ = std::move(other.records_);
  other.records_.clear();
  std::lock_guard<std::mutex> lock(index_mutex_);
  index_ = std::move(other.index_);
  return *this;
}

util::Result<void> RecordStore::add(MeasurementRecord record) {
  if (!record.is_valid()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "record has out-of-range metric values");
  }
  records_.push_back(std::move(record));
  invalidate_index();
  return util::Result<void>::success();
}

std::size_t RecordStore::add_all(std::vector<MeasurementRecord> records) {
  std::size_t skipped = 0;
  for (auto& record : records) {
    if (record.is_valid()) {
      records_.push_back(std::move(record));
    } else {
      ++skipped;
    }
  }
  invalidate_index();
  return skipped;
}

std::vector<MeasurementRecord> RecordStore::query(
    const RecordFilter& filter) const {
  std::vector<MeasurementRecord> out;
  for (const auto& record : records_) {
    if (filter.matches(record)) out.push_back(record);
  }
  return out;
}

std::vector<double> RecordStore::metric_values(Metric metric,
                                               const RecordFilter& filter) const {
  std::vector<double> out;
  for (const auto& record : records_) {
    if (!filter.matches(record)) continue;
    if (auto v = record.value(metric)) out.push_back(*v);
  }
  return out;
}

const StoreIndex& RecordStore::index() const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (!index_) {
    index_ = std::make_shared<const StoreIndex>(StoreIndex::build(records_));
  }
  return *index_;
}

bool RecordStore::index_ready() const noexcept {
  std::lock_guard<std::mutex> lock(index_mutex_);
  return index_ != nullptr;
}

void RecordStore::invalidate_index() noexcept {
  std::lock_guard<std::mutex> lock(index_mutex_);
  index_.reset();
}

std::vector<std::string> RecordStore::regions() const {
  return index().regions();
}

std::vector<std::string> RecordStore::dataset_names() const {
  return index().datasets();
}

std::vector<std::string> RecordStore::isps() const { return index().isps(); }

std::map<std::string, std::vector<MeasurementRecord>> RecordStore::by_region(
    const RecordFilter& filter) const {
  std::map<std::string, std::vector<MeasurementRecord>> groups;
  for (const auto& [region, refs] : by_region_refs(filter)) {
    std::vector<MeasurementRecord>& records = groups[region];
    records.reserve(refs.size());
    for (const MeasurementRecord* record : refs) records.push_back(*record);
  }
  return groups;
}

std::map<std::string, std::vector<const MeasurementRecord*>>
RecordStore::by_region_refs(const RecordFilter& filter) const {
  std::map<std::string, std::vector<const MeasurementRecord*>> groups;
  for (const auto& record : records_) {
    if (filter.matches(record)) groups[record.region].push_back(&record);
  }
  return groups;
}

void RecordStore::merge(const RecordStore& other) {
  records_.insert(records_.end(), other.records_.begin(), other.records_.end());
  invalidate_index();
}

RecordStore rekey_by_region_isp(const RecordStore& store, char separator) {
  std::vector<MeasurementRecord> rekeyed;
  rekeyed.reserve(store.size());
  for (const MeasurementRecord& record : store.records()) {
    MeasurementRecord copy = record;
    copy.region = record.region + separator + record.isp;
    rekeyed.push_back(std::move(copy));
  }
  return RecordStore(std::move(rekeyed));
}

}  // namespace iqb::datasets
