#include "iqb/datasets/store.hpp"

#include <algorithm>

namespace iqb::datasets {

bool RecordFilter::matches(const MeasurementRecord& record) const noexcept {
  if (dataset && record.dataset != *dataset) return false;
  if (region && record.region != *region) return false;
  if (isp && record.isp != *isp) return false;
  if (from && record.timestamp < *from) return false;
  if (to && !(record.timestamp < *to)) return false;
  return true;
}

util::Result<void> RecordStore::add(MeasurementRecord record) {
  if (!record.is_valid()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "record has out-of-range metric values");
  }
  records_.push_back(std::move(record));
  return util::Result<void>::success();
}

std::size_t RecordStore::add_all(std::vector<MeasurementRecord> records) {
  std::size_t skipped = 0;
  for (auto& record : records) {
    if (record.is_valid()) {
      records_.push_back(std::move(record));
    } else {
      ++skipped;
    }
  }
  return skipped;
}

std::vector<MeasurementRecord> RecordStore::query(
    const RecordFilter& filter) const {
  std::vector<MeasurementRecord> out;
  for (const auto& record : records_) {
    if (filter.matches(record)) out.push_back(record);
  }
  return out;
}

std::vector<double> RecordStore::metric_values(Metric metric,
                                               const RecordFilter& filter) const {
  std::vector<double> out;
  for (const auto& record : records_) {
    if (!filter.matches(record)) continue;
    if (auto v = record.value(metric)) out.push_back(*v);
  }
  return out;
}

namespace {

std::vector<std::string> distinct(
    const std::vector<MeasurementRecord>& records,
    const std::function<const std::string&(const MeasurementRecord&)>& key) {
  std::set<std::string> seen;
  for (const auto& record : records) seen.insert(key(record));
  return {seen.begin(), seen.end()};
}

}  // namespace

std::vector<std::string> RecordStore::regions() const {
  return distinct(records_,
                  [](const MeasurementRecord& r) -> const std::string& {
                    return r.region;
                  });
}

std::vector<std::string> RecordStore::dataset_names() const {
  return distinct(records_,
                  [](const MeasurementRecord& r) -> const std::string& {
                    return r.dataset;
                  });
}

std::vector<std::string> RecordStore::isps() const {
  return distinct(records_,
                  [](const MeasurementRecord& r) -> const std::string& {
                    return r.isp;
                  });
}

std::map<std::string, std::vector<MeasurementRecord>> RecordStore::by_region(
    const RecordFilter& filter) const {
  std::map<std::string, std::vector<MeasurementRecord>> groups;
  for (const auto& record : records_) {
    if (filter.matches(record)) groups[record.region].push_back(record);
  }
  return groups;
}

void RecordStore::merge(const RecordStore& other) {
  records_.insert(records_.end(), other.records_.begin(), other.records_.end());
}

RecordStore rekey_by_region_isp(const RecordStore& store, char separator) {
  std::vector<MeasurementRecord> rekeyed;
  rekeyed.reserve(store.size());
  for (const MeasurementRecord& record : store.records()) {
    MeasurementRecord copy = record;
    copy.region = record.region + separator + record.isp;
    rekeyed.push_back(std::move(copy));
  }
  return RecordStore(std::move(rekeyed));
}

}  // namespace iqb::datasets
