#include "iqb/datasets/io.hpp"

#include <fstream>
#include <sstream>

#include "iqb/obs/telemetry.hpp"
#include "iqb/util/strings.hpp"

namespace iqb::datasets {

using util::CsvRow;
using util::CsvTable;
using util::ErrorCode;
using util::JsonArray;
using util::JsonObject;
using util::JsonValue;
using util::make_error;
using util::Result;

namespace {

const std::vector<std::string> kRecordHeader = {
    "dataset",       "region",           "isp",
    "subscriber_id", "timestamp",        "download_mbps",
    "upload_mbps",   "latency_ms",       "loaded_latency_ms",
    "loss_fraction"};

std::string optional_field(const std::optional<double>& v) {
  return v ? util::format_fixed(*v, 6) : std::string();
}

Result<std::optional<double>> parse_optional(const std::string& field) {
  if (util::trim(field).empty()) return std::optional<double>{};
  auto v = util::parse_double(field);
  if (!v.ok()) return v.error();
  return std::optional<double>{v.value()};
}

/// Parse one data row of the record schema; row-precise errors name
/// both the data-row index and the physical line (0 = line unknown,
/// for hand-built tables without row_lines).
Result<MeasurementRecord> parse_record_row(const CsvRow& row, std::size_t i,
                                           std::size_t line) {
  MeasurementRecord record;
  record.dataset = row[0];
  record.region = row[1];
  record.isp = row[2];
  record.subscriber_id = row[3];
  auto ts = util::Timestamp::parse(row[4]);
  if (!ts.ok()) {
    return make_error(ErrorCode::kParseError,
                      row_label(i, line) + ": " + ts.error().message);
  }
  record.timestamp = ts.value();

  const Metric metrics[] = {Metric::kDownload, Metric::kUpload,
                            Metric::kLatency, Metric::kLoadedLatency,
                            Metric::kLoss};
  for (std::size_t m = 0; m < 5; ++m) {
    auto value = parse_optional(row[5 + m]);
    if (!value.ok()) {
      return make_error(ErrorCode::kParseError,
                        row_label(i, line) + " column '" +
                            kRecordHeader[5 + m] + "': " +
                            value.error().message);
    }
    if (value.value()) record.set_value(metrics[m], *value.value());
  }
  if (!record.is_valid()) {
    return make_error(ErrorCode::kParseError,
                      row_label(i, line) + ": metric value out of range");
  }
  return record;
}

}  // namespace

const std::vector<std::string>& record_csv_header() { return kRecordHeader; }

std::string row_label(std::size_t row, std::size_t line) {
  std::string label = "row " + std::to_string(row);
  if (line > 0) label += " (line " + std::to_string(line) + ")";
  return label;
}

std::string records_to_csv(std::span<const MeasurementRecord> records) {
  CsvTable table;
  table.header = kRecordHeader;
  table.rows.reserve(records.size());
  for (const auto& record : records) {
    CsvRow row;
    row.push_back(record.dataset);
    row.push_back(record.region);
    row.push_back(record.isp);
    row.push_back(record.subscriber_id);
    row.push_back(record.timestamp.to_iso8601());
    row.push_back(optional_field(record.value(Metric::kDownload)));
    row.push_back(optional_field(record.value(Metric::kUpload)));
    row.push_back(optional_field(record.value(Metric::kLatency)));
    row.push_back(optional_field(record.value(Metric::kLoadedLatency)));
    row.push_back(optional_field(record.value(Metric::kLoss)));
    table.rows.push_back(std::move(row));
  }
  return util::write_csv(table);
}

Result<std::vector<MeasurementRecord>> records_from_csv(
    std::string_view csv_text) {
  return records_from_csv(csv_text, robust::IngestPolicy::strict());
}

Result<std::vector<MeasurementRecord>> records_from_csv(
    std::string_view csv_text, const robust::IngestPolicy& policy,
    robust::Quarantine* quarantine) {
  robust::Quarantine local(policy.max_stored);
  if (policy.mode == robust::IngestMode::kLenient && !quarantine) {
    quarantine = &local;
  }
  auto table = util::parse_csv(csv_text);
  if (!table.ok()) return table.error();
  if (table->header != kRecordHeader) {
    return make_error(ErrorCode::kParseError,
                      "unexpected record CSV header: '" +
                          util::join(table->header, ",") + "'");
  }
  std::vector<MeasurementRecord> records;
  records.reserve(table->rows.size());
  for (std::size_t i = 0; i < table->rows.size(); ++i) {
    auto record = parse_record_row(table->rows[i], i, table->line_of_row(i));
    if (!record.ok()) {
      if (policy.mode == robust::IngestMode::kStrict) return record.error();
      quarantine->add("records_csv", i, record.error());
      continue;
    }
    records.push_back(std::move(record).value());
  }
  if (policy.mode == robust::IngestMode::kLenient &&
      quarantine->exceeds(policy, table->rows.size())) {
    return make_error(
        ErrorCode::kParseError,
        "records_csv: quarantined " + std::to_string(quarantine->count()) +
            "/" + std::to_string(table->rows.size()) +
            " rows, above max error rate " +
            util::format_fixed(policy.max_error_rate, 2));
  }
  return records;
}

Result<LoadOutcome> load_records(const robust::TextSource& source,
                                 const std::string& source_name,
                                 const LoadOptions& options,
                                 robust::CircuitBreaker* breaker,
                                 robust::Quarantine* quarantine) {
  obs::Telemetry* telemetry = options.telemetry;
  const obs::LabelSet source_label{{"source", source_name}};
  obs::ScopedSpan span(telemetry ? telemetry->tracer : nullptr, "ingest.load");
  span.set_attribute("source", source_name);

  if (breaker && !breaker->allow_request()) {
    obs::add_counter(telemetry, "iqb_ingest_loads_denied_total",
                     "Loads refused because the source breaker was open",
                     source_label);
    return make_error(ErrorCode::kIoError,
                      "circuit breaker open for '" + source_name + "'");
  }
  robust::RetryStats stats;
  auto text = robust::run_with_retry(options.retry, source, &stats);
  obs::add_counter(telemetry, "iqb_ingest_fetch_attempts_total",
                   "Source fetch attempts (including the first)",
                   source_label, static_cast<double>(stats.attempts));
  if (stats.attempts > 1) {
    obs::add_counter(telemetry, "iqb_robust_retry_attempts_total",
                     "Retries beyond the first fetch attempt", source_label,
                     static_cast<double>(stats.attempts - 1));
  }
  if (!text.ok()) {
    if (breaker) breaker->record_failure();
    obs::add_counter(telemetry, "iqb_ingest_fetch_failures_total",
                     "Source fetches that exhausted their retry policy",
                     source_label);
    return text.error();
  }

  robust::Quarantine local(options.ingest.max_stored);
  robust::Quarantine* sink = quarantine ? quarantine : &local;
  const std::size_t quarantined_before = sink->count();
  auto records = records_from_csv(text.value(), options.ingest, sink)
                     .with_context("loading '" + source_name + "'");
  if (!records.ok()) {
    if (breaker) breaker->record_failure();
    obs::add_counter(telemetry, "iqb_ingest_parse_failures_total",
                     "Imports rejected outright (bad header or error rate)",
                     source_label);
    return records.error();
  }
  if (breaker) breaker->record_success();

  LoadOutcome outcome;
  outcome.records = std::move(records).value();
  outcome.rows_quarantined = sink->count() - quarantined_before;
  outcome.attempts = stats.attempts;
  obs::add_counter(telemetry, "iqb_ingest_rows_read_total",
                   "Data rows read (accepted + quarantined)", source_label,
                   static_cast<double>(outcome.records.size() +
                                       outcome.rows_quarantined));
  obs::add_counter(telemetry, "iqb_ingest_rows_quarantined_total",
                   "Data rows diverted to quarantine", source_label,
                   static_cast<double>(outcome.rows_quarantined));
  obs::set_gauge(telemetry, "iqb_robust_quarantine_rows",
                 "Quarantine occupancy after the load", source_label,
                 static_cast<double>(sink->count()));
  return outcome;
}

Result<LoadOutcome> load_records_csv(const std::string& path,
                                     const LoadOptions& options,
                                     robust::CircuitBreaker* breaker,
                                     robust::Quarantine* quarantine) {
  auto source = [&path]() -> Result<std::string> {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return make_error(ErrorCode::kIoError,
                        "cannot open '" + path + "' for reading");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  return load_records(source, path, options, breaker, quarantine);
}

std::string aggregates_to_csv(const AggregateTable& table) {
  CsvTable out;
  out.header = {"region", "dataset", "metric",
                "value",  "samples", "ci_lower", "ci_upper"};
  for (const AggregateCell& cell : table.cells()) {
    CsvRow row;
    row.push_back(cell.region);
    row.push_back(cell.dataset);
    row.push_back(std::string(metric_name(cell.metric)));
    row.push_back(util::format_fixed(cell.value, 6));
    row.push_back(std::to_string(cell.sample_count));
    row.push_back(cell.ci ? util::format_fixed(cell.ci->lower, 6) : "");
    row.push_back(cell.ci ? util::format_fixed(cell.ci->upper, 6) : "");
    out.rows.push_back(std::move(row));
  }
  return util::write_csv(out);
}

JsonValue aggregates_to_json(const AggregateTable& table) {
  JsonArray cells;
  for (const AggregateCell& cell : table.cells()) {
    JsonObject object;
    object.emplace("region", cell.region);
    object.emplace("dataset", cell.dataset);
    object.emplace("metric", std::string(metric_name(cell.metric)));
    object.emplace("value", cell.value);
    object.emplace("samples", static_cast<double>(cell.sample_count));
    if (cell.ci) {
      JsonObject ci;
      ci.emplace("lower", cell.ci->lower);
      ci.emplace("upper", cell.ci->upper);
      ci.emplace("level", cell.ci->level);
      object.emplace("ci", std::move(ci));
    }
    cells.push_back(std::move(object));
  }
  JsonObject root;
  root.emplace("aggregates", std::move(cells));
  return root;
}

Result<AggregateTable> aggregates_from_json(const JsonValue& json) {
  auto cells = json.get_array("aggregates");
  if (!cells.ok()) return cells.error();
  AggregateTable table;
  for (const JsonValue& entry : cells.value()) {
    AggregateCell cell;
    auto region = entry.get_string("region");
    auto dataset = entry.get_string("dataset");
    auto metric_str = entry.get_string("metric");
    auto value = entry.get_number("value");
    auto samples = entry.get_number("samples");
    if (!region.ok()) return region.error();
    if (!dataset.ok()) return dataset.error();
    if (!metric_str.ok()) return metric_str.error();
    if (!value.ok()) return value.error();
    if (!samples.ok()) return samples.error();
    auto metric = metric_from_name(metric_str.value());
    if (!metric.ok()) return metric.error();
    cell.region = region.value();
    cell.dataset = dataset.value();
    cell.metric = metric.value();
    cell.value = value.value();
    cell.sample_count = static_cast<std::size_t>(samples.value());
    if (entry.contains("ci")) {
      auto ci_object = entry.get("ci");
      if (ci_object.ok() && ci_object->is_object()) {
        stats::ConfidenceInterval ci;
        ci.point = cell.value;
        auto lower = ci_object->get_number("lower");
        auto upper = ci_object->get_number("upper");
        auto level = ci_object->get_number("level");
        if (lower.ok() && upper.ok()) {
          ci.lower = lower.value();
          ci.upper = upper.value();
          ci.level = level.ok() ? level.value() : 0.95;
          cell.ci = ci;
        }
      }
    }
    table.put(std::move(cell));
  }
  return table;
}

Result<void> write_records_csv(const std::string& path,
                               std::span<const MeasurementRecord> records) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return make_error(ErrorCode::kIoError,
                      "cannot open '" + path + "' for writing");
  }
  out << records_to_csv(records);
  if (!out) return make_error(ErrorCode::kIoError, "write failed: " + path);
  return Result<void>::success();
}

Result<std::vector<MeasurementRecord>> read_records_csv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(ErrorCode::kIoError,
                      "cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return records_from_csv(buffer.str())
      .with_context("reading '" + path + "'");
}

}  // namespace iqb::datasets
