// Measurement records: the atoms of the IQB datasets tier.
//
// A MeasurementRecord is one test by one subscriber as reported by one
// dataset (M-Lab NDT, Cloudflare, ...). Metrics are optional because
// real datasets have coverage gaps (Ookla's open data carries no
// packet loss; a failed upload phase leaves that field empty).
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>

#include "iqb/util/result.hpp"
#include "iqb/util/timestamp.hpp"
#include "iqb/util/units.hpp"

namespace iqb::datasets {

/// The measurable quantities IQB understands. kLatency is the idle
/// round-trip time; kLoadedLatency (working latency / bufferbloat) is
/// tracked as an extension metric — the paper's requirement tier uses
/// kLatency.
enum class Metric {
  kDownload,
  kUpload,
  kLatency,
  kLoadedLatency,
  kLoss,
};

inline constexpr std::array<Metric, 5> kAllMetrics = {
    Metric::kDownload, Metric::kUpload, Metric::kLatency,
    Metric::kLoadedLatency, Metric::kLoss};

std::string_view metric_name(Metric metric) noexcept;
util::Result<Metric> metric_from_name(std::string_view name);

/// Unit of a metric's raw value as stored in records and aggregates:
/// Mb/s for throughput, ms for latencies, fraction [0,1] for loss.
std::string_view metric_unit(Metric metric) noexcept;

/// Whether larger values are better (throughput) or worse (latency,
/// loss). Drives threshold comparison direction.
bool metric_higher_is_better(Metric metric) noexcept;

struct MeasurementRecord {
  std::string dataset;   ///< "ndt" | "cloudflare" | "ookla" | ...
  std::string region;
  std::string isp;
  std::string subscriber_id;
  util::Timestamp timestamp;

  std::optional<util::Mbps> download;
  std::optional<util::Mbps> upload;
  std::optional<util::Millis> latency;
  std::optional<util::Millis> loaded_latency;
  std::optional<util::LossRate> loss;

  /// Raw value of a metric in its canonical unit, if present.
  std::optional<double> value(Metric metric) const noexcept;

  /// Set a metric from its canonical-unit raw value.
  void set_value(Metric metric, double raw) noexcept;

  /// True if every present metric is finite and in range.
  bool is_valid() const noexcept;
};

}  // namespace iqb::datasets
