#include "iqb/datasets/record.hpp"

namespace iqb::datasets {

std::string_view metric_name(Metric metric) noexcept {
  switch (metric) {
    case Metric::kDownload: return "download";
    case Metric::kUpload: return "upload";
    case Metric::kLatency: return "latency";
    case Metric::kLoadedLatency: return "loaded_latency";
    case Metric::kLoss: return "loss";
  }
  return "unknown";
}

util::Result<Metric> metric_from_name(std::string_view name) {
  for (Metric metric : kAllMetrics) {
    if (metric_name(metric) == name) return metric;
  }
  return util::make_error(util::ErrorCode::kInvalidArgument,
                          "unknown metric '" + std::string(name) + "'");
}

std::string_view metric_unit(Metric metric) noexcept {
  switch (metric) {
    case Metric::kDownload:
    case Metric::kUpload: return "Mb/s";
    case Metric::kLatency:
    case Metric::kLoadedLatency: return "ms";
    case Metric::kLoss: return "fraction";
  }
  return "";
}

bool metric_higher_is_better(Metric metric) noexcept {
  switch (metric) {
    case Metric::kDownload:
    case Metric::kUpload: return true;
    case Metric::kLatency:
    case Metric::kLoadedLatency:
    case Metric::kLoss: return false;
  }
  return true;
}

std::optional<double> MeasurementRecord::value(Metric metric) const noexcept {
  switch (metric) {
    case Metric::kDownload:
      return download ? std::optional<double>(download->value()) : std::nullopt;
    case Metric::kUpload:
      return upload ? std::optional<double>(upload->value()) : std::nullopt;
    case Metric::kLatency:
      return latency ? std::optional<double>(latency->value()) : std::nullopt;
    case Metric::kLoadedLatency:
      return loaded_latency ? std::optional<double>(loaded_latency->value())
                            : std::nullopt;
    case Metric::kLoss:
      return loss ? std::optional<double>(loss->fraction()) : std::nullopt;
  }
  return std::nullopt;
}

void MeasurementRecord::set_value(Metric metric, double raw) noexcept {
  switch (metric) {
    case Metric::kDownload: download = util::Mbps(raw); break;
    case Metric::kUpload: upload = util::Mbps(raw); break;
    case Metric::kLatency: latency = util::Millis(raw); break;
    case Metric::kLoadedLatency: loaded_latency = util::Millis(raw); break;
    case Metric::kLoss: loss = util::LossRate(raw); break;
  }
}

bool MeasurementRecord::is_valid() const noexcept {
  if (download && !download->is_valid()) return false;
  if (upload && !upload->is_valid()) return false;
  if (latency && !latency->is_valid()) return false;
  if (loaded_latency && !loaded_latency->is_valid()) return false;
  if (loss && !loss->is_valid()) return false;
  return true;
}

}  // namespace iqb::datasets
