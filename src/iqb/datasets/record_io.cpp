#include "iqb/datasets/record_io.hpp"

#include <array>
#include <bit>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "iqb/util/fs.hpp"
#include "iqb/util/strings.hpp"

namespace iqb::datasets {

using util::ErrorCode;
using util::Result;
using util::make_error;

namespace {

constexpr const char* kMagic = "IQBREC";

// --- CRC-32C (Castagnoli, reflected 0x82F63B78) --------------------
//
// Framing checksum for .iqbr files. Both implementations below
// compute the same function, so files written with the hardware path
// verify with the software path and vice versa; the golden-vector
// test (crc32c("123456789") == 0xE3069283) pins whichever one the
// running CPU selects.

/// Slice-by-8 tables: tables[0] is the byte-at-a-time table, and
/// tables[k] advances a byte through k additional zero bytes.
using Crc32cTables = std::array<std::array<std::uint32_t, 256>, 8>;

const Crc32cTables& crc32c_tables() {
  static const Crc32cTables tables = [] {
    Crc32cTables t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::size_t k = 1; k < t.size(); ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
      }
    }
    return t;
  }();
  return tables;
}

std::uint32_t crc32c_soft(std::uint32_t state, const char* data,
                          std::size_t n) noexcept {
  const auto& t = crc32c_tables();
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  const auto load_le32 = [](const unsigned char* q) {
    return static_cast<std::uint32_t>(q[0]) |
           static_cast<std::uint32_t>(q[1]) << 8 |
           static_cast<std::uint32_t>(q[2]) << 16 |
           static_cast<std::uint32_t>(q[3]) << 24;
  };
  while (n >= 8) {
    const std::uint32_t a = state ^ load_le32(p);
    const std::uint32_t b = load_le32(p + 4);
    state = t[7][a & 0xFFu] ^ t[6][(a >> 8) & 0xFFu] ^
            t[5][(a >> 16) & 0xFFu] ^ t[4][a >> 24] ^ t[3][b & 0xFFu] ^
            t[2][(b >> 8) & 0xFFu] ^ t[1][(b >> 16) & 0xFFu] ^ t[0][b >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    state = t[0][(state ^ *p++) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define IQB_CRC32C_HW 1
// The build carries no -msse4.2, so the crc32 instruction is emitted
// only inside this one target-attributed function and only called
// after the runtime cpuid check below.
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hard(
    std::uint32_t state, const char* data, std::size_t n) noexcept {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  std::uint64_t s = state;
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    s = __builtin_ia32_crc32di(s, word);
    p += 8;
    n -= 8;
  }
  std::uint32_t s32 = static_cast<std::uint32_t>(s);
  while (n-- > 0) {
    s32 = __builtin_ia32_crc32qi(s32, *p++);
  }
  return s32;
}
#endif

util::Error reject(const std::string& reason) {
  return make_error(ErrorCode::kParseError, reason);
}

std::string crc_hex(std::uint32_t crc) {
  char buffer[9];
  std::snprintf(buffer, sizeof(buffer), "%08x", crc);
  return buffer;
}

void put_u32(std::string& out, std::uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.append(bytes, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.append(bytes, 8);
}

/// Bounds-checked little-endian cursor over the payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool take_u32(std::uint32_t& v) noexcept {
    if (data_.size() - pos_ < 4) return false;
    std::memcpy(&v, data_.data() + pos_, 4);
    if constexpr (std::endian::native == std::endian::big) {
      v = __builtin_bswap32(v);
    }
    pos_ += 4;
    return true;
  }

  bool take_u64(std::uint64_t& v) noexcept {
    if (data_.size() - pos_ < 8) return false;
    std::memcpy(&v, data_.data() + pos_, 8);
    if constexpr (std::endian::native == std::endian::big) {
      v = __builtin_bswap64(v);
    }
    pos_ += 8;
    return true;
  }

  bool take_u8(std::uint8_t& v) noexcept {
    if (pos_ >= data_.size()) return false;
    v = static_cast<std::uint8_t>(static_cast<unsigned char>(data_[pos_++]));
    return true;
  }

  /// The fixed-size record prefix (4 string refs, timestamp bits,
  /// presence mask) under a single bounds check — this is the decode
  /// hot path, one call per record.
  bool take_record_header(std::uint32_t refs[4], std::uint64_t& ts_bits,
                          std::uint8_t& mask) noexcept {
    constexpr std::size_t kHeaderBytes = 4 * 4 + 8 + 1;
    if (data_.size() - pos_ < kHeaderBytes) return false;
    const char* p = data_.data() + pos_;
    for (int i = 0; i < 4; ++i) {
      std::memcpy(&refs[i], p + 4 * i, 4);
      if constexpr (std::endian::native == std::endian::big) {
        refs[i] = __builtin_bswap32(refs[i]);
      }
    }
    std::memcpy(&ts_bits, p + 16, 8);
    if constexpr (std::endian::native == std::endian::big) {
      ts_bits = __builtin_bswap64(ts_bits);
    }
    mask = static_cast<std::uint8_t>(static_cast<unsigned char>(p[24]));
    pos_ += kHeaderBytes;
    return true;
  }

  /// `count` contiguous u64s under a single bounds check.
  bool take_u64_array(std::uint64_t* out, std::size_t count) noexcept {
    if (data_.size() - pos_ < count * 8) return false;
    const char* p = data_.data() + pos_;
    for (std::size_t i = 0; i < count; ++i) {
      std::memcpy(&out[i], p + 8 * i, 8);
      if constexpr (std::endian::native == std::endian::big) {
        out[i] = __builtin_bswap64(out[i]);
      }
    }
    pos_ += count * 8;
    return true;
  }

  bool take_bytes(std::size_t n, std::string_view& out) noexcept {
    if (data_.size() - pos_ < n) return false;
    out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace

bool looks_like_iqbr(std::string_view prefix) noexcept {
  const std::string_view magic_space = "IQBREC ";
  return prefix.substr(0, magic_space.size()) == magic_space;
}

std::uint32_t iqbr_crc32c(std::string_view data) noexcept {
  constexpr std::uint32_t kInit = 0xFFFFFFFFu;
#if defined(IQB_CRC32C_HW)
  static const bool has_sse42 = __builtin_cpu_supports("sse4.2") != 0;
  if (has_sse42) {
    return crc32c_hard(kInit, data.data(), data.size()) ^ 0xFFFFFFFFu;
  }
#endif
  return crc32c_soft(kInit, data.data(), data.size()) ^ 0xFFFFFFFFu;
}

std::string records_to_iqbr(std::span<const MeasurementRecord> records) {
  // String table: first occurrence assigns the index, so encoding is
  // deterministic for a given record order.
  std::vector<std::string_view> table;
  std::unordered_map<std::string_view, std::uint32_t> index;
  auto intern = [&](const std::string& s) -> std::uint32_t {
    auto [it, inserted] =
        index.emplace(s, static_cast<std::uint32_t>(table.size()));
    if (inserted) table.push_back(s);
    return it->second;
  };

  std::string body;
  body.reserve(records.size() * 64);
  put_u32(body, static_cast<std::uint32_t>(records.size()));
  // Interning pass first so the table lands before the records.
  std::string rows;
  rows.reserve(records.size() * 64);
  for (const MeasurementRecord& record : records) {
    put_u32(rows, intern(record.dataset));
    put_u32(rows, intern(record.region));
    put_u32(rows, intern(record.isp));
    put_u32(rows, intern(record.subscriber_id));
    put_u64(rows, std::bit_cast<std::uint64_t>(
                      static_cast<std::int64_t>(record.timestamp.unix_seconds())));
    std::uint8_t mask = 0;
    for (std::size_t m = 0; m < kAllMetrics.size(); ++m) {
      if (record.value(kAllMetrics[m])) mask |= static_cast<std::uint8_t>(1u << m);
    }
    rows.push_back(static_cast<char>(mask));
    for (const Metric metric : kAllMetrics) {
      if (const auto value = record.value(metric)) {
        // Bit patterns, not text: doubles round-trip exactly.
        put_u64(rows, std::bit_cast<std::uint64_t>(*value));
      }
    }
  }
  put_u32(body, static_cast<std::uint32_t>(table.size()));
  for (const std::string_view entry : table) {
    put_u32(body, static_cast<std::uint32_t>(entry.size()));
    body.append(entry);
  }
  body += rows;

  std::string out = kMagic;
  out += ' ';
  out += std::to_string(kRecordFormatVersion);
  out += ' ';
  out += crc_hex(iqbr_crc32c(body));
  out += ' ';
  out += std::to_string(body.size());
  out += '\n';
  out += body;
  return out;
}

Result<std::vector<MeasurementRecord>> records_from_iqbr(
    std::string_view data) {
  const std::size_t header_end = data.find('\n');
  if (header_end == std::string_view::npos) {
    return reject("missing header line");
  }
  const std::string header(data.substr(0, header_end));
  const std::vector<std::string> fields = util::split(header, ' ');
  if (fields.size() != 4 || fields[0] != kMagic) {
    return reject("bad header magic");
  }
  auto version = util::parse_int(fields[1]);
  if (!version.ok() || version.value() < 0) {
    return reject("bad header version field");
  }
  if (static_cast<std::uint32_t>(version.value()) != kRecordFormatVersion) {
    return reject("unsupported version " + fields[1]);
  }
  auto declared_size = util::parse_int(fields[3]);
  if (!declared_size.ok() || declared_size.value() < 0) {
    return reject("bad header size field");
  }

  const std::string_view payload = data.substr(header_end + 1);
  if (payload.size() < static_cast<std::size_t>(declared_size.value())) {
    return reject("truncated payload (" + std::to_string(payload.size()) +
                  " of " + fields[3] + " bytes)");
  }
  if (payload.size() > static_cast<std::size_t>(declared_size.value())) {
    return reject("trailing bytes after payload");
  }
  const std::string expected_crc = crc_hex(iqbr_crc32c(payload));
  if (expected_crc != fields[2]) {
    return reject("crc mismatch (header " + fields[2] + ", payload " +
                  expected_crc + ")");
  }

  Reader reader(payload);
  std::uint32_t record_count = 0;
  std::uint32_t table_size = 0;
  if (!reader.take_u32(record_count) || !reader.take_u32(table_size)) {
    return reject("payload too short for counts");
  }
  std::vector<std::string_view> table;
  table.reserve(table_size);
  for (std::uint32_t i = 0; i < table_size; ++i) {
    std::uint32_t length = 0;
    std::string_view entry;
    if (!reader.take_u32(length) || !reader.take_bytes(length, entry)) {
      return reject("truncated string table (entry " + std::to_string(i) +
                    " of " + std::to_string(table_size) + ")");
    }
    table.push_back(entry);
  }

  std::vector<MeasurementRecord> records;
  records.reserve(record_count);
  const std::size_t table_count = table.size();
  for (std::uint32_t r = 0; r < record_count; ++r) {
    auto bad = [&](const std::string& what) {
      return reject("record " + std::to_string(r) + ": " + what);
    };
    std::uint32_t refs[4];
    std::uint64_t unix_bits = 0;
    std::uint8_t mask = 0;
    if (!reader.take_record_header(refs, unix_bits, mask)) {
      return bad("truncated record header");
    }
    for (const std::uint32_t ref : refs) {
      if (ref >= table_count) {
        return bad("string index " + std::to_string(ref) +
                   " out of range (table size " + std::to_string(table_count) +
                   ")");
      }
    }
    if (mask >> kAllMetrics.size()) {
      return bad("unknown metric bits in presence mask");
    }
    std::uint64_t bits[kAllMetrics.size()];
    if (!reader.take_u64_array(bits,
                               static_cast<std::size_t>(std::popcount(mask)))) {
      return bad("truncated metric values");
    }
    MeasurementRecord& record = records.emplace_back();
    record.dataset.assign(table[refs[0]]);
    record.region.assign(table[refs[1]]);
    record.isp.assign(table[refs[2]]);
    record.subscriber_id.assign(table[refs[3]]);
    record.timestamp = util::Timestamp(std::bit_cast<std::int64_t>(unix_bits));
    // Mask bits follow kAllMetrics order; direct member assignment here
    // keeps the per-record cost flat (set_value is an out-of-line
    // switch, and this loop decodes millions of records per second).
    std::size_t next = 0;
    if (mask & (1u << 0)) {
      record.download = util::Mbps(std::bit_cast<double>(bits[next++]));
    }
    if (mask & (1u << 1)) {
      record.upload = util::Mbps(std::bit_cast<double>(bits[next++]));
    }
    if (mask & (1u << 2)) {
      record.latency = util::Millis(std::bit_cast<double>(bits[next++]));
    }
    if (mask & (1u << 3)) {
      record.loaded_latency = util::Millis(std::bit_cast<double>(bits[next++]));
    }
    if (mask & (1u << 4)) {
      record.loss = util::LossRate(std::bit_cast<double>(bits[next++]));
    }
  }
  if (!reader.exhausted()) {
    return reject("trailing bytes after record " +
                  std::to_string(record_count));
  }
  return records;
}

Result<void> write_records_iqbr(const std::string& path,
                                std::span<const MeasurementRecord> records) {
  return util::fs::atomic_write(path, records_to_iqbr(records))
      .with_context("writing '" + path + "'");
}

Result<std::vector<MeasurementRecord>> read_records_iqbr(
    const std::string& path) {
  auto file = util::fs::MappedFile::open(path);
  if (!file.ok()) return file.error();
  return records_from_iqbr(file->view())
      .with_context("reading '" + path + "'");
}

}  // namespace iqb::datasets
