// Report rendering: regional IQB results -> human- and
// machine-readable artifacts.
//
//  * scorecard()        — fixed-width console card for one region,
//                         with an ASCII barometer gauge.
//  * comparison_table() — markdown table across regions.
//  * to_json()          — machine-readable result export.
//  * to_csv()           — flat per-use-case rows for spreadsheets.
#pragma once

#include <string>
#include <vector>

#include "iqb/core/pipeline.hpp"
#include "iqb/util/json.hpp"

namespace iqb::report {

/// ASCII gauge: `[#########..........] 0.45 (C)` with `width`
/// fill characters.
std::string barometer(double score, core::Grade grade, std::size_t width = 30);

/// Multi-line scorecard for one region: IQB scores at both levels,
/// grade, per-use-case bars, requirement detail and coverage warnings.
std::string scorecard(const core::RegionResult& result);

/// Markdown comparison across regions: one row per region with
/// high/minimum scores, grade, and per-use-case high scores.
std::string comparison_table(std::span<const core::RegionResult> results);

/// JSON export of full results (scores, breakdowns, warnings).
util::JsonValue to_json(std::span<const core::RegionResult> results);

/// CSV with one row per (region, use case): region, use_case,
/// score_high, score_minimum, grade.
std::string to_csv(std::span<const core::RegionResult> results);

}  // namespace iqb::report
