#include "iqb/report/render.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "iqb/util/strings.hpp"

namespace iqb::report {

using core::Grade;
using core::QualityLevel;
using core::RegionResult;
using core::Requirement;
using core::UseCase;
using util::JsonArray;
using util::JsonObject;
using util::JsonValue;

std::string barometer(double score, Grade grade, std::size_t width) {
  const double clamped = std::clamp(score, 0.0, 1.0);
  const auto filled =
      static_cast<std::size_t>(std::lround(clamped * static_cast<double>(width)));
  std::string out = "[";
  out.append(filled, '#');
  out.append(width - filled, '.');
  out += "] " + util::format_fixed(score, 2) + " (" +
         std::string(core::grade_name(grade)) + ")";
  return out;
}

namespace {

std::string bar(double value, std::size_t width = 20) {
  const double clamped = std::clamp(value, 0.0, 1.0);
  const auto filled =
      static_cast<std::size_t>(std::lround(clamped * static_cast<double>(width)));
  std::string out(filled, '#');
  out.append(width - filled, '.');
  return out;
}

}  // namespace

std::string scorecard(const RegionResult& result) {
  std::ostringstream out;
  out << "================================================================\n";
  out << " IQB Scorecard — region: " << result.region << "\n";
  out << "================================================================\n";
  out << " IQB score (high quality):    "
      << barometer(result.high.iqb_score, result.grade) << "\n";
  out << " IQB score (minimum quality): "
      << util::format_fixed(result.minimum.iqb_score, 2) << "\n";
  out << "----------------------------------------------------------------\n";
  out << " Use case             high   min    profile(high)\n";
  for (UseCase use_case : core::kAllUseCases) {
    auto high_it = result.high.use_case_scores.find(use_case);
    auto min_it = result.minimum.use_case_scores.find(use_case);
    out << " " << core::use_case_display_name(use_case);
    for (std::size_t i = core::use_case_display_name(use_case).size(); i < 21;
         ++i) {
      out << ' ';
    }
    if (high_it != result.high.use_case_scores.end()) {
      out << util::format_fixed(high_it->second, 2) << "   ";
    } else {
      out << "  -    ";
    }
    if (min_it != result.minimum.use_case_scores.end()) {
      out << util::format_fixed(min_it->second, 2) << "   ";
    } else {
      out << "  -    ";
    }
    if (high_it != result.high.use_case_scores.end()) {
      out << bar(high_it->second);
    }
    out << "\n";
  }
  out << "----------------------------------------------------------------\n";
  out << " Requirement agreement (high quality)\n";
  for (const auto& [key, score] : result.high.requirement_scores) {
    out << "   " << core::use_case_name(key.first) << " / "
        << core::requirement_name(key.second) << ": "
        << util::format_fixed(score, 2) << "\n";
  }
  if (!result.high.coverage_warnings.empty()) {
    out << "----------------------------------------------------------------\n";
    out << " Coverage warnings\n";
    for (const std::string& warning : result.high.coverage_warnings) {
      out << "   ! " << warning << "\n";
    }
  }
  const robust::DegradationReport& degradation = result.degradation();
  if (degradation.degraded()) {
    out << "----------------------------------------------------------------\n";
    out << " DEGRADED MODE — confidence tier "
        << robust::confidence_tier_name(degradation.tier) << "\n";
    if (!degradation.missing_datasets.empty()) {
      out << "   missing datasets: "
          << util::join(degradation.missing_datasets, ", ") << "\n";
    }
    if (degradation.rows_quarantined > 0) {
      out << "   rows quarantined: " << degradation.rows_quarantined << "\n";
    }
    if (!degradation.open_breakers.empty()) {
      out << "   breakers open: "
          << util::join(degradation.open_breakers, ", ") << "\n";
    }
  }
  out << "================================================================\n";
  return out.str();
}

std::string comparison_table(std::span<const RegionResult> results) {
  std::ostringstream out;
  out << "| Region | IQB (high) | IQB (min) | Grade |";
  for (UseCase use_case : core::kAllUseCases) {
    out << " " << core::use_case_display_name(use_case) << " |";
  }
  out << "\n|---|---|---|---|";
  for (std::size_t i = 0; i < core::kAllUseCases.size(); ++i) out << "---|";
  out << "\n";
  for (const RegionResult& result : results) {
    out << "| " << result.region << " | "
        << util::format_fixed(result.high.iqb_score, 3) << " | "
        << util::format_fixed(result.minimum.iqb_score, 3) << " | "
        << core::grade_name(result.grade) << " |";
    for (UseCase use_case : core::kAllUseCases) {
      auto it = result.high.use_case_scores.find(use_case);
      if (it != result.high.use_case_scores.end()) {
        out << " " << util::format_fixed(it->second, 2) << " |";
      } else {
        out << " - |";
      }
    }
    out << "\n";
  }
  return out.str();
}

namespace {

JsonValue breakdown_to_json(const core::ScoreBreakdown& breakdown) {
  JsonObject object;
  object.emplace("level",
                 std::string(core::quality_level_name(breakdown.level)));
  object.emplace("iqb_score", breakdown.iqb_score);
  JsonObject use_cases;
  for (const auto& [use_case, score] : breakdown.use_case_scores) {
    use_cases.emplace(std::string(core::use_case_name(use_case)), score);
  }
  object.emplace("use_case_scores", std::move(use_cases));
  JsonObject requirements;
  for (const auto& [key, score] : breakdown.requirement_scores) {
    requirements.emplace(std::string(core::use_case_name(key.first)) + "." +
                             std::string(core::requirement_name(key.second)),
                         score);
  }
  object.emplace("requirement_scores", std::move(requirements));
  JsonArray warnings;
  for (const std::string& warning : breakdown.coverage_warnings) {
    warnings.emplace_back(warning);
  }
  object.emplace("coverage_warnings", std::move(warnings));

  const robust::DegradationReport& degradation = breakdown.degradation;
  JsonObject degraded;
  degraded.emplace("tier", std::string(robust::confidence_tier_name(
                               degradation.tier)));
  JsonArray present;
  for (const std::string& dataset : degradation.present_datasets) {
    present.emplace_back(dataset);
  }
  degraded.emplace("present_datasets", std::move(present));
  JsonArray missing;
  for (const std::string& dataset : degradation.missing_datasets) {
    missing.emplace_back(dataset);
  }
  degraded.emplace("missing_datasets", std::move(missing));
  degraded.emplace("rows_quarantined",
                   static_cast<double>(degradation.rows_quarantined));
  JsonArray breakers;
  for (const std::string& breaker : degradation.open_breakers) {
    breakers.emplace_back(breaker);
  }
  degraded.emplace("open_breakers", std::move(breakers));
  object.emplace("degradation", std::move(degraded));
  return object;
}

}  // namespace

JsonValue to_json(std::span<const RegionResult> results) {
  JsonArray regions;
  for (const RegionResult& result : results) {
    JsonObject object;
    object.emplace("region", result.region);
    object.emplace("grade", std::string(core::grade_name(result.grade)));
    object.emplace("high", breakdown_to_json(result.high));
    object.emplace("minimum", breakdown_to_json(result.minimum));
    regions.push_back(std::move(object));
  }
  JsonObject root;
  root.emplace("regions", std::move(regions));
  return root;
}

std::string to_csv(std::span<const RegionResult> results) {
  std::ostringstream out;
  out << "region,use_case,score_high,score_minimum,grade\n";
  for (const RegionResult& result : results) {
    for (UseCase use_case : core::kAllUseCases) {
      auto high_it = result.high.use_case_scores.find(use_case);
      auto min_it = result.minimum.use_case_scores.find(use_case);
      if (high_it == result.high.use_case_scores.end() &&
          min_it == result.minimum.use_case_scores.end()) {
        continue;
      }
      out << result.region << ',' << core::use_case_name(use_case) << ',';
      if (high_it != result.high.use_case_scores.end()) {
        out << util::format_fixed(high_it->second, 4);
      }
      out << ',';
      if (min_it != result.minimum.use_case_scores.end()) {
        out << util::format_fixed(min_it->second, 4);
      }
      out << ',' << core::grade_name(result.grade) << '\n';
    }
  }
  return out.str();
}

}  // namespace iqb::report
