// Self-contained HTML report rendering.
//
// Produces a single static HTML document (inline CSS, no external
// assets, no JavaScript) with one card per region: the IQB barometer,
// grade badge, per-use-case bars at both quality levels, and the
// aggregate values the scores derive from. Intended as the shareable
// artifact a policy audience would actually open.
#pragma once

#include <span>
#include <string>

#include "iqb/core/pipeline.hpp"

namespace iqb::report {

struct HtmlOptions {
  std::string title = "Internet Quality Barometer";
  /// Show the per-(dataset, metric) aggregate table under each region.
  bool include_aggregates = true;
  /// Show coverage warnings.
  bool include_warnings = true;
};

/// Render the full report document.
std::string to_html(std::span<const core::RegionResult> results,
                    const HtmlOptions& options = {});

/// Write it to a file.
util::Result<void> write_html(const std::string& path,
                              std::span<const core::RegionResult> results,
                              const HtmlOptions& options = {});

}  // namespace iqb::report
