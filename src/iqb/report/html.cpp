#include "iqb/report/html.hpp"

#include <fstream>
#include <sstream>

#include "iqb/datasets/record.hpp"
#include "iqb/util/strings.hpp"

namespace iqb::report {

namespace {

std::string html_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

const char* grade_color(core::Grade grade) {
  switch (grade) {
    case core::Grade::kA: return "#1a7f37";
    case core::Grade::kB: return "#4c9a2a";
    case core::Grade::kC: return "#c9a227";
    case core::Grade::kD: return "#d4690f";
    case core::Grade::kE: return "#c0392b";
  }
  return "#666666";
}

void render_bar(std::ostringstream& out, const char* label, double value,
                const char* color) {
  out << "<div class=\"row\"><span class=\"label\">" << label << "</span>"
      << "<span class=\"track\"><span class=\"fill\" style=\"width:"
      << util::format_fixed(value * 100.0, 1) << "%;background:" << color
      << "\"></span></span><span class=\"value\">"
      << util::format_fixed(value, 2) << "</span></div>\n";
}

const char* kStyle = R"(
  body { font-family: -apple-system, "Segoe UI", Roboto, sans-serif;
         margin: 2rem auto; max-width: 64rem; color: #1f2328; }
  h1 { font-weight: 600; }
  .card { border: 1px solid #d0d7de; border-radius: 8px; padding: 1rem 1.25rem;
          margin: 1rem 0; }
  .card h2 { margin: 0 0 .25rem 0; font-size: 1.15rem; display: flex;
             align-items: center; gap: .6rem; }
  .grade { display: inline-block; color: white; border-radius: 6px;
           padding: .1rem .55rem; font-weight: 700; }
  .headline { color: #57606a; margin: 0 0 .75rem 0; font-size: .92rem; }
  .row { display: flex; align-items: center; gap: .6rem; margin: .2rem 0; }
  .label { width: 11rem; font-size: .85rem; color: #57606a; }
  .track { flex: 1; height: .6rem; background: #eaeef2; border-radius: 4px;
           overflow: hidden; }
  .fill { display: block; height: 100%; }
  .value { width: 3rem; text-align: right; font-variant-numeric: tabular-nums;
           font-size: .85rem; }
  table { border-collapse: collapse; margin-top: .75rem; font-size: .82rem; }
  th, td { border: 1px solid #d8dee4; padding: .2rem .5rem; text-align: right; }
  th:first-child, td:first-child { text-align: left; }
  .warn { color: #9a6700; font-size: .82rem; margin-top: .5rem; }
  .degraded { color: #c0392b; font-size: .85rem; font-weight: 600;
              margin-top: .5rem; }
  footer { color: #8b949e; font-size: .8rem; margin-top: 2rem; }
)";

}  // namespace

std::string to_html(std::span<const core::RegionResult> results,
                    const HtmlOptions& options) {
  std::ostringstream out;
  out << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
      << "<title>" << html_escape(options.title) << "</title>\n"
      << "<style>" << kStyle << "</style>\n</head>\n<body>\n"
      << "<h1>" << html_escape(options.title) << "</h1>\n"
      << "<p class=\"headline\">Composite Internet quality per region: "
         "high-quality score, grade, and per-use-case breakdown "
         "(thresholds and weights per the IQB framework).</p>\n";

  for (const core::RegionResult& result : results) {
    out << "<div class=\"card\">\n<h2>" << html_escape(result.region)
        << " <span class=\"grade\" style=\"background:"
        << grade_color(result.grade) << "\">"
        << core::grade_name(result.grade) << "</span></h2>\n"
        << "<p class=\"headline\">IQB score "
        << util::format_fixed(result.high.iqb_score, 3)
        << " (high quality) / "
        << util::format_fixed(result.minimum.iqb_score, 3)
        << " (minimum quality)</p>\n";

    render_bar(out, "Overall (high)", result.high.iqb_score,
               grade_color(result.grade));
    for (core::UseCase use_case : core::kAllUseCases) {
      auto it = result.high.use_case_scores.find(use_case);
      if (it == result.high.use_case_scores.end()) continue;
      render_bar(out,
                 std::string(core::use_case_display_name(use_case)).c_str(),
                 it->second, "#0969da");
    }

    if (options.include_aggregates && !result.aggregates.empty()) {
      out << "<table>\n<tr><th>dataset</th><th>metric</th><th>value</th>"
             "<th>unit</th><th>samples</th></tr>\n";
      for (const auto& cell : result.aggregates) {
        out << "<tr><td>" << html_escape(cell.dataset) << "</td><td>"
            << datasets::metric_name(cell.metric) << "</td><td>"
            << util::format_fixed(cell.value, 3) << "</td><td>"
            << datasets::metric_unit(cell.metric) << "</td><td>"
            << cell.sample_count << "</td></tr>\n";
      }
      out << "</table>\n";
    }

    if (options.include_warnings) {
      for (const std::string& warning : result.high.coverage_warnings) {
        out << "<p class=\"warn\">&#9888; " << html_escape(warning)
            << "</p>\n";
      }
    }
    const auto& degradation = result.degradation();
    if (degradation.degraded()) {
      out << "<p class=\"degraded\">&#9888; Degraded mode — confidence tier "
          << robust::confidence_tier_name(degradation.tier);
      if (!degradation.missing_datasets.empty()) {
        out << "; missing: "
            << html_escape(util::join(degradation.missing_datasets, ", "));
      }
      if (degradation.rows_quarantined > 0) {
        out << "; " << degradation.rows_quarantined << " rows quarantined";
      }
      if (!degradation.open_breakers.empty()) {
        out << "; breakers open: "
            << html_escape(util::join(degradation.open_breakers, ", "));
      }
      out << "</p>\n";
    }
    out << "</div>\n";
  }

  out << "<footer>Generated by the IQB framework reproduction "
         "(Internet Quality Barometer, IMC 2025 poster).</footer>\n"
      << "</body>\n</html>\n";
  return out.str();
}

util::Result<void> write_html(const std::string& path,
                              std::span<const core::RegionResult> results,
                              const HtmlOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return util::make_error(util::ErrorCode::kIoError,
                            "cannot open '" + path + "' for writing");
  }
  out << to_html(results, options);
  if (!out) {
    return util::make_error(util::ErrorCode::kIoError,
                            "write failed: " + path);
  }
  return util::Result<void>::success();
}

}  // namespace iqb::report
