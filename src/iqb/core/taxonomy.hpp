// The IQB taxonomy: use cases, network requirements, quality levels.
//
// Paper §2: six use cases (following Cranor et al.'s consumer
// broadband label work) and four network requirements measurable from
// open datasets. String names are stable identifiers used in configs
// and reports.
#pragma once

#include <array>
#include <string_view>

#include "iqb/datasets/record.hpp"
#include "iqb/util/result.hpp"

namespace iqb::core {

enum class UseCase {
  kWebBrowsing,
  kVideoStreaming,
  kVideoConferencing,
  kAudioStreaming,
  kOnlineBackup,
  kGaming,
};

inline constexpr std::array<UseCase, 6> kAllUseCases = {
    UseCase::kWebBrowsing,   UseCase::kVideoStreaming,
    UseCase::kVideoConferencing, UseCase::kAudioStreaming,
    UseCase::kOnlineBackup,  UseCase::kGaming,
};

enum class Requirement {
  kDownloadThroughput,
  kUploadThroughput,
  kLatency,
  kPacketLoss,
};

inline constexpr std::array<Requirement, 4> kAllRequirements = {
    Requirement::kDownloadThroughput,
    Requirement::kUploadThroughput,
    Requirement::kLatency,
    Requirement::kPacketLoss,
};

/// Fig. 2 defines thresholds at two levels.
enum class QualityLevel { kMinimum, kHigh };

inline constexpr std::array<QualityLevel, 2> kAllQualityLevels = {
    QualityLevel::kMinimum, QualityLevel::kHigh};

std::string_view use_case_name(UseCase use_case) noexcept;
std::string_view use_case_display_name(UseCase use_case) noexcept;
util::Result<UseCase> use_case_from_name(std::string_view name);

std::string_view requirement_name(Requirement requirement) noexcept;
std::string_view requirement_display_name(Requirement requirement) noexcept;
util::Result<Requirement> requirement_from_name(std::string_view name);

std::string_view quality_level_name(QualityLevel level) noexcept;
util::Result<QualityLevel> quality_level_from_name(std::string_view name);

/// The dataset-tier metric a requirement is evaluated against.
datasets::Metric requirement_metric(Requirement requirement) noexcept;

/// Comparison direction: true if meeting the requirement means the
/// measured value must be >= the threshold (throughput), false if it
/// must be <= (latency, loss).
bool requirement_higher_is_better(Requirement requirement) noexcept;

}  // namespace iqb::core
