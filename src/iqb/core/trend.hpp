// Time-windowed IQB scoring and trend detection.
//
// The poster frames IQB as a tool to "equip decision-makers with
// actionable insights"; a single score is a snapshot, but decisions
// need direction: is a region improving or regressing? This module
// slices a record store into fixed time windows, scores each window
// with the standard pipeline, and fits an ordinary-least-squares line
// through the window scores per region.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "iqb/core/pipeline.hpp"
#include "iqb/util/timestamp.hpp"

namespace iqb::core {

struct WindowScore {
  util::Timestamp window_start;
  util::Timestamp window_end;  ///< Exclusive.
  double iqb_high = 0.0;
  double iqb_minimum = 0.0;
  std::size_t record_count = 0;
};

enum class TrendDirection { kImproving, kStable, kRegressing };

std::string_view trend_direction_name(TrendDirection direction) noexcept;

struct RegionTrend {
  std::string region;
  std::vector<WindowScore> windows;
  /// OLS slope of the high-quality score in score units per day.
  double slope_per_day = 0.0;
  /// First/last window scores, for at-a-glance deltas.
  double first_score = 0.0;
  double last_score = 0.0;
  TrendDirection direction = TrendDirection::kStable;
};

struct TrendConfig {
  /// Window width in seconds (default: 7 days).
  std::int64_t window_seconds = 7 * 86400;
  /// Windows with fewer records than this are skipped (a window with
  /// two tests is noise, not signal).
  std::size_t min_records_per_window = 5;
  /// |slope| below this (score units per day) counts as kStable.
  double stable_slope_per_day = 0.002;
};

/// Score each region per time window and fit the trend. Regions with
/// fewer than two scoreable windows get an empty trend (direction
/// kStable, no slope). Error only if the store is empty.
util::Result<std::vector<RegionTrend>> analyze_trends(
    const datasets::RecordStore& store, const IqbConfig& config,
    const TrendConfig& trend_config = {});

/// OLS slope of (x, y) pairs; exposed for testing. Error if n < 2 or
/// all x identical.
util::Result<double> ols_slope(std::span<const double> x,
                               std::span<const double> y);

}  // namespace iqb::core
