// The IQB weight hierarchy — paper §3 and Table 1.
//
// Three levels of integer weights in [0, 5]:
//   w_u       — use-case weight in the IQB score (eq. 4). The paper
//               defines these but publishes no values; the default is
//               1 for every use case (equal importance), configurable.
//   w_{u,r}   — requirement weight per use case (eq. 2) — Table 1.
//   w_{u,r,d} — dataset weight per (use case, requirement) (eq. 1).
//               No published values; default 1 per dataset.
// A weight of 0 removes the element from the weighted average (it
// contributes nothing to numerator or denominator).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "iqb/core/taxonomy.hpp"
#include "iqb/util/json.hpp"

namespace iqb::core {

/// Validated integer weight in [0,5] per the paper.
constexpr int kMinWeight = 0;
constexpr int kMaxWeight = 5;

class WeightTable {
 public:
  /// Defaults: w_u = 1 everywhere, w_{u,r} = Table 1, and dataset
  /// weights 1 for each of `datasets` under every (u, r).
  static WeightTable paper_defaults(
      const std::vector<std::string>& datasets = {"ndt", "cloudflare",
                                                  "ookla"});

  /// Empty table (all lookups fall back to the fallback weight 1).
  WeightTable() = default;

  util::Result<void> set_use_case_weight(UseCase use_case, int weight);
  util::Result<void> set_requirement_weight(UseCase use_case,
                                            Requirement requirement, int weight);
  util::Result<void> set_dataset_weight(UseCase use_case, Requirement requirement,
                                        const std::string& dataset, int weight);

  /// Lookups return the stored weight, or 1 if never set — so a table
  /// with only Table 1 filled in behaves as "equal weights elsewhere".
  int use_case_weight(UseCase use_case) const noexcept;
  int requirement_weight(UseCase use_case, Requirement requirement) const noexcept;
  int dataset_weight(UseCase use_case, Requirement requirement,
                     const std::string& dataset) const noexcept;

  /// Datasets with an explicit weight entry anywhere in the table.
  std::vector<std::string> known_datasets() const;

  /// JSON round-trip, used by IqbConfig.
  util::JsonValue to_json() const;
  static util::Result<WeightTable> from_json(const util::JsonValue& json);

  bool operator==(const WeightTable& other) const = default;

 private:
  static util::Result<void> check_weight(int weight);

  std::map<int, int> use_case_weights_;
  std::map<std::pair<int, int>, int> requirement_weights_;
  std::map<std::tuple<int, int, std::string>, int> dataset_weights_;
};

}  // namespace iqb::core
