#include "iqb/core/sensitivity.hpp"

#include <algorithm>

namespace iqb::core {

using util::Result;

Result<double> SensitivityAnalyzer::score_with(const IqbConfig& config,
                                               const std::string& region,
                                               QualityLevel level) const {
  auto aggregates = datasets::aggregate(store_, config.aggregation);
  Scorer scorer(config.thresholds, config.weights);
  auto breakdown =
      scorer.score_region(aggregates, region, config.dataset_panel, level);
  if (!breakdown.ok()) return breakdown.error();
  return breakdown->iqb_score;
}

Result<SensitivityReport> SensitivityAnalyzer::analyze(
    const std::string& region, QualityLevel level,
    std::vector<double> percentiles, std::vector<double> factors) const {
  SensitivityReport report;
  report.region = region;
  report.level = level;

  auto baseline = score_with(config_, region, level);
  if (!baseline.ok()) return baseline.error();
  report.baseline_score = baseline.value();

  // --- weight perturbations: ±1 on every Table 1 entry -------------
  for (UseCase use_case : kAllUseCases) {
    for (Requirement requirement : kAllRequirements) {
      const int current = config_.weights.requirement_weight(use_case, requirement);
      for (int delta : {-1, +1}) {
        const int next = current + delta;
        if (next < kMinWeight || next > kMaxWeight) continue;
        IqbConfig variant = config_;
        auto set =
            variant.weights.set_requirement_weight(use_case, requirement, next);
        if (!set.ok()) continue;
        auto score = score_with(variant, region, level);
        if (!score.ok()) continue;
        WeightPerturbation perturbation;
        perturbation.use_case = use_case;
        perturbation.requirement = requirement;
        perturbation.delta = delta;
        perturbation.score = score.value();
        perturbation.shift = score.value() - report.baseline_score;
        report.weight_perturbations.push_back(perturbation);
      }
    }
  }

  // --- leave-one-dataset-out ----------------------------------------
  if (config_.dataset_panel.size() > 1) {
    for (const std::string& removed : config_.dataset_panel) {
      IqbConfig variant = config_;
      variant.dataset_panel.clear();
      for (const std::string& dataset : config_.dataset_panel) {
        if (dataset != removed) variant.dataset_panel.push_back(dataset);
      }
      auto score = score_with(variant, region, level);
      if (!score.ok()) continue;
      DatasetAblation ablation;
      ablation.removed_dataset = removed;
      ablation.score = score.value();
      ablation.shift = score.value() - report.baseline_score;
      report.dataset_ablations.push_back(ablation);
    }
  }

  // --- aggregation percentile sweep ----------------------------------
  for (double percentile : percentiles) {
    IqbConfig variant = config_;
    variant.aggregation.percentile = percentile;
    auto score = score_with(variant, region, level);
    if (!score.ok()) continue;
    report.percentile_sweep.push_back({percentile, score.value()});
  }

  // --- threshold scaling per requirement ------------------------------
  for (Requirement requirement : kAllRequirements) {
    for (double factor : factors) {
      IqbConfig variant = config_;
      bool applied = true;
      for (UseCase use_case : kAllUseCases) {
        for (QualityLevel threshold_level : kAllQualityLevels) {
          auto threshold =
              config_.thresholds.get(use_case, requirement, threshold_level);
          if (!threshold.ok()) continue;
          double scaled = threshold->value * factor;
          if (requirement == Requirement::kPacketLoss) {
            scaled = std::min(scaled, 1.0);
          }
          auto set = variant.thresholds.set(use_case, requirement,
                                            threshold_level, scaled);
          if (!set.ok()) applied = false;
        }
      }
      if (!applied) continue;
      auto score = score_with(variant, region, level);
      if (!score.ok()) continue;
      ThresholdScalePoint point;
      point.requirement = requirement;
      point.factor = factor;
      point.score = score.value();
      point.shift = score.value() - report.baseline_score;
      report.threshold_scaling.push_back(point);
    }
  }

  return report;
}

}  // namespace iqb::core
