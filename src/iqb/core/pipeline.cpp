#include "iqb/core/pipeline.hpp"

#include <algorithm>

#include "iqb/obs/telemetry.hpp"
#include "iqb/util/log.hpp"

namespace iqb::core {

using util::Result;

bool Pipeline::RunOutput::degraded() const noexcept {
  return std::any_of(results.begin(), results.end(),
                     [](const RegionResult& result) {
                       return result.degradation().degraded();
                     });
}

Pipeline::RunOutput Pipeline::run(const datasets::RecordStore& store) const {
  return run(store, robust::IngestHealth{});
}

Pipeline::RunOutput Pipeline::run(const datasets::RecordStore& store,
                                  const robust::IngestHealth& health) const {
  return run(store, health, nullptr);
}

Pipeline::RunOutput Pipeline::run(const datasets::RecordStore& store,
                                  const robust::IngestHealth& health,
                                  obs::Telemetry* telemetry) const {
  // Stamp the cycle's trace id onto every log record and the root
  // span for the duration of the run (keeps the caller's trace id,
  // if any, when telemetry carries none).
  util::ScopedLogTrace log_trace(telemetry && !telemetry->trace_id.empty()
                                     ? telemetry->trace_id
                                     : util::log_trace_id());
  obs::ScopedSpan run_span(telemetry ? telemetry->tracer : nullptr,
                           "pipeline.run");
  if (telemetry && !telemetry->trace_id.empty()) {
    run_span.set_attribute("trace_id", telemetry->trace_id);
  }
  RunOutput output;
  {
    obs::StageTimer stage(telemetry, "aggregate");
    output.aggregates =
        datasets::aggregate(store, config_.aggregation, telemetry);
  }
  obs::StageTimer stage(telemetry, "score");
  for (const std::string& region : store.regions()) {
    obs::ScopedSpan region_span(telemetry ? telemetry->tracer : nullptr,
                                "score.region");
    region_span.set_attribute("region", region);
    auto result = score_region(output.aggregates, region, health);
    if (result.ok()) {
      obs::add_counter(telemetry, "iqb_pipeline_regions_scored_total",
                       "Regions scored successfully");
      output.results.push_back(std::move(result).value());
    } else {
      obs::add_counter(
          telemetry, "iqb_pipeline_regions_skipped_total",
          "Regions the pipeline could not score",
          {{"reason", std::string(util::error_code_name(result.error().code))},
           {"region", region}});
      region_span.set_attribute("skipped", "true");
      output.skipped.push_back(
          {region, result.error().code, result.error().message});
    }
  }
  obs::set_gauge(telemetry, "iqb_pipeline_aggregate_cells",
                 "Aggregate cells produced by the last run", {},
                 static_cast<double>(output.aggregates.size()));
  return output;
}

Result<RegionResult> Pipeline::score_region(
    const datasets::AggregateTable& aggregates, const std::string& region,
    const robust::IngestHealth& health) const {
  Scorer scorer(config_.thresholds, config_.weights);

  auto high = scorer.score_region(aggregates, region, config_.dataset_panel,
                                  QualityLevel::kHigh);
  if (!high.ok()) return high.error();
  auto minimum = scorer.score_region(aggregates, region, config_.dataset_panel,
                                     QualityLevel::kMinimum);
  if (!minimum.ok()) return minimum.error();

  RegionResult result;
  result.region = region;
  result.high = std::move(high).value();
  result.minimum = std::move(minimum).value();
  result.grade = config_.grading.grade(result.high.iqb_score);
  // Degradation accounting: which panel datasets actually contributed
  // a binary cell at each level, plus whatever the ingest layer saw.
  result.high.degradation = robust::assess_region(
      region, config_.dataset_panel, result.high.binary.datasets(), health);
  result.minimum.degradation = robust::assess_region(
      region, config_.dataset_panel, result.minimum.binary.datasets(), health);
  for (const auto& cell : aggregates.cells()) {
    if (cell.region == region) result.aggregates.push_back(cell);
  }
  return result;
}

}  // namespace iqb::core
