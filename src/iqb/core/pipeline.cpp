#include "iqb/core/pipeline.hpp"

#include <algorithm>

namespace iqb::core {

using util::Result;

bool Pipeline::RunOutput::degraded() const noexcept {
  return std::any_of(results.begin(), results.end(),
                     [](const RegionResult& result) {
                       return result.degradation().degraded();
                     });
}

Pipeline::RunOutput Pipeline::run(const datasets::RecordStore& store) const {
  return run(store, robust::IngestHealth{});
}

Pipeline::RunOutput Pipeline::run(const datasets::RecordStore& store,
                                  const robust::IngestHealth& health) const {
  RunOutput output;
  output.aggregates = datasets::aggregate(store, config_.aggregation);
  for (const std::string& region : store.regions()) {
    auto result = score_region(output.aggregates, region, health);
    if (result.ok()) {
      output.results.push_back(std::move(result).value());
    } else {
      output.skipped.push_back(
          {region, result.error().code, result.error().message});
    }
  }
  return output;
}

Result<RegionResult> Pipeline::score_region(
    const datasets::AggregateTable& aggregates, const std::string& region,
    const robust::IngestHealth& health) const {
  Scorer scorer(config_.thresholds, config_.weights);

  auto high = scorer.score_region(aggregates, region, config_.dataset_panel,
                                  QualityLevel::kHigh);
  if (!high.ok()) return high.error();
  auto minimum = scorer.score_region(aggregates, region, config_.dataset_panel,
                                     QualityLevel::kMinimum);
  if (!minimum.ok()) return minimum.error();

  RegionResult result;
  result.region = region;
  result.high = std::move(high).value();
  result.minimum = std::move(minimum).value();
  result.grade = config_.grading.grade(result.high.iqb_score);
  // Degradation accounting: which panel datasets actually contributed
  // a binary cell at each level, plus whatever the ingest layer saw.
  result.high.degradation = robust::assess_region(
      region, config_.dataset_panel, result.high.binary.datasets(), health);
  result.minimum.degradation = robust::assess_region(
      region, config_.dataset_panel, result.minimum.binary.datasets(), health);
  for (const auto& cell : aggregates.cells()) {
    if (cell.region == region) result.aggregates.push_back(cell);
  }
  return result;
}

}  // namespace iqb::core
