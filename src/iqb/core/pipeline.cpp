#include "iqb/core/pipeline.hpp"

#include <algorithm>

namespace iqb::core {

using util::Result;

Pipeline::RunOutput Pipeline::run(const datasets::RecordStore& store) const {
  RunOutput output;
  output.aggregates = datasets::aggregate(store, config_.aggregation);
  for (const std::string& region : store.regions()) {
    auto result = score_region(output.aggregates, region);
    if (result.ok()) {
      output.results.push_back(std::move(result).value());
    } else {
      output.skipped.push_back(region + ": " + result.error().message);
    }
  }
  return output;
}

Result<RegionResult> Pipeline::score_region(
    const datasets::AggregateTable& aggregates, const std::string& region) const {
  Scorer scorer(config_.thresholds, config_.weights);

  auto high = scorer.score_region(aggregates, region, config_.dataset_panel,
                                  QualityLevel::kHigh);
  if (!high.ok()) return high.error();
  auto minimum = scorer.score_region(aggregates, region, config_.dataset_panel,
                                     QualityLevel::kMinimum);
  if (!minimum.ok()) return minimum.error();

  RegionResult result;
  result.region = region;
  result.high = std::move(high).value();
  result.minimum = std::move(minimum).value();
  result.grade = config_.grading.grade(result.high.iqb_score);
  for (const auto& cell : aggregates.cells()) {
    if (cell.region == region) result.aggregates.push_back(cell);
  }
  return result;
}

}  // namespace iqb::core
