#include "iqb/core/pipeline.hpp"

#include <algorithm>
#include <optional>

#include "iqb/obs/telemetry.hpp"
#include "iqb/util/log.hpp"
#include "iqb/util/thread_pool.hpp"

namespace iqb::core {

using util::Result;

bool Pipeline::RunOutput::degraded() const noexcept {
  return std::any_of(results.begin(), results.end(),
                     [](const RegionResult& result) {
                       return result.degradation().degraded();
                     });
}

Pipeline::RunOutput Pipeline::run(const datasets::RecordStore& store) const {
  return run(store, robust::IngestHealth{});
}

Pipeline::RunOutput Pipeline::run(const datasets::RecordStore& store,
                                  const robust::IngestHealth& health) const {
  return run(store, health, nullptr);
}

Pipeline::RunOutput Pipeline::run(const datasets::RecordStore& store,
                                  const robust::IngestHealth& health,
                                  obs::Telemetry* telemetry) const {
  // Stamp the cycle's trace id onto every log record and the root
  // span for the duration of the run (keeps the caller's trace id,
  // if any, when telemetry carries none).
  util::ScopedLogTrace log_trace(telemetry && !telemetry->trace_id.empty()
                                     ? telemetry->trace_id
                                     : util::log_trace_id());
  obs::ScopedSpan run_span(telemetry ? telemetry->tracer : nullptr,
                           "pipeline.run");
  if (telemetry && !telemetry->trace_id.empty()) {
    run_span.set_attribute("trace_id", telemetry->trace_id);
  }

  // One pool shared by the aggregate and score stages. threads == 1
  // (the library default) never constructs a pool and takes exactly
  // the historical serial code path below.
  const std::size_t threads =
      util::ThreadPool::resolve_threads(config_.aggregation.threads);
  std::optional<util::ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);

  RunOutput output;
  {
    obs::StageTimer stage(telemetry, "aggregate");
    output.aggregates = datasets::aggregate(store, config_.aggregation,
                                            telemetry, pool ? &*pool : nullptr);
  }
  obs::StageTimer stage(telemetry, "score");
  const std::vector<std::string> regions = store.regions();
  if (pool && regions.size() > 1) {
    // Parallel scoring writes into per-region slots; all telemetry is
    // emitted from the fold below in region order, so counters,
    // results and skipped entries are byte-identical to the serial
    // path at any thread count.
    struct Slot {
      std::optional<RegionResult> result;
      std::optional<SkippedRegion> skipped;
    };
    std::vector<Slot> slots(regions.size());
    pool->parallel_for(regions.size(), [&](std::size_t i) {
      auto result = score_region(output.aggregates, regions[i], health);
      if (result.ok()) {
        slots[i].result = std::move(result).value();
      } else {
        slots[i].skipped = SkippedRegion{regions[i], result.error().code,
                                         result.error().message};
      }
    });
    obs::add_counter(telemetry, "iqb_parallel_tasks_total",
                     "Tasks fanned out to the thread pool",
                     {{"stage", "score"}},
                     static_cast<double>(regions.size()));
    for (std::size_t i = 0; i < regions.size(); ++i) {
      obs::ScopedSpan region_span(telemetry ? telemetry->tracer : nullptr,
                                  "score.region");
      region_span.set_attribute("region", regions[i]);
      if (slots[i].result) {
        obs::add_counter(telemetry, "iqb_pipeline_regions_scored_total",
                         "Regions scored successfully");
        output.results.push_back(std::move(*slots[i].result));
      } else {
        obs::add_counter(
            telemetry, "iqb_pipeline_regions_skipped_total",
            "Regions the pipeline could not score",
            {{"reason",
              std::string(util::error_code_name(slots[i].skipped->code))},
             {"region", regions[i]}});
        region_span.set_attribute("skipped", "true");
        output.skipped.push_back(std::move(*slots[i].skipped));
      }
    }
  } else {
    for (const std::string& region : regions) {
      obs::ScopedSpan region_span(telemetry ? telemetry->tracer : nullptr,
                                  "score.region");
      region_span.set_attribute("region", region);
      auto result = score_region(output.aggregates, region, health);
      if (result.ok()) {
        obs::add_counter(telemetry, "iqb_pipeline_regions_scored_total",
                         "Regions scored successfully");
        output.results.push_back(std::move(result).value());
      } else {
        obs::add_counter(
            telemetry, "iqb_pipeline_regions_skipped_total",
            "Regions the pipeline could not score",
            {{"reason",
              std::string(util::error_code_name(result.error().code))},
             {"region", region}});
        region_span.set_attribute("skipped", "true");
        output.skipped.push_back(
            {region, result.error().code, result.error().message});
      }
    }
  }
  obs::set_gauge(telemetry, "iqb_pipeline_aggregate_cells",
                 "Aggregate cells produced by the last run", {},
                 static_cast<double>(output.aggregates.size()));
  return output;
}

Result<RegionResult> Pipeline::score_region(
    const datasets::AggregateTable& aggregates, const std::string& region,
    const robust::IngestHealth& health) const {
  Scorer scorer(config_.thresholds, config_.weights);

  auto high = scorer.score_region(aggregates, region, config_.dataset_panel,
                                  QualityLevel::kHigh);
  if (!high.ok()) return high.error();
  auto minimum = scorer.score_region(aggregates, region, config_.dataset_panel,
                                     QualityLevel::kMinimum);
  if (!minimum.ok()) return minimum.error();

  RegionResult result;
  result.region = region;
  result.high = std::move(high).value();
  result.minimum = std::move(minimum).value();
  result.grade = config_.grading.grade(result.high.iqb_score);
  // Degradation accounting: which panel datasets actually contributed
  // a binary cell at each level, plus whatever the ingest layer saw.
  result.high.degradation = robust::assess_region(
      region, config_.dataset_panel, result.high.binary.datasets(), health);
  result.minimum.degradation = robust::assess_region(
      region, config_.dataset_panel, result.minimum.binary.datasets(), health);
  result.aggregates = aggregates.cells_for_region(region);
  return result;
}

}  // namespace iqb::core
