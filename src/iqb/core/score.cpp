#include "iqb/core/score.hpp"

#include <algorithm>

namespace iqb::core {

using util::ErrorCode;
using util::make_error;
using util::Result;

void BinaryScoreTensor::set(UseCase use_case, Requirement requirement,
                            const std::string& dataset, bool met) {
  cells_[{static_cast<int>(use_case), static_cast<int>(requirement), dataset}] =
      met;
}

std::optional<bool> BinaryScoreTensor::get(UseCase use_case,
                                           Requirement requirement,
                                           const std::string& dataset) const noexcept {
  auto it = cells_.find(
      {static_cast<int>(use_case), static_cast<int>(requirement), dataset});
  if (it == cells_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> BinaryScoreTensor::datasets() const {
  std::vector<std::string> out;
  for (const auto& [key, met] : cells_) out.push_back(std::get<2>(key));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

BinaryScoreTensor Scorer::binarize(const datasets::AggregateTable& aggregates,
                                   const std::string& region,
                                   const std::vector<std::string>& datasets,
                                   QualityLevel level) const {
  BinaryScoreTensor tensor;
  for (UseCase use_case : kAllUseCases) {
    for (Requirement requirement : kAllRequirements) {
      auto threshold = thresholds_.get(use_case, requirement, level);
      if (!threshold.ok()) continue;  // unconfigured cell
      const datasets::Metric metric = requirement_metric(requirement);
      for (const std::string& dataset : datasets) {
        auto cell = aggregates.get(region, dataset, metric);
        if (!cell.ok()) continue;  // dataset doesn't cover this metric
        tensor.set(use_case, requirement, dataset,
                   threshold->met_by(requirement, cell->value));
      }
    }
  }
  return tensor;
}

Result<ScoreBreakdown> Scorer::score(const BinaryScoreTensor& tensor,
                                     QualityLevel level) const {
  ScoreBreakdown breakdown;
  breakdown.level = level;
  breakdown.binary = tensor;
  const std::vector<std::string> datasets = tensor.datasets();

  double iqb_numerator = 0.0;
  double iqb_denominator = 0.0;

  for (UseCase use_case : kAllUseCases) {
    const int w_u = weights_.use_case_weight(use_case);
    double use_case_numerator = 0.0;
    double use_case_denominator = 0.0;
    bool use_case_has_data = false;

    for (Requirement requirement : kAllRequirements) {
      const int w_ur = weights_.requirement_weight(use_case, requirement);

      // Eq. (1): requirement agreement score over present datasets.
      double agreement_numerator = 0.0;
      double agreement_denominator = 0.0;
      for (const std::string& dataset : datasets) {
        auto met = tensor.get(use_case, requirement, dataset);
        if (!met) continue;
        const int w_urd = weights_.dataset_weight(use_case, requirement, dataset);
        agreement_numerator += static_cast<double>(w_urd) * (*met ? 1.0 : 0.0);
        agreement_denominator += static_cast<double>(w_urd);
      }
      if (agreement_denominator <= 0.0) {
        breakdown.coverage_warnings.push_back(
            "no dataset covers " + std::string(use_case_name(use_case)) + "/" +
            std::string(requirement_name(requirement)) +
            "; requirement dropped");
        continue;
      }
      const double s_ur = agreement_numerator / agreement_denominator;
      breakdown.requirement_scores[{use_case, requirement}] = s_ur;

      // Eq. (2) accumulation.
      use_case_numerator += static_cast<double>(w_ur) * s_ur;
      use_case_denominator += static_cast<double>(w_ur);
      use_case_has_data = true;
    }

    if (!use_case_has_data || use_case_denominator <= 0.0) {
      breakdown.coverage_warnings.push_back(
          "use case " + std::string(use_case_name(use_case)) +
          " has no scoreable requirement; dropped");
      continue;
    }
    const double s_u = use_case_numerator / use_case_denominator;
    breakdown.use_case_scores[use_case] = s_u;

    // Eq. (4) accumulation.
    iqb_numerator += static_cast<double>(w_u) * s_u;
    iqb_denominator += static_cast<double>(w_u);
  }

  if (iqb_denominator <= 0.0) {
    return make_error(ErrorCode::kEmptyInput,
                      "no use case could be scored (empty tensor or all "
                      "weights zero)");
  }
  breakdown.iqb_score = iqb_numerator / iqb_denominator;
  return breakdown;
}

Result<double> Scorer::score_collapsed(const BinaryScoreTensor& tensor) const {
  // Eq. (5): one triple sum over normalized weights. Normalizers are
  // computed over the same "present cells only" sets as score() so the
  // two evaluations agree exactly in the presence of missing data.
  const std::vector<std::string> datasets = tensor.datasets();

  // Pass 1: per-(u,r) dataset normalizers and per-u requirement
  // normalizers, honouring coverage.
  std::map<std::pair<int, int>, double> dataset_norm;
  std::map<int, double> requirement_norm;
  double use_case_norm = 0.0;
  for (UseCase use_case : kAllUseCases) {
    bool use_case_has_data = false;
    for (Requirement requirement : kAllRequirements) {
      double denom = 0.0;
      for (const std::string& dataset : datasets) {
        if (tensor.get(use_case, requirement, dataset)) {
          denom += static_cast<double>(
              weights_.dataset_weight(use_case, requirement, dataset));
        }
      }
      if (denom > 0.0) {
        dataset_norm[{static_cast<int>(use_case), static_cast<int>(requirement)}] =
            denom;
        requirement_norm[static_cast<int>(use_case)] +=
            static_cast<double>(weights_.requirement_weight(use_case, requirement));
        use_case_has_data = true;
      }
    }
    if (use_case_has_data &&
        requirement_norm[static_cast<int>(use_case)] > 0.0) {
      use_case_norm += static_cast<double>(weights_.use_case_weight(use_case));
    }
  }
  if (use_case_norm <= 0.0) {
    return make_error(ErrorCode::kEmptyInput,
                      "no use case could be scored (empty tensor or all "
                      "weights zero)");
  }

  // Pass 2: the triple sum of eq. (5).
  double score = 0.0;
  for (UseCase use_case : kAllUseCases) {
    auto req_norm_it = requirement_norm.find(static_cast<int>(use_case));
    if (req_norm_it == requirement_norm.end() || req_norm_it->second <= 0.0) {
      continue;
    }
    const double w_u_norm =
        static_cast<double>(weights_.use_case_weight(use_case)) / use_case_norm;
    for (Requirement requirement : kAllRequirements) {
      auto ds_norm_it = dataset_norm.find(
          {static_cast<int>(use_case), static_cast<int>(requirement)});
      if (ds_norm_it == dataset_norm.end()) continue;
      const double w_ur_norm =
          static_cast<double>(weights_.requirement_weight(use_case, requirement)) /
          req_norm_it->second;
      for (const std::string& dataset : datasets) {
        auto met = tensor.get(use_case, requirement, dataset);
        if (!met) continue;
        const double w_urd_norm =
            static_cast<double>(
                weights_.dataset_weight(use_case, requirement, dataset)) /
            ds_norm_it->second;
        score += w_u_norm * w_ur_norm * w_urd_norm * (*met ? 1.0 : 0.0);
      }
    }
  }
  return score;
}

Result<ScoreBreakdown> Scorer::score_region(
    const datasets::AggregateTable& aggregates, const std::string& region,
    const std::vector<std::string>& datasets, QualityLevel level) const {
  return score(binarize(aggregates, region, datasets, level), level);
}

std::map<std::string, double> Scorer::renormalized_dataset_weights(
    UseCase use_case, Requirement requirement,
    const std::vector<std::string>& present_datasets) const {
  return robust::renormalize_weights(
      present_datasets, [this, use_case, requirement](const std::string& d) {
        return weights_.dataset_weight(use_case, requirement, d);
      });
}

}  // namespace iqb::core
