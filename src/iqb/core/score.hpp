// The IQB score — paper §3, equations (1)-(5).
//
// Pipeline:  binary requirement scores S_{u,r,d}  (threshold checks on
// aggregated dataset values)  →  requirement agreement scores S_{u,r}
// (eq. 1)  →  use-case scores S_u (eq. 2/3)  →  S_IQB (eq. 4/5).
//
// Missing data policy: real datasets have coverage gaps (Ookla has no
// loss). A missing S_{u,r,d} simply drops out of eq. (1)'s weighted
// average — the normalization Σ_d w runs over *present* datasets. If a
// requirement has no data in any dataset, it likewise drops out of
// eq. (2); if a use case ends up with no requirements, it drops out of
// eq. (4). A region with no usable cell at all is an error. Every drop
// is recorded in ScoreBreakdown::coverage_warnings.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "iqb/core/thresholds.hpp"
#include "iqb/core/weights.hpp"
#include "iqb/datasets/aggregate.hpp"
#include "iqb/robust/degradation.hpp"

namespace iqb::core {

/// The binary score tensor S_{u,r,d} for one region at one quality
/// level. Cells may be absent (missing data).
class BinaryScoreTensor {
 public:
  void set(UseCase use_case, Requirement requirement, const std::string& dataset,
           bool met);
  std::optional<bool> get(UseCase use_case, Requirement requirement,
                          const std::string& dataset) const noexcept;
  std::size_t size() const noexcept { return cells_.size(); }
  std::vector<std::string> datasets() const;

 private:
  std::map<std::tuple<int, int, std::string>, bool> cells_;
};

/// Full decomposition of one region's IQB score.
struct ScoreBreakdown {
  QualityLevel level = QualityLevel::kHigh;
  double iqb_score = 0.0;  ///< S_IQB in [0,1].
  std::map<UseCase, double> use_case_scores;                      ///< S_u.
  std::map<std::pair<UseCase, Requirement>, double> requirement_scores;  ///< S_{u,r}.
  BinaryScoreTensor binary;                                       ///< S_{u,r,d}.
  /// Human-readable notes about dropped cells/requirements/use cases.
  std::vector<std::string> coverage_warnings;
  /// What was missing when this score was made (filled by the
  /// pipeline; a healthy full-panel run carries an all-clear tier-A
  /// report and identical scores).
  robust::DegradationReport degradation;
};

class Scorer {
 public:
  Scorer(ThresholdTable thresholds, WeightTable weights)
      : thresholds_(std::move(thresholds)), weights_(std::move(weights)) {}

  const ThresholdTable& thresholds() const noexcept { return thresholds_; }
  const WeightTable& weights() const noexcept { return weights_; }

  /// Build S_{u,r,d} for a region from aggregated dataset values.
  /// `datasets` lists the datasets to consult (typically the weight
  /// table's known datasets). Cells without an aggregate are absent.
  BinaryScoreTensor binarize(const datasets::AggregateTable& aggregates,
                             const std::string& region,
                             const std::vector<std::string>& datasets,
                             QualityLevel level) const;

  /// Score a tensor: the factored evaluation (eqs. 1, 2, 4).
  /// Error if the tensor contributes no usable cell.
  util::Result<ScoreBreakdown> score(const BinaryScoreTensor& tensor,
                                     QualityLevel level) const;

  /// The collapsed single-sum evaluation (eq. 5):
  /// S_IQB = Σ_u Σ_r Σ_d w'_u w'_{u,r} w'_{u,r,d} S_{u,r,d}.
  /// Algebraically identical to score().iqb_score; exists so property
  /// tests can verify the paper's derivation and benches can compare
  /// the two evaluation orders.
  util::Result<double> score_collapsed(const BinaryScoreTensor& tensor) const;

  /// Convenience: binarize + score in one step.
  util::Result<ScoreBreakdown> score_region(
      const datasets::AggregateTable& aggregates, const std::string& region,
      const std::vector<std::string>& datasets, QualityLevel level) const;

  /// Eq. (1)'s normalized dataset weights w'_{u,r,d} over the
  /// *present* datasets, made explicit: the returned weights sum to 1
  /// (empty map if no present dataset carries positive weight). This
  /// is exactly the renormalization score() applies implicitly when a
  /// dataset is missing, exposed for degradation reporting and tests.
  std::map<std::string, double> renormalized_dataset_weights(
      UseCase use_case, Requirement requirement,
      const std::vector<std::string>& present_datasets) const;

 private:
  ThresholdTable thresholds_;
  WeightTable weights_;
};

}  // namespace iqb::core
