// Sensitivity analysis over the IQB design choices.
//
// The paper positions its weights, thresholds and 95th-percentile
// aggregation as an "initial iteration ... designed to be easily
// adapted". This module quantifies how much each choice matters for a
// concrete region:
//  * weight perturbation    — ±1 on each w_{u,r} (Table 1 entries);
//  * threshold scaling      — multiply all thresholds of a requirement
//                             by a factor sweep;
//  * leave-one-dataset-out  — score with each dataset removed, the
//                             classic corroboration check;
//  * percentile sweep       — re-aggregate at different percentiles.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "iqb/core/pipeline.hpp"

namespace iqb::core {

struct WeightPerturbation {
  UseCase use_case = UseCase::kWebBrowsing;
  Requirement requirement = Requirement::kDownloadThroughput;
  int delta = 0;           ///< Applied weight change (+1 / -1).
  double score = 0.0;      ///< IQB score with the change.
  double shift = 0.0;      ///< score - baseline.
};

struct DatasetAblation {
  std::string removed_dataset;
  double score = 0.0;
  double shift = 0.0;
};

struct PercentileSweepPoint {
  double percentile = 0.0;
  double score = 0.0;
};

struct ThresholdScalePoint {
  Requirement requirement = Requirement::kDownloadThroughput;
  double factor = 1.0;     ///< Applied to every use case's threshold.
  double score = 0.0;
  double shift = 0.0;
};

struct SensitivityReport {
  std::string region;
  QualityLevel level = QualityLevel::kHigh;
  double baseline_score = 0.0;
  std::vector<WeightPerturbation> weight_perturbations;
  std::vector<DatasetAblation> dataset_ablations;
  std::vector<PercentileSweepPoint> percentile_sweep;
  std::vector<ThresholdScalePoint> threshold_scaling;
};

class SensitivityAnalyzer {
 public:
  SensitivityAnalyzer(IqbConfig config, const datasets::RecordStore& store)
      : config_(std::move(config)), store_(store) {}

  /// Full report for one region. percentiles: aggregation levels to
  /// sweep (default {50,75,90,95,99}); factors: threshold scale
  /// factors (default {0.5, 0.75, 1.25, 1.5, 2.0}).
  util::Result<SensitivityReport> analyze(
      const std::string& region, QualityLevel level = QualityLevel::kHigh,
      std::vector<double> percentiles = {50, 75, 90, 95, 99},
      std::vector<double> factors = {0.5, 0.75, 1.25, 1.5, 2.0}) const;

 private:
  util::Result<double> score_with(const IqbConfig& config,
                                  const std::string& region,
                                  QualityLevel level) const;

  IqbConfig config_;
  const datasets::RecordStore& store_;
};

}  // namespace iqb::core
