#include "iqb/core/responsiveness.hpp"

#include <algorithm>

namespace iqb::core {

using util::ErrorCode;
using util::make_error;
using util::Result;

std::string_view rpm_rating_name(RpmRating rating) noexcept {
  switch (rating) {
    case RpmRating::kPoor: return "poor";
    case RpmRating::kFair: return "fair";
    case RpmRating::kGood: return "good";
    case RpmRating::kExcellent: return "excellent";
  }
  return "unknown";
}

RpmRating classify_rpm(double rpm) noexcept {
  if (rpm >= 6000.0) return RpmRating::kExcellent;
  if (rpm >= 2500.0) return RpmRating::kGood;
  if (rpm >= 1000.0) return RpmRating::kFair;
  return RpmRating::kPoor;
}

Result<std::vector<ResponsivenessReport>> analyze_responsiveness(
    const datasets::RecordStore& store,
    const datasets::AggregationPolicy& policy) {
  if (store.empty()) {
    return make_error(ErrorCode::kEmptyInput, "responsiveness: empty store");
  }
  const auto aggregates = datasets::aggregate(store, policy);

  std::vector<ResponsivenessReport> reports;
  for (const std::string& region : store.regions()) {
    ResponsivenessReport report;
    report.region = region;
    double rpm_weighted = 0.0;
    double weight_total = 0.0;
    for (const std::string& dataset : store.dataset_names()) {
      auto working = aggregates.get(region, dataset,
                                    datasets::Metric::kLoadedLatency);
      if (!working.ok() || working->value <= 0.0) continue;
      ResponsivenessCell cell;
      cell.dataset = dataset;
      cell.working_ms = working->value;
      cell.samples = working->sample_count;
      auto idle =
          aggregates.get(region, dataset, datasets::Metric::kLatency);
      cell.idle_ms = idle.ok() ? idle->value : 0.0;
      cell.bufferbloat_ms = std::max(0.0, cell.working_ms - cell.idle_ms);
      cell.rpm = 60000.0 / cell.working_ms;
      cell.rating = classify_rpm(cell.rpm);
      rpm_weighted += cell.rpm * static_cast<double>(cell.samples);
      weight_total += static_cast<double>(cell.samples);
      report.cells.push_back(std::move(cell));
    }
    if (weight_total > 0.0) {
      report.mean_rpm = rpm_weighted / weight_total;
      report.overall = classify_rpm(report.mean_rpm);
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace iqb::core
