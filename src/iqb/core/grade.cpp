#include "iqb/core/grade.hpp"

#include <cmath>

namespace iqb::core {

using util::ErrorCode;
using util::JsonObject;
using util::JsonValue;
using util::make_error;
using util::Result;

std::string_view grade_name(Grade grade) noexcept {
  switch (grade) {
    case Grade::kA: return "A";
    case Grade::kB: return "B";
    case Grade::kC: return "C";
    case Grade::kD: return "D";
    case Grade::kE: return "E";
  }
  return "?";
}

Result<GradeScale> GradeScale::with_cuts(double a, double b, double c, double d) {
  const double cuts[] = {a, b, c, d};
  for (double cut : cuts) {
    if (!std::isfinite(cut) || cut <= 0.0 || cut > 1.0) {
      return make_error(ErrorCode::kInvalidArgument,
                        "grade cuts must be in (0, 1]");
    }
  }
  if (!(a > b && b > c && c > d)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "grade cuts must be strictly decreasing (A > B > C > D)");
  }
  GradeScale scale;
  scale.cuts_ = {a, b, c, d};
  return scale;
}

Grade GradeScale::grade(double score) const noexcept {
  if (score >= cuts_[0]) return Grade::kA;
  if (score >= cuts_[1]) return Grade::kB;
  if (score >= cuts_[2]) return Grade::kC;
  if (score >= cuts_[3]) return Grade::kD;
  return Grade::kE;
}

double GradeScale::cut(Grade grade) const noexcept {
  switch (grade) {
    case Grade::kA: return cuts_[0];
    case Grade::kB: return cuts_[1];
    case Grade::kC: return cuts_[2];
    case Grade::kD: return cuts_[3];
    case Grade::kE: return 0.0;
  }
  return 0.0;
}

JsonValue GradeScale::to_json() const {
  JsonObject object;
  object.emplace("a", cuts_[0]);
  object.emplace("b", cuts_[1]);
  object.emplace("c", cuts_[2]);
  object.emplace("d", cuts_[3]);
  return object;
}

Result<GradeScale> GradeScale::from_json(const JsonValue& json) {
  auto a = json.get_number("a");
  auto b = json.get_number("b");
  auto c = json.get_number("c");
  auto d = json.get_number("d");
  if (!a.ok()) return a.error();
  if (!b.ok()) return b.error();
  if (!c.ok()) return c.error();
  if (!d.ok()) return d.error();
  return with_cuts(a.value(), b.value(), c.value(), d.value());
}

}  // namespace iqb::core
