// Letter grading of IQB scores.
//
// The paper motivates the IQB score by analogy to composite consumer
// scores — credit scores and the Nutri-Score (§1). This module maps a
// score in [0,1] to a Nutri-Score-style A-E letter band so reports can
// present a single glanceable grade. Band cut points are configurable;
// the defaults place B at "meets most weighted requirements".
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "iqb/util/json.hpp"
#include "iqb/util/result.hpp"

namespace iqb::core {

enum class Grade { kA, kB, kC, kD, kE };

inline constexpr std::array<Grade, 5> kAllGrades = {
    Grade::kA, Grade::kB, Grade::kC, Grade::kD, Grade::kE};

std::string_view grade_name(Grade grade) noexcept;

class GradeScale {
 public:
  /// Defaults: A >= 0.9, B >= 0.75, C >= 0.55, D >= 0.35, else E.
  GradeScale() = default;

  /// Custom cut points: grade g is awarded when score >= cuts[g], for
  /// the first satisfied grade in A..D order. Cuts must be strictly
  /// decreasing and within (0, 1].
  static util::Result<GradeScale> with_cuts(double a, double b, double c,
                                            double d);

  Grade grade(double score) const noexcept;

  double cut(Grade grade) const noexcept;  ///< E returns 0.

  util::JsonValue to_json() const;
  static util::Result<GradeScale> from_json(const util::JsonValue& json);

  bool operator==(const GradeScale& other) const = default;

 private:
  std::array<double, 4> cuts_{0.9, 0.75, 0.55, 0.35};  // A, B, C, D
};

}  // namespace iqb::core
