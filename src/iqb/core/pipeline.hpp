// End-to-end pipeline: measurement records -> regional IQB results.
//
// This is the library's front door (Fig. 1 as code): give it a record
// store and a config, get per-region scores at both quality levels,
// with the full breakdown and a letter grade.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "iqb/core/config.hpp"
#include "iqb/core/score.hpp"
#include "iqb/datasets/store.hpp"

namespace iqb::core {

/// One region's complete IQB result.
struct RegionResult {
  std::string region;
  ScoreBreakdown high;     ///< Scored against high-quality thresholds.
  ScoreBreakdown minimum;  ///< Scored against minimum-quality thresholds.
  Grade grade = Grade::kE; ///< Grade of the high-quality score.
  /// The aggregates the scores were derived from (for reporting).
  std::vector<datasets::AggregateCell> aggregates;
};

class Pipeline {
 public:
  explicit Pipeline(IqbConfig config) : config_(std::move(config)) {}

  const IqbConfig& config() const noexcept { return config_; }

  /// Aggregate the store once and score every region in it.
  /// Regions that cannot be scored at all are skipped with a warning
  /// entry in `skipped`.
  struct RunOutput {
    std::vector<RegionResult> results;
    std::vector<std::string> skipped;  ///< region: reason
    datasets::AggregateTable aggregates;
  };
  RunOutput run(const datasets::RecordStore& store) const;

  /// Score one region from a pre-built aggregate table.
  util::Result<RegionResult> score_region(
      const datasets::AggregateTable& aggregates,
      const std::string& region) const;

 private:
  IqbConfig config_;
};

}  // namespace iqb::core
