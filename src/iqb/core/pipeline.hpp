// End-to-end pipeline: measurement records -> regional IQB results.
//
// This is the library's front door (Fig. 1 as code): give it a record
// store and a config, get per-region scores at both quality levels,
// with the full breakdown and a letter grade.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "iqb/core/config.hpp"
#include "iqb/core/score.hpp"
#include "iqb/datasets/store.hpp"

namespace iqb::obs {
struct Telemetry;
}

namespace iqb::core {

/// One region's complete IQB result.
struct RegionResult {
  std::string region;
  ScoreBreakdown high;     ///< Scored against high-quality thresholds.
  ScoreBreakdown minimum;  ///< Scored against minimum-quality thresholds.
  Grade grade = Grade::kE; ///< Grade of the high-quality score.
  /// The aggregates the scores were derived from (for reporting).
  std::vector<datasets::AggregateCell> aggregates;

  /// The region's degradation account (the high-quality breakdown's;
  /// both levels carry one, they differ only if threshold coverage
  /// differs by level).
  const robust::DegradationReport& degradation() const noexcept {
    return high.degradation;
  }
};

/// A region the pipeline could not score at all, machine-readable.
struct SkippedRegion {
  std::string region;
  util::ErrorCode code = util::ErrorCode::kInternal;
  std::string reason;

  std::string to_string() const { return region + ": " + reason; }
};

class Pipeline {
 public:
  explicit Pipeline(IqbConfig config) : config_(std::move(config)) {}

  const IqbConfig& config() const noexcept { return config_; }

  /// Aggregate the store once and score every region in it.
  /// Regions that cannot be scored at all are skipped with a
  /// structured entry in `skipped`.
  struct RunOutput {
    std::vector<RegionResult> results;
    std::vector<SkippedRegion> skipped;
    datasets::AggregateTable aggregates;

    /// True if any scored region is below confidence tier A.
    bool degraded() const noexcept;
  };
  RunOutput run(const datasets::RecordStore& store) const;

  /// As run(), folding ingest-side health (quarantined rows, open
  /// breakers reported by whoever loaded the data) into every
  /// region's DegradationReport and confidence tier.
  RunOutput run(const datasets::RecordStore& store,
                const robust::IngestHealth& health) const;

  /// As run(), additionally recording telemetry: an "aggregate" and a
  /// "score" stage span (one "score.region" child per region) plus
  /// stage-duration histograms and scored/skipped counters. A null
  /// telemetry — or one with null members — records nothing, and the
  /// scoring output is bit-identical either way.
  RunOutput run(const datasets::RecordStore& store,
                const robust::IngestHealth& health,
                obs::Telemetry* telemetry) const;

  /// Score one region from a pre-built aggregate table. When a
  /// (region, requirement) is covered by fewer datasets than the
  /// configured panel, the per-dataset weights renormalize over the
  /// *available* datasets (the paper's eq. 1 normalized-weight form)
  /// and the result's DegradationReport says so.
  util::Result<RegionResult> score_region(
      const datasets::AggregateTable& aggregates, const std::string& region,
      const robust::IngestHealth& health = {}) const;

 private:
  IqbConfig config_;
};

}  // namespace iqb::core
