// Responsiveness (working latency) analysis — an extension beyond the
// poster's four requirements.
//
// The paper's latency requirement uses idle RTT, but the community
// increasingly evaluates *working latency*: delay while the link is
// loaded, where bufferbloat lives. The dataset tier already records
// loaded_latency per test; this module aggregates it per (region,
// dataset) and reports:
//   * working latency (p95-oriented, like the main pipeline),
//   * bufferbloat delta (working - idle),
//   * RPM ("round-trips per minute" = 60000 / working_ms), the
//     responsiveness unit popularized by the IETF IPPM draft and
//     Apple's networkQuality tool, with its coarse rating bands.
// It is deliberately additive: the published IQB score is untouched.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "iqb/datasets/aggregate.hpp"

namespace iqb::core {

enum class RpmRating { kPoor, kFair, kGood, kExcellent };

std::string_view rpm_rating_name(RpmRating rating) noexcept;

/// Rating bands per the networkQuality convention.
RpmRating classify_rpm(double rpm) noexcept;

/// One dataset's responsiveness view of a region.
struct ResponsivenessCell {
  std::string dataset;
  double idle_ms = 0.0;
  double working_ms = 0.0;
  double bufferbloat_ms = 0.0;  ///< working - idle (>= 0 clamped).
  double rpm = 0.0;
  RpmRating rating = RpmRating::kPoor;
  std::size_t samples = 0;
};

struct ResponsivenessReport {
  std::string region;
  std::vector<ResponsivenessCell> cells;  ///< One per covering dataset.
  /// Weighted (by sample count) mean RPM across datasets.
  double mean_rpm = 0.0;
  RpmRating overall = RpmRating::kPoor;
};

/// Analyze every region in the store. Datasets lacking loaded-latency
/// coverage are skipped per region; regions with no coverage at all
/// yield a report with empty cells. Error only on an empty store.
util::Result<std::vector<ResponsivenessReport>> analyze_responsiveness(
    const datasets::RecordStore& store,
    const datasets::AggregationPolicy& policy = {});

}  // namespace iqb::core
