#include "iqb/core/config.hpp"

#include <fstream>
#include <sstream>

namespace iqb::core {

using util::ErrorCode;
using util::JsonArray;
using util::JsonObject;
using util::JsonValue;
using util::make_error;
using util::Result;

IqbConfig IqbConfig::paper_defaults() {
  IqbConfig config;
  config.thresholds = ThresholdTable::paper_defaults();
  config.weights = WeightTable::paper_defaults(config.dataset_panel);
  config.aggregation = datasets::AggregationPolicy{};  // p95, linear
  config.grading = GradeScale{};
  return config;
}

Result<void> IqbConfig::validate() const {
  if (dataset_panel.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "dataset panel must not be empty");
  }
  if (!(aggregation.percentile >= 0.0 && aggregation.percentile <= 100.0)) {
    return make_error(ErrorCode::kOutOfRange,
                      "aggregation percentile must be in [0,100]");
  }
  return thresholds.validate();
}

JsonValue IqbConfig::to_json() const {
  JsonObject root;
  root.emplace("thresholds", thresholds.to_json());
  root.emplace("weights", weights.to_json());
  root.emplace("grading", grading.to_json());

  JsonObject aggregation_object;
  aggregation_object.emplace("percentile", aggregation.percentile);
  aggregation_object.emplace(
      "method", std::string(stats::quantile_method_name(aggregation.method)));
  aggregation_object.emplace("orient_to_worst", aggregation.orient_to_worst);
  aggregation_object.emplace("min_samples",
                             static_cast<double>(aggregation.min_samples));
  root.emplace("aggregation", std::move(aggregation_object));

  JsonArray panel;
  for (const std::string& dataset : dataset_panel) panel.emplace_back(dataset);
  root.emplace("dataset_panel", std::move(panel));
  return root;
}

Result<IqbConfig> IqbConfig::from_json(const JsonValue& json) {
  IqbConfig config;

  auto thresholds_json = json.get("thresholds");
  if (!thresholds_json.ok()) return thresholds_json.error();
  auto thresholds = ThresholdTable::from_json(thresholds_json.value());
  if (!thresholds.ok()) return thresholds.error();
  config.thresholds = std::move(thresholds).value();

  auto weights_json = json.get("weights");
  if (!weights_json.ok()) return weights_json.error();
  auto weights = WeightTable::from_json(weights_json.value());
  if (!weights.ok()) return weights.error();
  config.weights = std::move(weights).value();

  if (json.contains("grading")) {
    auto grading_json = json.get("grading");
    if (!grading_json.ok()) return grading_json.error();
    auto grading = GradeScale::from_json(grading_json.value());
    if (!grading.ok()) return grading.error();
    config.grading = grading.value();
  }

  if (json.contains("aggregation")) {
    auto aggregation_json = json.get("aggregation");
    if (!aggregation_json.ok()) return aggregation_json.error();
    auto percentile = aggregation_json->get_number("percentile");
    if (!percentile.ok()) return percentile.error();
    config.aggregation.percentile = percentile.value();
    if (aggregation_json->contains("method")) {
      auto method_name = aggregation_json->get_string("method");
      if (!method_name.ok()) return method_name.error();
      auto method = stats::quantile_method_from_name(method_name.value());
      if (!method.ok()) return method.error();
      config.aggregation.method = method.value();
    }
    if (aggregation_json->contains("orient_to_worst")) {
      auto orient = aggregation_json->get_bool("orient_to_worst");
      if (!orient.ok()) return orient.error();
      config.aggregation.orient_to_worst = orient.value();
    }
    if (aggregation_json->contains("min_samples")) {
      auto min_samples = aggregation_json->get_number("min_samples");
      if (!min_samples.ok()) return min_samples.error();
      config.aggregation.min_samples =
          static_cast<std::size_t>(min_samples.value());
    }
  }

  if (json.contains("dataset_panel")) {
    auto panel = json.get_array("dataset_panel");
    if (!panel.ok()) return panel.error();
    config.dataset_panel.clear();
    for (const JsonValue& entry : panel.value()) {
      if (!entry.is_string()) {
        return make_error(ErrorCode::kParseError,
                          "dataset_panel entries must be strings");
      }
      config.dataset_panel.push_back(entry.as_string());
    }
  }

  auto valid = config.validate();
  if (!valid.ok()) return valid.error();
  return config;
}

Result<IqbConfig> IqbConfig::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(ErrorCode::kIoError,
                      "cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return util::parse_json(buffer.str())
      .and_then([](const util::JsonValue& json) { return from_json(json); })
      .with_context("config '" + path + "'");
}

Result<void> IqbConfig::save(const std::string& path, int indent) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return make_error(ErrorCode::kIoError,
                      "cannot open '" + path + "' for writing");
  }
  out << to_json().dump(indent) << '\n';
  if (!out) return make_error(ErrorCode::kIoError, "write failed: " + path);
  return Result<void>::success();
}

}  // namespace iqb::core
