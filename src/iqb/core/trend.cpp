#include "iqb/core/trend.hpp"

#include <algorithm>
#include <cmath>

namespace iqb::core {

using util::ErrorCode;
using util::make_error;
using util::Result;

std::string_view trend_direction_name(TrendDirection direction) noexcept {
  switch (direction) {
    case TrendDirection::kImproving: return "improving";
    case TrendDirection::kStable: return "stable";
    case TrendDirection::kRegressing: return "regressing";
  }
  return "unknown";
}

Result<double> ols_slope(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    return make_error(ErrorCode::kInvalidArgument,
                      "ols_slope: need >= 2 paired samples");
  }
  double mean_x = 0.0, mean_y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= static_cast<double>(x.size());
  mean_y /= static_cast<double>(x.size());
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    sxx += dx * dx;
    sxy += dx * (y[i] - mean_y);
  }
  if (sxx == 0.0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "ols_slope: all x values identical");
  }
  return sxy / sxx;
}

Result<std::vector<RegionTrend>> analyze_trends(
    const datasets::RecordStore& store, const IqbConfig& config,
    const TrendConfig& trend_config) {
  if (store.empty()) {
    return make_error(ErrorCode::kEmptyInput, "trend analysis: empty store");
  }
  if (trend_config.window_seconds <= 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "trend analysis: window_seconds must be positive");
  }

  // Time extent of the data.
  util::Timestamp earliest = store.records().front().timestamp;
  util::Timestamp latest = earliest;
  for (const auto& record : store.records()) {
    earliest = std::min(earliest, record.timestamp);
    latest = std::max(latest, record.timestamp);
  }

  const Pipeline pipeline(config);
  std::vector<RegionTrend> trends;
  for (const std::string& region : store.regions()) {
    RegionTrend trend;
    trend.region = region;

    for (util::Timestamp window_start = earliest; window_start <= latest;
         window_start = window_start + trend_config.window_seconds) {
      const util::Timestamp window_end =
          window_start + trend_config.window_seconds;
      datasets::RecordFilter filter;
      filter.region = region;
      filter.from = window_start;
      filter.to = window_end;
      datasets::RecordStore window_store(store.query(filter));
      if (window_store.size() < trend_config.min_records_per_window) continue;

      auto output = pipeline.run(window_store);
      if (output.results.empty()) continue;
      WindowScore window;
      window.window_start = window_start;
      window.window_end = window_end;
      window.iqb_high = output.results.front().high.iqb_score;
      window.iqb_minimum = output.results.front().minimum.iqb_score;
      window.record_count = window_store.size();
      trend.windows.push_back(window);
    }

    if (trend.windows.size() >= 2) {
      std::vector<double> days, scores;
      days.reserve(trend.windows.size());
      scores.reserve(trend.windows.size());
      for (const WindowScore& window : trend.windows) {
        days.push_back(
            static_cast<double>(window.window_start - earliest) / 86400.0);
        scores.push_back(window.iqb_high);
      }
      auto slope = ols_slope(days, scores);
      if (slope.ok()) {
        trend.slope_per_day = slope.value();
        trend.first_score = trend.windows.front().iqb_high;
        trend.last_score = trend.windows.back().iqb_high;
        if (trend.slope_per_day > trend_config.stable_slope_per_day) {
          trend.direction = TrendDirection::kImproving;
        } else if (trend.slope_per_day < -trend_config.stable_slope_per_day) {
          trend.direction = TrendDirection::kRegressing;
        }
      }
    }
    trends.push_back(std::move(trend));
  }
  return trends;
}

}  // namespace iqb::core
