#include "iqb/core/taxonomy.hpp"

namespace iqb::core {

std::string_view use_case_name(UseCase use_case) noexcept {
  switch (use_case) {
    case UseCase::kWebBrowsing: return "web_browsing";
    case UseCase::kVideoStreaming: return "video_streaming";
    case UseCase::kVideoConferencing: return "video_conferencing";
    case UseCase::kAudioStreaming: return "audio_streaming";
    case UseCase::kOnlineBackup: return "online_backup";
    case UseCase::kGaming: return "gaming";
  }
  return "unknown";
}

std::string_view use_case_display_name(UseCase use_case) noexcept {
  switch (use_case) {
    case UseCase::kWebBrowsing: return "Web Browsing";
    case UseCase::kVideoStreaming: return "Video Streaming";
    case UseCase::kVideoConferencing: return "Video Conferencing";
    case UseCase::kAudioStreaming: return "Audio Streaming";
    case UseCase::kOnlineBackup: return "Online Backup";
    case UseCase::kGaming: return "Gaming";
  }
  return "Unknown";
}

util::Result<UseCase> use_case_from_name(std::string_view name) {
  for (UseCase use_case : kAllUseCases) {
    if (use_case_name(use_case) == name) return use_case;
  }
  return util::make_error(util::ErrorCode::kInvalidArgument,
                          "unknown use case '" + std::string(name) + "'");
}

std::string_view requirement_name(Requirement requirement) noexcept {
  switch (requirement) {
    case Requirement::kDownloadThroughput: return "download_throughput";
    case Requirement::kUploadThroughput: return "upload_throughput";
    case Requirement::kLatency: return "latency";
    case Requirement::kPacketLoss: return "packet_loss";
  }
  return "unknown";
}

std::string_view requirement_display_name(Requirement requirement) noexcept {
  switch (requirement) {
    case Requirement::kDownloadThroughput: return "Download Throughput";
    case Requirement::kUploadThroughput: return "Upload Throughput";
    case Requirement::kLatency: return "Latency";
    case Requirement::kPacketLoss: return "Packet Loss";
  }
  return "Unknown";
}

util::Result<Requirement> requirement_from_name(std::string_view name) {
  for (Requirement requirement : kAllRequirements) {
    if (requirement_name(requirement) == name) return requirement;
  }
  return util::make_error(util::ErrorCode::kInvalidArgument,
                          "unknown requirement '" + std::string(name) + "'");
}

std::string_view quality_level_name(QualityLevel level) noexcept {
  switch (level) {
    case QualityLevel::kMinimum: return "minimum";
    case QualityLevel::kHigh: return "high";
  }
  return "unknown";
}

util::Result<QualityLevel> quality_level_from_name(std::string_view name) {
  for (QualityLevel level : kAllQualityLevels) {
    if (quality_level_name(level) == name) return level;
  }
  return util::make_error(util::ErrorCode::kInvalidArgument,
                          "unknown quality level '" + std::string(name) + "'");
}

datasets::Metric requirement_metric(Requirement requirement) noexcept {
  switch (requirement) {
    case Requirement::kDownloadThroughput: return datasets::Metric::kDownload;
    case Requirement::kUploadThroughput: return datasets::Metric::kUpload;
    case Requirement::kLatency: return datasets::Metric::kLatency;
    case Requirement::kPacketLoss: return datasets::Metric::kLoss;
  }
  return datasets::Metric::kDownload;
}

bool requirement_higher_is_better(Requirement requirement) noexcept {
  switch (requirement) {
    case Requirement::kDownloadThroughput:
    case Requirement::kUploadThroughput: return true;
    case Requirement::kLatency:
    case Requirement::kPacketLoss: return false;
  }
  return true;
}

}  // namespace iqb::core
