// Quality thresholds per (use case, requirement, quality level) —
// paper Fig. 2.
//
// Values are stored in each requirement's canonical unit (Mb/s, ms,
// loss fraction). Two cells in the published table need interpretation
// and are documented in DESIGN.md:
//  * Web Browsing / Gaming upload "Other" at high quality — encoded as
//    the minimum-quality value (10 Mb/s): the experts did not raise
//    the upload requirement for high quality.
//  * Video Streaming download high "50-100 Mb/s" — encoded as the
//    upper bound, 100 Mb/s (conservative reading: high quality means
//    multiple simultaneous UHD streams).
#pragma once

#include <map>

#include "iqb/core/taxonomy.hpp"
#include "iqb/util/json.hpp"

namespace iqb::core {

/// A threshold in the requirement's canonical unit.
struct Threshold {
  double value = 0.0;

  /// True if `measured` (canonical units) satisfies this threshold for
  /// the given requirement (>= for throughput, <= for latency/loss).
  bool met_by(Requirement requirement, double measured) const noexcept {
    return requirement_higher_is_better(requirement) ? measured >= value
                                                     : measured <= value;
  }

  bool operator==(const Threshold&) const = default;
};

class ThresholdTable {
 public:
  /// Empty table; use paper_defaults() for Fig. 2.
  ThresholdTable() = default;

  /// The published Fig. 2 thresholds.
  static ThresholdTable paper_defaults();

  /// Set/overwrite one cell. Values must be finite and non-negative;
  /// loss thresholds are fractions in [0,1].
  util::Result<void> set(UseCase use_case, Requirement requirement,
                         QualityLevel level, double value);

  /// Lookup; kNotFound if the cell was never set.
  util::Result<Threshold> get(UseCase use_case, Requirement requirement,
                              QualityLevel level) const;

  bool contains(UseCase use_case, Requirement requirement,
                QualityLevel level) const noexcept;

  /// Whether the table has every (use case, requirement, level) cell.
  bool is_complete() const noexcept;

  /// Internal consistency: for every cell pair, the high-quality
  /// threshold must be at least as demanding as the minimum-quality
  /// one (>= for throughput, <= for latency/loss). Returns the first
  /// violation found, or success.
  util::Result<void> validate() const;

  std::size_t size() const noexcept { return cells_.size(); }

  /// JSON round-trip, used by IqbConfig.
  util::JsonValue to_json() const;
  static util::Result<ThresholdTable> from_json(const util::JsonValue& json);

  bool operator==(const ThresholdTable& other) const = default;

 private:
  using Key = std::tuple<int, int, int>;  // use case, requirement, level
  std::map<Key, Threshold> cells_;
};

}  // namespace iqb::core
