// IqbConfig: the complete, serializable configuration of an IQB
// deployment — thresholds, weights, aggregation policy, dataset panel
// and grading scale.
//
// The paper stresses that "IQB is designed to be easily adapted (e.g.,
// based on the intended application, or through iterative
// refinements)"; this type is that adaptation surface. A default
// config reproduces the published framework exactly; every knob can be
// overridden via JSON.
#pragma once

#include <string>
#include <vector>

#include "iqb/core/grade.hpp"
#include "iqb/core/thresholds.hpp"
#include "iqb/core/weights.hpp"
#include "iqb/datasets/aggregate.hpp"

namespace iqb::core {

struct IqbConfig {
  ThresholdTable thresholds;
  WeightTable weights;
  datasets::AggregationPolicy aggregation;
  GradeScale grading;
  /// Datasets consulted when scoring (order is cosmetic).
  std::vector<std::string> dataset_panel{"ndt", "cloudflare", "ookla"};

  /// The published framework: Fig. 2 thresholds, Table 1 weights,
  /// 95th-percentile aggregation, three-dataset panel.
  static IqbConfig paper_defaults();

  /// Sanity checks across members (threshold consistency, at least
  /// one dataset, valid percentile).
  util::Result<void> validate() const;

  util::JsonValue to_json() const;
  static util::Result<IqbConfig> from_json(const util::JsonValue& json);

  /// File convenience wrappers.
  static util::Result<IqbConfig> load(const std::string& path);
  util::Result<void> save(const std::string& path, int indent = 2) const;
};

}  // namespace iqb::core
