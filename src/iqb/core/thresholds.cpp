#include "iqb/core/thresholds.hpp"

#include <cmath>

namespace iqb::core {

using util::ErrorCode;
using util::JsonObject;
using util::JsonValue;
using util::make_error;
using util::Result;

ThresholdTable ThresholdTable::paper_defaults() {
  ThresholdTable table;
  using U = UseCase;
  using R = Requirement;
  using L = QualityLevel;

  struct Row {
    U use_case;
    double down_min, down_high;
    double up_min, up_high;
    double lat_min, lat_high;     // ms
    double loss_min, loss_high;   // percent (converted below)
  };
  // Fig. 2, one row per use case. Loss expressed in percent as
  // published; converted to fractions when stored.
  constexpr Row kRows[] = {
      {U::kWebBrowsing,        10, 100, 10, 10,  100, 50,  1.0, 0.5},
      {U::kVideoStreaming,     25, 100, 10, 10,  100, 50,  1.0, 0.1},
      {U::kVideoConferencing,  10, 100, 25, 100, 50,  20,  0.5, 0.1},
      {U::kAudioStreaming,     10, 50,  10, 50,  100, 50,  1.0, 0.1},
      {U::kOnlineBackup,       10, 10,  25, 200, 100, 100, 1.0, 0.1},
      {U::kGaming,             10, 100, 10, 10,  100, 50,  1.0, 0.5},
  };
  for (const Row& row : kRows) {
    // set() cannot fail for these constants; ignore the Results.
    (void)table.set(row.use_case, R::kDownloadThroughput, L::kMinimum, row.down_min);
    (void)table.set(row.use_case, R::kDownloadThroughput, L::kHigh, row.down_high);
    (void)table.set(row.use_case, R::kUploadThroughput, L::kMinimum, row.up_min);
    (void)table.set(row.use_case, R::kUploadThroughput, L::kHigh, row.up_high);
    (void)table.set(row.use_case, R::kLatency, L::kMinimum, row.lat_min);
    (void)table.set(row.use_case, R::kLatency, L::kHigh, row.lat_high);
    (void)table.set(row.use_case, R::kPacketLoss, L::kMinimum, row.loss_min / 100.0);
    (void)table.set(row.use_case, R::kPacketLoss, L::kHigh, row.loss_high / 100.0);
  }
  return table;
}

Result<void> ThresholdTable::set(UseCase use_case, Requirement requirement,
                                 QualityLevel level, double value) {
  if (!std::isfinite(value) || value < 0.0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "threshold must be finite and non-negative");
  }
  if (requirement == Requirement::kPacketLoss && value > 1.0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "packet loss threshold is a fraction in [0,1], got " +
                          std::to_string(value));
  }
  cells_[Key{static_cast<int>(use_case), static_cast<int>(requirement),
             static_cast<int>(level)}] = Threshold{value};
  return Result<void>::success();
}

Result<Threshold> ThresholdTable::get(UseCase use_case, Requirement requirement,
                                      QualityLevel level) const {
  auto it = cells_.find(Key{static_cast<int>(use_case),
                            static_cast<int>(requirement),
                            static_cast<int>(level)});
  if (it == cells_.end()) {
    return make_error(
        ErrorCode::kNotFound,
        "no threshold for " + std::string(use_case_name(use_case)) + "/" +
            std::string(requirement_name(requirement)) + "/" +
            std::string(quality_level_name(level)));
  }
  return it->second;
}

bool ThresholdTable::contains(UseCase use_case, Requirement requirement,
                              QualityLevel level) const noexcept {
  return cells_.find(Key{static_cast<int>(use_case),
                         static_cast<int>(requirement),
                         static_cast<int>(level)}) != cells_.end();
}

bool ThresholdTable::is_complete() const noexcept {
  for (UseCase use_case : kAllUseCases) {
    for (Requirement requirement : kAllRequirements) {
      for (QualityLevel level : kAllQualityLevels) {
        if (!contains(use_case, requirement, level)) return false;
      }
    }
  }
  return true;
}

Result<void> ThresholdTable::validate() const {
  for (UseCase use_case : kAllUseCases) {
    for (Requirement requirement : kAllRequirements) {
      auto minimum = get(use_case, requirement, QualityLevel::kMinimum);
      auto high = get(use_case, requirement, QualityLevel::kHigh);
      if (!minimum.ok() || !high.ok()) continue;  // incomplete is allowed
      const bool consistent =
          requirement_higher_is_better(requirement)
              ? high->value >= minimum->value
              : high->value <= minimum->value;
      if (!consistent) {
        return make_error(
            ErrorCode::kInvalidArgument,
            "high-quality threshold for " +
                std::string(use_case_name(use_case)) + "/" +
                std::string(requirement_name(requirement)) +
                " is less demanding than the minimum-quality threshold");
      }
    }
  }
  return Result<void>::success();
}

JsonValue ThresholdTable::to_json() const {
  // Layout: { "web_browsing": { "latency": {"minimum": 100, "high": 50},
  //                             ... }, ... }
  JsonObject root;
  for (UseCase use_case : kAllUseCases) {
    JsonObject per_use_case;
    for (Requirement requirement : kAllRequirements) {
      JsonObject per_requirement;
      for (QualityLevel level : kAllQualityLevels) {
        auto threshold = get(use_case, requirement, level);
        if (threshold.ok()) {
          per_requirement.emplace(std::string(quality_level_name(level)),
                                  threshold->value);
        }
      }
      if (!per_requirement.empty()) {
        per_use_case.emplace(std::string(requirement_name(requirement)),
                             std::move(per_requirement));
      }
    }
    if (!per_use_case.empty()) {
      root.emplace(std::string(use_case_name(use_case)),
                   std::move(per_use_case));
    }
  }
  return root;
}

Result<ThresholdTable> ThresholdTable::from_json(const JsonValue& json) {
  if (!json.is_object()) {
    return make_error(ErrorCode::kParseError,
                      "threshold table JSON must be an object");
  }
  ThresholdTable table;
  for (const auto& [use_case_key, requirements] : json.as_object()) {
    auto use_case = use_case_from_name(use_case_key);
    if (!use_case.ok()) return use_case.error();
    if (!requirements.is_object()) {
      return make_error(ErrorCode::kParseError,
                        "thresholds for '" + use_case_key +
                            "' must be an object");
    }
    for (const auto& [requirement_key, levels] : requirements.as_object()) {
      auto requirement = requirement_from_name(requirement_key);
      if (!requirement.ok()) return requirement.error();
      if (!levels.is_object()) {
        return make_error(ErrorCode::kParseError,
                          "threshold levels for '" + requirement_key +
                              "' must be an object");
      }
      for (const auto& [level_key, value] : levels.as_object()) {
        auto level = quality_level_from_name(level_key);
        if (!level.ok()) return level.error();
        if (!value.is_number()) {
          return make_error(ErrorCode::kParseError,
                            "threshold value must be a number");
        }
        auto set_result = table.set(use_case.value(), requirement.value(),
                                    level.value(), value.as_number());
        if (!set_result.ok()) return set_result.error();
      }
    }
  }
  return table;
}

}  // namespace iqb::core
