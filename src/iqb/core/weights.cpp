#include "iqb/core/weights.hpp"

#include <algorithm>

#include "iqb/util/strings.hpp"

namespace iqb::core {

using util::ErrorCode;
using util::JsonObject;
using util::JsonValue;
using util::make_error;
using util::Result;

WeightTable WeightTable::paper_defaults(const std::vector<std::string>& datasets) {
  WeightTable table;
  using U = UseCase;
  using R = Requirement;

  // w_u: the paper publishes no values; default to equal importance.
  for (UseCase use_case : kAllUseCases) {
    (void)table.set_use_case_weight(use_case, 1);
  }

  // w_{u,r}: Table 1 exactly.
  struct Row {
    U use_case;
    int down, up, latency, loss;
  };
  constexpr Row kTable1[] = {
      {U::kWebBrowsing,       3, 2, 4, 4},
      {U::kVideoStreaming,    4, 2, 4, 4},
      {U::kAudioStreaming,    4, 1, 3, 4},
      {U::kVideoConferencing, 4, 4, 4, 4},
      {U::kOnlineBackup,      4, 4, 2, 4},
      {U::kGaming,            4, 4, 5, 4},
  };
  for (const Row& row : kTable1) {
    (void)table.set_requirement_weight(row.use_case, R::kDownloadThroughput, row.down);
    (void)table.set_requirement_weight(row.use_case, R::kUploadThroughput, row.up);
    (void)table.set_requirement_weight(row.use_case, R::kLatency, row.latency);
    (void)table.set_requirement_weight(row.use_case, R::kPacketLoss, row.loss);
  }

  // w_{u,r,d}: equal trust in each dataset by default.
  for (UseCase use_case : kAllUseCases) {
    for (Requirement requirement : kAllRequirements) {
      for (const std::string& dataset : datasets) {
        (void)table.set_dataset_weight(use_case, requirement, dataset, 1);
      }
    }
  }
  return table;
}

Result<void> WeightTable::check_weight(int weight) {
  if (weight < kMinWeight || weight > kMaxWeight) {
    return make_error(ErrorCode::kOutOfRange,
                      "weight must be an integer in [0,5], got " +
                          std::to_string(weight));
  }
  return Result<void>::success();
}

Result<void> WeightTable::set_use_case_weight(UseCase use_case, int weight) {
  if (auto check = check_weight(weight); !check.ok()) return check;
  use_case_weights_[static_cast<int>(use_case)] = weight;
  return Result<void>::success();
}

Result<void> WeightTable::set_requirement_weight(UseCase use_case,
                                                 Requirement requirement,
                                                 int weight) {
  if (auto check = check_weight(weight); !check.ok()) return check;
  requirement_weights_[{static_cast<int>(use_case),
                        static_cast<int>(requirement)}] = weight;
  return Result<void>::success();
}

Result<void> WeightTable::set_dataset_weight(UseCase use_case,
                                             Requirement requirement,
                                             const std::string& dataset,
                                             int weight) {
  if (auto check = check_weight(weight); !check.ok()) return check;
  dataset_weights_[{static_cast<int>(use_case), static_cast<int>(requirement),
                    dataset}] = weight;
  return Result<void>::success();
}

int WeightTable::use_case_weight(UseCase use_case) const noexcept {
  auto it = use_case_weights_.find(static_cast<int>(use_case));
  return it == use_case_weights_.end() ? 1 : it->second;
}

int WeightTable::requirement_weight(UseCase use_case,
                                    Requirement requirement) const noexcept {
  auto it = requirement_weights_.find(
      {static_cast<int>(use_case), static_cast<int>(requirement)});
  return it == requirement_weights_.end() ? 1 : it->second;
}

int WeightTable::dataset_weight(UseCase use_case, Requirement requirement,
                                const std::string& dataset) const noexcept {
  auto it = dataset_weights_.find({static_cast<int>(use_case),
                                   static_cast<int>(requirement), dataset});
  return it == dataset_weights_.end() ? 1 : it->second;
}

std::vector<std::string> WeightTable::known_datasets() const {
  std::vector<std::string> out;
  for (const auto& [key, weight] : dataset_weights_) {
    const std::string& name = std::get<2>(key);
    if (out.empty() || out.back() != name) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

JsonValue WeightTable::to_json() const {
  JsonObject use_cases;
  for (const auto& [use_case, weight] : use_case_weights_) {
    use_cases.emplace(
        std::string(use_case_name(static_cast<UseCase>(use_case))), weight);
  }
  JsonObject requirements;
  for (const auto& [key, weight] : requirement_weights_) {
    const std::string name =
        std::string(use_case_name(static_cast<UseCase>(key.first))) + "." +
        std::string(requirement_name(static_cast<Requirement>(key.second)));
    requirements.emplace(name, weight);
  }
  JsonObject datasets;
  for (const auto& [key, weight] : dataset_weights_) {
    const std::string name =
        std::string(use_case_name(static_cast<UseCase>(std::get<0>(key)))) +
        "." +
        std::string(requirement_name(static_cast<Requirement>(std::get<1>(key)))) +
        "." + std::get<2>(key);
    datasets.emplace(name, weight);
  }
  JsonObject root;
  root.emplace("use_case_weights", std::move(use_cases));
  root.emplace("requirement_weights", std::move(requirements));
  root.emplace("dataset_weights", std::move(datasets));
  return root;
}

Result<WeightTable> WeightTable::from_json(const JsonValue& json) {
  WeightTable table;
  auto use_cases = json.get_object("use_case_weights");
  if (use_cases.ok()) {
    for (const auto& [name, value] : use_cases.value()) {
      auto use_case = use_case_from_name(name);
      if (!use_case.ok()) return use_case.error();
      if (!value.is_number()) {
        return make_error(ErrorCode::kParseError, "weight must be a number");
      }
      auto set = table.set_use_case_weight(use_case.value(),
                                           static_cast<int>(value.as_number()));
      if (!set.ok()) return set.error();
    }
  }
  auto requirements = json.get_object("requirement_weights");
  if (requirements.ok()) {
    for (const auto& [name, value] : requirements.value()) {
      auto parts = util::split(name, '.');
      if (parts.size() != 2) {
        return make_error(ErrorCode::kParseError,
                          "requirement weight key must be "
                          "'<use_case>.<requirement>', got '" + name + "'");
      }
      auto use_case = use_case_from_name(parts[0]);
      if (!use_case.ok()) return use_case.error();
      auto requirement = requirement_from_name(parts[1]);
      if (!requirement.ok()) return requirement.error();
      if (!value.is_number()) {
        return make_error(ErrorCode::kParseError, "weight must be a number");
      }
      auto set = table.set_requirement_weight(
          use_case.value(), requirement.value(),
          static_cast<int>(value.as_number()));
      if (!set.ok()) return set.error();
    }
  }
  auto datasets = json.get_object("dataset_weights");
  if (datasets.ok()) {
    for (const auto& [name, value] : datasets.value()) {
      auto parts = util::split(name, '.');
      if (parts.size() != 3) {
        return make_error(
            ErrorCode::kParseError,
            "dataset weight key must be '<use_case>.<requirement>.<dataset>', "
            "got '" + name + "'");
      }
      auto use_case = use_case_from_name(parts[0]);
      if (!use_case.ok()) return use_case.error();
      auto requirement = requirement_from_name(parts[1]);
      if (!requirement.ok()) return requirement.error();
      if (!value.is_number()) {
        return make_error(ErrorCode::kParseError, "weight must be a number");
      }
      auto set = table.set_dataset_weight(use_case.value(), requirement.value(),
                                          parts[2],
                                          static_cast<int>(value.as_number()));
      if (!set.ok()) return set.error();
    }
  }
  return table;
}

}  // namespace iqb::core
