// UDP probe train: the simulated equivalent of ping / paced loss
// probes. Sends `probe_count` probes at a fixed interval over the
// forward path; the far end echoes each probe back over the reverse
// path; RTT and delivery are recorded per probe. Probes that produce
// no echo within `timeout_s` after the train ends count as lost
// (whether the loss hit the probe or its echo — exactly the ambiguity
// a real prober faces).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "iqb/netsim/network.hpp"
#include "iqb/netsim/packet.hpp"
#include "iqb/netsim/sim.hpp"
#include "iqb/util/units.hpp"

namespace iqb::netsim {

struct UdpProbeConfig {
  std::size_t probe_count = 20;
  SimTime interval_s = 0.1;
  std::uint32_t payload_bytes = 32;
  SimTime timeout_s = 2.0;  ///< Grace period after the last probe.
};

struct UdpProbeStats {
  std::uint64_t sent = 0;
  std::uint64_t echoed = 0;
  std::vector<double> rtt_samples_ms;

  double loss_rate() const noexcept {
    return sent == 0 ? 0.0
                     : static_cast<double>(sent - echoed) /
                           static_cast<double>(sent);
  }
  double min_rtt_ms() const noexcept;
  double mean_rtt_ms() const noexcept;
};

class UdpProbeFlow {
 public:
  using CompletionFn = std::function<void(const UdpProbeStats&)>;

  UdpProbeFlow(Simulator& sim, Path forward_path, Path reverse_path,
               UdpProbeConfig config, std::uint64_t flow_id);

  UdpProbeFlow(const UdpProbeFlow&) = delete;
  UdpProbeFlow& operator=(const UdpProbeFlow&) = delete;

  void start(CompletionFn on_complete = nullptr);

  bool finished() const noexcept { return finished_; }
  const UdpProbeStats& stats() const noexcept { return stats_; }

 private:
  void send_probe(std::uint64_t seq);
  void on_probe_at_far_end(const Packet& probe);
  void on_echo(const Packet& echo);
  void finish();

  Simulator& sim_;
  Path forward_path_;
  Path reverse_path_;
  UdpProbeConfig config_;
  std::uint64_t flow_id_;
  UdpProbeStats stats_;
  CompletionFn on_complete_;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace iqb::netsim
