#include "iqb/netsim/tcp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace iqb::netsim {

util::Mbps TcpStats::goodput_between(SimTime from, SimTime to) const noexcept {
  if (throughput_samples.size() < 2 || to <= from) return util::Mbps(0.0);
  auto bytes_at = [this](SimTime t) -> double {
    // Linear interpolation over the snapshot series.
    if (t <= throughput_samples.front().time) {
      return static_cast<double>(throughput_samples.front().bytes_acked);
    }
    if (t >= throughput_samples.back().time) {
      return static_cast<double>(throughput_samples.back().bytes_acked);
    }
    for (std::size_t i = 1; i < throughput_samples.size(); ++i) {
      if (throughput_samples[i].time >= t) {
        const auto& a = throughput_samples[i - 1];
        const auto& b = throughput_samples[i];
        const double span = b.time - a.time;
        const double frac = span > 0.0 ? (t - a.time) / span : 0.0;
        return static_cast<double>(a.bytes_acked) +
               frac * static_cast<double>(b.bytes_acked - a.bytes_acked);
      }
    }
    return static_cast<double>(throughput_samples.back().bytes_acked);
  };
  const double lo = std::max(from, throughput_samples.front().time);
  const double hi = std::min(to, throughput_samples.back().time);
  if (hi <= lo) return util::Mbps(0.0);
  return util::Mbps::from_bytes_over_seconds(bytes_at(hi) - bytes_at(lo), hi - lo);
}

TcpFlow::TcpFlow(Simulator& sim, Path data_path, Path ack_path, TcpConfig config,
                 std::uint64_t flow_id)
    : sim_(sim),
      data_path_(std::move(data_path)),
      ack_path_(std::move(ack_path)),
      config_(config),
      flow_id_(flow_id) {
  assert(!data_path_.empty() && !ack_path_.empty());
  cwnd_ = config_.initial_cwnd_segments;
  ssthresh_ = config_.initial_ssthresh;
  if (config_.max_bytes > 0) {
    total_segments_ =
        (config_.max_bytes + config_.mss_bytes - 1) / config_.mss_bytes;
  }
}

void TcpFlow::start(CompletionFn on_complete) {
  assert(!started_ && "TcpFlow::start called twice");
  started_ = true;
  on_complete_ = std::move(on_complete);
  stats_.started_at = sim_.now();
  stats_.throughput_samples.push_back({sim_.now(), 0, cwnd_, 0.0});
  if (config_.sample_interval_s > 0.0) {
    sample_timer_ = sim_.schedule_in(config_.sample_interval_s,
                                     [this] { take_throughput_sample(); });
  }
  if (config_.max_duration_s > 0.0) {
    deadline_timer_ =
        sim_.schedule_in(config_.max_duration_s, [this] {
          deadline_passed_ = true;
          finish();
        });
  }
  try_send();
}

void TcpFlow::take_throughput_sample() {
  if (finished_) return;
  stats_.throughput_samples.push_back(
      {sim_.now(), stats_.bytes_acked, cwnd_, stats_.smoothed_rtt_ms});
  sample_timer_ = sim_.schedule_in(config_.sample_interval_s,
                                   [this] { take_throughput_sample(); });
}

void TcpFlow::try_send() {
  if (finished_ || deadline_passed_) return;
  const auto window = static_cast<std::uint64_t>(std::max(1.0, cwnd_));
  while (snd_nxt_ - snd_una_ < window &&
         (total_segments_ == 0 || snd_nxt_ < total_segments_)) {
    send_segment(snd_nxt_, /*retransmit=*/false);
    ++snd_nxt_;
  }
}

void TcpFlow::send_segment(std::uint64_t seq, bool retransmit) {
  Packet segment;
  segment.flow_id = flow_id_;
  segment.seq = seq;
  segment.kind = PacketKind::kData;
  segment.size_bytes = config_.mss_bytes + kTcpHeaderBytes;
  segment.sent_at = sim_.now();
  segment.retransmit = retransmit;

  ++stats_.segments_sent;
  if (retransmit) ++stats_.segments_retransmitted;

  send_along(data_path_, segment,
             [this](const Packet& delivered) { on_data_arrival(delivered); });

  if (!rto_armed_) arm_rto();
}

void TcpFlow::on_data_arrival(const Packet& segment) {
  if (finished_) return;
  // Receiver logic: cumulative ACK with out-of-order buffering.
  if (segment.seq == rcv_next_) {
    ++rcv_next_;
    auto it = rcv_out_of_order_.begin();
    while (it != rcv_out_of_order_.end() && *it == rcv_next_) {
      ++rcv_next_;
      it = rcv_out_of_order_.erase(it);
    }
  } else if (segment.seq > rcv_next_) {
    rcv_out_of_order_.insert(segment.seq);
  }  // segment.seq < rcv_next_: duplicate delivery, still ACK.

  Packet ack;
  ack.flow_id = flow_id_;
  ack.kind = PacketKind::kAck;
  ack.ack = rcv_next_;
  ack.size_bytes = kTcpHeaderBytes;
  ack.sent_at = sim_.now();
  // Timestamp echo: carry the triggering segment's send stamp back so
  // the sender samples true RTTs even behind a cumulative-ACK hole.
  ack.echo_sent_at = segment.sent_at;
  ack.echo_retransmit = segment.retransmit;
  // SACK blocks: the lowest out-of-order runs above rcv_next_.
  auto it = rcv_out_of_order_.begin();
  while (it != rcv_out_of_order_.end() &&
         ack.sack_count < Packet::kMaxSackRanges) {
    std::uint64_t begin = *it;
    std::uint64_t end = begin + 1;
    ++it;
    while (it != rcv_out_of_order_.end() && *it == end) {
      ++end;
      ++it;
    }
    ack.sack[static_cast<std::size_t>(ack.sack_count++)] = {begin, end};
  }
  send_along(ack_path_, ack,
             [this](const Packet& delivered) { on_ack_arrival(delivered); });
}

void TcpFlow::on_ack_arrival(const Packet& ack) {
  if (finished_) return;
  // Timestamp-echo RTT sample on every ACK (including duplicates),
  // excluding echoes of retransmitted segments (Karn's algorithm).
  if (!ack.echo_retransmit && ack.echo_sent_at > 0.0) {
    sample_rtt(sim_.now() - ack.echo_sent_at);
  }
  if (ack.ack > snd_una_) {
    const std::uint64_t newly = ack.ack - snd_una_;
    snd_una_ = ack.ack;
    stats_.bytes_acked += newly * config_.mss_bytes;
    rto_backoff_ = 1.0;

    if (in_recovery_) {
      if (snd_una_ >= recover_) {
        // Full recovery: deflate to ssthresh (NewReno).
        in_recovery_ = false;
        dup_acks_ = 0;
        cwnd_ = ssthresh_;
      } else {
        // Partial ACK: retransmit the leading hole, stay in recovery.
        // Once per RTT, rewind the repair cursor to the cumulative ACK:
        // retransmissions themselves can be lost in the still-congested
        // queue, and a monotone cursor would never retry them (RACK's
        // reorder timer serves this purpose in real stacks).
        const double rtt_s = have_rtt_ ? srtt_s_ : 0.05;
        if (sim_.now() - sack_cursor_reset_at_ >= rtt_s) {
          sack_cursor_ = snd_una_ + 1;
          sack_cursor_reset_at_ = sim_.now();
        }
        sack_cursor_ = std::max(sack_cursor_, snd_una_ + 1);
        send_segment(snd_una_, /*retransmit=*/true);
        cwnd_ = std::max(1.0, cwnd_ - static_cast<double>(newly) + 1.0);
        if (ack.echo_retransmit && ack.sack_count == 0) {
          // Tail-loss batch repair (RACK-flavoured): this partial ACK
          // was produced by one of our retransmissions and the
          // receiver holds no out-of-order data, so the remaining
          // hole is a contiguous run. SACK blocks cannot guide repair
          // (there are none) and one-segment-per-RTT crawl would take
          // hundreds of RTTs; retransmit a cwnd-bounded batch ahead
          // of the cumulative ACK instead.
          std::uint64_t budget = std::min<std::uint64_t>(
              32, static_cast<std::uint64_t>(std::max(1.0, cwnd_ / 4.0)));
          while (budget > 0 && sack_cursor_ < recover_ &&
                 sack_cursor_ < snd_nxt_) {
            send_segment(sack_cursor_, /*retransmit=*/true);
            ++sack_cursor_;
            --budget;
          }
        } else {
          sack_repair(ack);
        }
      }
    } else {
      dup_acks_ = 0;
      on_new_ack(newly);
    }

    if (snd_una_ == snd_nxt_) {
      rto_armed_ = false;
      sim_.cancel(rto_timer_);
      if (total_segments_ != 0 && snd_una_ >= total_segments_) {
        finish();
        return;
      }
    } else {
      arm_rto();  // restart for the next outstanding segment
    }
    try_send();
  } else if (ack.ack == snd_una_ && snd_nxt_ > snd_una_) {
    on_duplicate_ack(ack);
  }
}

void TcpFlow::on_new_ack(std::uint64_t newly_acked_segments) {
  if (cwnd_ < ssthresh_) {
    // Slow start: one segment per ACKed segment (exponential per RTT).
    cwnd_ += static_cast<double>(newly_acked_segments);
    if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;  // precise handoff
  } else {
    congestion_avoidance_ack(newly_acked_segments);
  }
  // Receive-window equivalent: real peers advertise a finite buffer.
  cwnd_ = std::min(cwnd_, config_.max_cwnd_segments);
}

void TcpFlow::congestion_avoidance_ack(std::uint64_t newly_acked) {
  switch (config_.algo) {
    case CongestionAlgo::kReno:
      // Additive increase: ~1 segment per RTT.
      cwnd_ += static_cast<double>(newly_acked) / cwnd_;
      break;
    case CongestionAlgo::kCubic:
      cubic_update();
      break;
  }
}

void TcpFlow::on_duplicate_ack(const Packet& ack) {
  ++dup_acks_;
  if (in_recovery_) {
    // Window inflation keeps the pipe full while holes persist, but is
    // bounded: unbounded inflation (one segment per dupack forever)
    // diverges during long burst-loss recoveries.
    cwnd_ = std::min(cwnd_ + 1.0, ssthresh_ * 2.0);
    sack_repair(ack);
    try_send();
    return;
  }
  if (dup_acks_ == 3) {
    enter_recovery();
    sack_repair(ack);
  }
}

void TcpFlow::sack_repair(const Packet& ack) {
  // Retransmit up to kRepairBudget of the lowest holes the SACK blocks
  // expose, tracked by a monotone cursor so each hole is retransmitted
  // once per recovery epoch (RTO is the backstop for re-lost repairs).
  if (!in_recovery_ || ack.sack_count == 0) return;
  int budget = 3;
  sack_cursor_ = std::max(sack_cursor_, snd_una_);
  for (int i = 0; i < ack.sack_count && budget > 0; ++i) {
    const auto& range = ack.sack[static_cast<std::size_t>(i)];
    while (sack_cursor_ < range.begin && budget > 0) {
      if (sack_cursor_ >= snd_nxt_) return;
      send_segment(sack_cursor_, /*retransmit=*/true);
      ++sack_cursor_;
      --budget;
    }
    sack_cursor_ = std::max(sack_cursor_, range.end);
  }
}

void TcpFlow::enter_recovery() {
  ++stats_.fast_retransmits;
  in_recovery_ = true;
  recover_ = snd_nxt_;
  sack_cursor_ = snd_una_ + 1;  // snd_una_ itself is retransmitted below
  const double flight = static_cast<double>(snd_nxt_ - snd_una_);
  switch (config_.algo) {
    case CongestionAlgo::kReno:
      ssthresh_ = std::max(flight / 2.0, 2.0);
      cwnd_ = ssthresh_ + 3.0;
      break;
    case CongestionAlgo::kCubic:
      cubic_on_congestion();
      break;
  }
  send_segment(snd_una_, /*retransmit=*/true);
}

void TcpFlow::cubic_on_congestion() {
  cubic_w_max_ = cwnd_;
  cwnd_ = std::max(cwnd_ * config_.cubic_beta, 2.0);
  ssthresh_ = cwnd_;
  cubic_k_ = std::cbrt(cubic_w_max_ * (1.0 - config_.cubic_beta) /
                       config_.cubic_c);
  cubic_epoch_start_ = sim_.now();
}

void TcpFlow::cubic_update() {
  if (cubic_epoch_start_ < 0.0) {
    // First congestion-avoidance epoch without a prior loss event.
    cubic_epoch_start_ = sim_.now();
    cubic_w_max_ = cwnd_;
    cubic_k_ = 0.0;
  }
  const double t = sim_.now() - cubic_epoch_start_;
  const double delta = t - cubic_k_;
  const double target =
      config_.cubic_c * delta * delta * delta + cubic_w_max_;
  if (target > cwnd_) {
    cwnd_ += (target - cwnd_) / cwnd_;
  } else {
    // Below the curve: probe conservatively (RFC 8312 "TCP friendly"
    // region approximated by slow Reno-like growth).
    cwnd_ += 0.05 / cwnd_;
  }
}

void TcpFlow::sample_rtt(double rtt_s) {
  stats_.rtt_samples_ms.push_back(rtt_s * 1e3);
  if (stats_.min_rtt_ms == 0.0 || rtt_s * 1e3 < stats_.min_rtt_ms) {
    stats_.min_rtt_ms = rtt_s * 1e3;
  }
  // HyStart delay-increase heuristic: while in slow start, exit when
  // the RTT has grown past min_rtt by a clamped fraction of min_rtt —
  // the queue is filling, so the pipe is found.
  if (config_.hystart && !in_recovery_ && cwnd_ < ssthresh_) {
    const double min_rtt_s = stats_.min_rtt_ms / 1e3;
    const double threshold = std::clamp(min_rtt_s / 8.0,
                                        config_.hystart_delay_min_s,
                                        config_.hystart_delay_max_s);
    if (rtt_s - min_rtt_s > threshold) {
      ssthresh_ = cwnd_;
      if (config_.algo == CongestionAlgo::kCubic) {
        // Start the cubic epoch from the discovered operating point.
        cubic_epoch_start_ = -1.0;
      }
    }
  }
  if (!have_rtt_) {
    srtt_s_ = rtt_s;
    rttvar_s_ = rtt_s / 2.0;
    have_rtt_ = true;
  } else {
    rttvar_s_ = 0.75 * rttvar_s_ + 0.25 * std::abs(srtt_s_ - rtt_s);
    srtt_s_ = 0.875 * srtt_s_ + 0.125 * rtt_s;
  }
  stats_.smoothed_rtt_ms = srtt_s_ * 1e3;
}

void TcpFlow::arm_rto() {
  sim_.cancel(rto_timer_);
  double rto = have_rtt_ ? srtt_s_ + 4.0 * rttvar_s_ : 1.0;
  rto = std::clamp(rto * rto_backoff_, config_.min_rto_s, config_.max_rto_s);
  rto_armed_ = true;
  rto_timer_ = sim_.schedule_in(rto, [this] { on_rto(); });
}

void TcpFlow::on_rto() {
  rto_armed_ = false;
  if (finished_ || snd_una_ == snd_nxt_) return;
  ++stats_.timeouts;
  // Classic timeout response: collapse to one segment, re-enter slow
  // start, exponential timer backoff.
  const double flight = static_cast<double>(snd_nxt_ - snd_una_);
  ssthresh_ = std::max(flight / 2.0, 2.0);
  cwnd_ = 1.0;
  dup_acks_ = 0;
  in_recovery_ = false;
  if (config_.algo == CongestionAlgo::kCubic) {
    cubic_epoch_start_ = -1.0;  // reset the cubic epoch
  }
  rto_backoff_ = std::min(rto_backoff_ * 2.0, 64.0);
  send_segment(snd_una_, /*retransmit=*/true);
  arm_rto();
}

void TcpFlow::finish() {
  if (finished_) return;
  finished_ = true;
  stats_.finished_at = sim_.now();
  stats_.final_cwnd_segments = cwnd_;
  stats_.throughput_samples.push_back(
      {sim_.now(), stats_.bytes_acked, cwnd_, stats_.smoothed_rtt_ms});
  sim_.cancel(rto_timer_);
  sim_.cancel(sample_timer_);
  sim_.cancel(deadline_timer_);
  if (on_complete_) {
    // Move the callback out first: it may destroy this flow's owner.
    CompletionFn cb = std::move(on_complete_);
    cb(stats_);
  }
}

}  // namespace iqb::netsim
