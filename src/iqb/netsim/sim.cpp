#include "iqb/netsim/sim.hpp"

#include <cassert>
#include <utility>

namespace iqb::netsim {

TimerId Simulator::schedule_at(SimTime time, Callback callback) {
  if (time < now_) time = now_;
  const TimerId id = next_id_++;
  heap_.push(Event{time, next_seq_++, id});
  callbacks_.emplace(id, std::move(callback));
  return id;
}

TimerId Simulator::schedule_in(SimTime delay, Callback callback) {
  assert(delay >= 0.0 && "negative delay");
  return schedule_at(now_ + delay, std::move(callback));
}

bool Simulator::cancel(TimerId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    auto cancelled_it = cancelled_.find(ev.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    auto cb_it = callbacks_.find(ev.id);
    assert(cb_it != callbacks_.end());
    Callback cb = std::move(cb_it->second);
    callbacks_.erase(cb_it);
    assert(ev.time >= now_ && "event queue went backwards");
    now_ = ev.time;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

std::size_t Simulator::run(SimTime until) {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    // Peek past cancelled entries without executing.
    const Event& top = heap_.top();
    if (cancelled_.count(top.id) != 0) {
      cancelled_.erase(top.id);
      heap_.pop();
      continue;
    }
    if (top.time > until) break;
    if (step()) ++executed;
  }
  // If we stopped because of `until`, advance the clock to it so
  // callers can interleave run() windows with external logic.
  if (until != kSimTimeInfinity && now_ < until) now_ = until;
  return executed;
}

}  // namespace iqb::netsim
