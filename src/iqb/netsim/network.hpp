// Topology: named nodes joined by duplex links, with hop-count
// routing. Measurement clients ask the network for the forward and
// reverse paths between a client node and a test-server node and then
// drive flows over those paths.
//
// Link parameters are described by copyable *specs* (LossSpec,
// QueueSpec, LinkSpec) so topologies can be built from config tables;
// each spec is instantiated into the polymorphic runtime objects when
// the link is created.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "iqb/netsim/link.hpp"
#include "iqb/util/result.hpp"

namespace iqb::netsim {

/// Copyable description of a stochastic loss model.
struct LossSpec {
  enum class Kind { kNone, kBernoulli, kGilbertElliott };
  Kind kind = Kind::kNone;
  double p = 0.0;          // Bernoulli
  double p_gb = 0.0;       // Gilbert-Elliott transition good->bad
  double p_bg = 0.0;       //                      bad->good
  double loss_good = 0.0;  //                      loss in good state
  double loss_bad = 0.0;   //                      loss in bad state

  static LossSpec none() noexcept { return {}; }
  static LossSpec bernoulli(double probability) noexcept {
    LossSpec s;
    s.kind = Kind::kBernoulli;
    s.p = probability;
    return s;
  }
  static LossSpec gilbert_elliott(double p_gb, double p_bg, double loss_good,
                                  double loss_bad) noexcept {
    LossSpec s;
    s.kind = Kind::kGilbertElliott;
    s.p_gb = p_gb;
    s.p_bg = p_bg;
    s.loss_good = loss_good;
    s.loss_bad = loss_bad;
    return s;
  }

  /// Expected long-run loss rate of the described model.
  double mean_loss_rate() const noexcept;

  std::unique_ptr<LossModel> instantiate() const;
};

/// Copyable description of a queue discipline.
struct QueueSpec {
  enum class Kind { kDropTail, kRed, kPie };
  Kind kind = Kind::kDropTail;
  std::uint64_t capacity_bytes = 256 * 1024;
  RedQueue::Config red_config{};
  PieQueue::Config pie_config{};

  static QueueSpec drop_tail(std::uint64_t capacity_bytes) noexcept {
    QueueSpec s;
    s.capacity_bytes = capacity_bytes;
    return s;
  }
  static QueueSpec red(RedQueue::Config config) noexcept {
    QueueSpec s;
    s.kind = Kind::kRed;
    s.red_config = config;
    s.capacity_bytes = config.capacity_bytes;
    return s;
  }
  static QueueSpec pie(PieQueue::Config config) noexcept {
    QueueSpec s;
    s.kind = Kind::kPie;
    s.pie_config = config;
    s.capacity_bytes = config.capacity_bytes;
    return s;
  }

  std::unique_ptr<QueueDiscipline> instantiate() const;
};

/// Copyable description of one unidirectional link.
struct LinkSpec {
  util::Mbps rate{100.0};
  util::Seconds propagation_delay{0.005};
  QueueSpec queue{};
  LossSpec loss{};
  ShaperConfig shaper{};  ///< Token-bucket provisioning; off by default.
  std::string name;
};

using NodeId = std::uint32_t;

/// A unidirectional route: the links to traverse in order.
using Path = std::vector<Link*>;

/// Send a packet across every link of a path in sequence. on_deliver
/// fires when it exits the last hop; on_drop fires at most once, at
/// whichever hop dropped it.
void send_along(const Path& path, Packet packet, Link::DeliverFn on_deliver,
                Link::DropFn on_drop = nullptr);

/// Sum of propagation delays plus per-hop serialization of a packet of
/// `bytes` — the unloaded one-way delay of the path.
util::Seconds base_one_way_delay(const Path& path, std::uint32_t bytes) noexcept;

/// Rate of the slowest link on the path.
util::Mbps bottleneck_rate(const Path& path) noexcept;

class Network {
 public:
  /// All stochastic elements (loss models) fork streams from `seed`,
  /// so identical topologies + seeds replay identically.
  Network(Simulator& sim, std::uint64_t seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  NodeId add_node(std::string name);
  util::Result<NodeId> find_node(std::string_view name) const;
  std::size_t node_count() const noexcept { return node_names_.size(); }
  const std::string& node_name(NodeId id) const { return node_names_.at(id); }

  /// Create a duplex link: forward spec applies a->b, reverse b->a.
  /// Returns the pair of created links (owned by the network).
  std::pair<Link*, Link*> add_duplex_link(NodeId a, NodeId b,
                                          const LinkSpec& a_to_b,
                                          const LinkSpec& b_to_a);

  /// Shortest path (hop count; deterministic tie-break by insertion
  /// order). Error if no route exists or a node id is invalid.
  util::Result<Path> path(NodeId from, NodeId to) const;

  /// All links, for invariant sweeps in tests.
  std::vector<const Link*> links() const;

 private:
  struct Edge {
    NodeId to;
    std::size_t link_index;  // into links_
  };

  Simulator& sim_;
  util::Rng rng_;
  std::vector<std::string> node_names_;
  std::vector<std::vector<Edge>> adjacency_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace iqb::netsim
