// Segment-level TCP model with Reno and CUBIC congestion control.
//
// This is not a byte-exact TCP implementation; it is the standard
// simulation-grade abstraction (comparable to ns-2's Agent/TCP): data
// flows one way in MSS-sized segments, cumulative ACKs flow back,
// loss is detected by triple duplicate ACKs (fast retransmit, NewReno
// partial-ACK recovery, SACK-guided hole repair per RFC 2018/6675) or
// by RTO, RTT is sampled via timestamp echo (RFC 7323), and the
// congestion window evolves per Reno (RFC 5681/6582) or CUBIC
// (RFC 8312) with HyStart. Omitted on purpose: delayed ACKs, Nagle,
// ECN, byte-granular sequencing. These do not change the phenomena
// IQB measures — throughput ramp-up, loss response, self-induced
// queueing delay.
//
// Lifetime: a TcpFlow must outlive the Simulator events it schedules;
// run the simulator to completion (or past the flow's finish) before
// destroying the flow.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "iqb/netsim/network.hpp"
#include "iqb/netsim/packet.hpp"
#include "iqb/netsim/sim.hpp"
#include "iqb/util/units.hpp"

namespace iqb::netsim {

enum class CongestionAlgo { kReno, kCubic };

struct TcpConfig {
  CongestionAlgo algo = CongestionAlgo::kReno;
  std::uint32_t mss_bytes = kDefaultMssBytes;
  double initial_cwnd_segments = 10.0;   // RFC 6928 IW10
  double initial_ssthresh = 1e12;        // effectively: slow start until loss
  /// Receive-window equivalent: cwnd never exceeds this many segments
  /// (default ~12 MB at the default MSS, a typical tuned rmem cap).
  double max_cwnd_segments = 8192.0;
  double min_rto_s = 0.2;
  double max_rto_s = 60.0;

  /// Stop after this many payload bytes are ACKed (0 = no byte limit).
  std::uint64_t max_bytes = 0;
  /// Stop sending new data after this long (0 = no time limit). The
  /// flow finishes immediately at the deadline; goodput is computed
  /// from bytes ACKed within the window, like a fixed-duration
  /// speed test.
  SimTime max_duration_s = 0.0;

  /// If > 0, record (time, bytes_acked) snapshots at this interval so
  /// clients can compute windowed rates (ramp-up discard etc.).
  SimTime sample_interval_s = 0.1;

  // CUBIC parameters (RFC 8312 defaults).
  double cubic_c = 0.4;
  double cubic_beta = 0.7;

  /// HyStart-style delay-based slow-start exit (on by default, as in
  /// Linux). Without SACK, a full slow-start overshoot into a deep
  /// buffer creates thousands of holes that NewReno then repairs one
  /// RTT each — a pathology real stacks avoid; HyStart exits slow
  /// start when queueing delay builds instead.
  bool hystart = true;
  double hystart_delay_min_s = 0.004;
  double hystart_delay_max_s = 0.016;
};

struct ThroughputSample {
  SimTime time = 0.0;
  std::uint64_t bytes_acked = 0;
  double cwnd_segments = 0.0;   ///< Congestion window at sample time.
  double smoothed_rtt_ms = 0.0; ///< Smoothed RTT at sample time (0 if none).
};

struct TcpStats {
  SimTime started_at = 0.0;
  SimTime finished_at = 0.0;
  std::uint64_t bytes_acked = 0;
  std::uint64_t segments_sent = 0;          ///< Includes retransmissions.
  std::uint64_t segments_retransmitted = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  double min_rtt_ms = 0.0;
  double smoothed_rtt_ms = 0.0;
  double final_cwnd_segments = 0.0;
  std::vector<double> rtt_samples_ms;
  std::vector<ThroughputSample> throughput_samples;

  /// Average goodput over the flow's lifetime.
  util::Mbps goodput() const noexcept {
    const double elapsed = finished_at - started_at;
    return util::Mbps::from_bytes_over_seconds(
        static_cast<double>(bytes_acked), elapsed);
  }

  /// Retransmitted fraction of all sent segments — the loss signal a
  /// TCP-based test (like NDT's TCP_INFO) actually observes.
  double retransmit_rate() const noexcept {
    return segments_sent == 0
               ? 0.0
               : static_cast<double>(segments_retransmitted) /
                     static_cast<double>(segments_sent);
  }

  /// Goodput between two times, from the snapshot series (clamps to
  /// the recorded range). Used for ramp-up discard.
  util::Mbps goodput_between(SimTime from, SimTime to) const noexcept;
};

class TcpFlow {
 public:
  using CompletionFn = std::function<void(const TcpStats&)>;

  /// data_path carries data segments sender->receiver; ack_path
  /// carries ACKs back. Both must be non-empty.
  TcpFlow(Simulator& sim, Path data_path, Path ack_path, TcpConfig config,
          std::uint64_t flow_id);

  TcpFlow(const TcpFlow&) = delete;
  TcpFlow& operator=(const TcpFlow&) = delete;

  /// Begin transmitting. on_complete (optional) fires once, when the
  /// byte limit is reached or the duration expires.
  void start(CompletionFn on_complete = nullptr);

  bool finished() const noexcept { return finished_; }
  const TcpStats& stats() const noexcept { return stats_; }
  double cwnd_segments() const noexcept { return cwnd_; }

 private:
  // --- sender ---
  void try_send();
  void send_segment(std::uint64_t seq, bool retransmit);
  void on_ack_arrival(const Packet& ack);
  void on_new_ack(std::uint64_t newly_acked_segments);
  void on_duplicate_ack(const Packet& ack);
  void enter_recovery();
  void sack_repair(const Packet& ack);
  void congestion_avoidance_ack(std::uint64_t newly_acked);
  void cubic_on_congestion();
  void cubic_update();
  void arm_rto();
  void on_rto();
  void sample_rtt(double rtt_s);
  void take_throughput_sample();
  void finish();

  // --- receiver (modelled in-process; emits cumulative ACKs) ---
  void on_data_arrival(const Packet& segment);

  Simulator& sim_;
  Path data_path_;
  Path ack_path_;
  TcpConfig config_;
  std::uint64_t flow_id_;

  // Sender state. Sequence numbers count whole segments.
  std::uint64_t snd_una_ = 0;  ///< Oldest unacked segment.
  std::uint64_t snd_nxt_ = 0;  ///< Next segment to send.
  double cwnd_ = 0.0;          ///< Congestion window, in segments.
  double ssthresh_ = 0.0;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;  ///< NewReno recovery point.
  std::uint64_t sack_cursor_ = 0;  ///< Next hole eligible for SACK repair.
  SimTime sack_cursor_reset_at_ = 0.0;  ///< Last re-repair pass (RACK-ish).
  std::uint64_t total_segments_ = 0;  ///< 0 = unbounded.
  bool deadline_passed_ = false;

  // RTO state (Jacobson/Karels).
  double srtt_s_ = 0.0;
  double rttvar_s_ = 0.0;
  bool have_rtt_ = false;
  double rto_backoff_ = 1.0;
  TimerId rto_timer_ = 0;
  bool rto_armed_ = false;

  // CUBIC state.
  double cubic_w_max_ = 0.0;
  double cubic_k_ = 0.0;
  SimTime cubic_epoch_start_ = -1.0;

  // Receiver state.
  std::uint64_t rcv_next_ = 0;
  std::set<std::uint64_t> rcv_out_of_order_;

  TcpStats stats_;
  CompletionFn on_complete_;
  bool started_ = false;
  bool finished_ = false;
  TimerId sample_timer_ = 0;
  TimerId deadline_timer_ = 0;
};

}  // namespace iqb::netsim
