#include "iqb/netsim/udp.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace iqb::netsim {

double UdpProbeStats::min_rtt_ms() const noexcept {
  if (rtt_samples_ms.empty()) return 0.0;
  return *std::min_element(rtt_samples_ms.begin(), rtt_samples_ms.end());
}

double UdpProbeStats::mean_rtt_ms() const noexcept {
  if (rtt_samples_ms.empty()) return 0.0;
  const double sum =
      std::accumulate(rtt_samples_ms.begin(), rtt_samples_ms.end(), 0.0);
  return sum / static_cast<double>(rtt_samples_ms.size());
}

UdpProbeFlow::UdpProbeFlow(Simulator& sim, Path forward_path, Path reverse_path,
                           UdpProbeConfig config, std::uint64_t flow_id)
    : sim_(sim),
      forward_path_(std::move(forward_path)),
      reverse_path_(std::move(reverse_path)),
      config_(config),
      flow_id_(flow_id) {
  assert(!forward_path_.empty() && !reverse_path_.empty());
  assert(config_.probe_count > 0);
}

void UdpProbeFlow::start(CompletionFn on_complete) {
  assert(!started_ && "UdpProbeFlow::start called twice");
  started_ = true;
  on_complete_ = std::move(on_complete);
  for (std::size_t i = 0; i < config_.probe_count; ++i) {
    sim_.schedule_in(config_.interval_s * static_cast<double>(i),
                     [this, i] { send_probe(i); });
  }
  // Hard stop: last probe send time + timeout.
  const SimTime deadline =
      config_.interval_s * static_cast<double>(config_.probe_count - 1) +
      config_.timeout_s;
  sim_.schedule_in(deadline, [this] { finish(); });
}

void UdpProbeFlow::send_probe(std::uint64_t seq) {
  if (finished_) return;
  Packet probe;
  probe.flow_id = flow_id_;
  probe.seq = seq;
  probe.kind = PacketKind::kProbe;
  probe.size_bytes = config_.payload_bytes + kUdpHeaderBytes;
  probe.sent_at = sim_.now();
  ++stats_.sent;
  send_along(forward_path_, probe,
             [this](const Packet& arrived) { on_probe_at_far_end(arrived); });
}

void UdpProbeFlow::on_probe_at_far_end(const Packet& probe) {
  if (finished_) return;
  Packet echo;
  echo.flow_id = flow_id_;
  echo.kind = PacketKind::kProbeEcho;
  echo.echo_seq = probe.seq;
  echo.size_bytes = probe.size_bytes;  // symmetric echo
  echo.sent_at = probe.sent_at;        // carry the original send stamp
  send_along(reverse_path_, echo,
             [this](const Packet& arrived) { on_echo(arrived); });
}

void UdpProbeFlow::on_echo(const Packet& echo) {
  if (finished_) return;
  ++stats_.echoed;
  stats_.rtt_samples_ms.push_back((sim_.now() - echo.sent_at) * 1e3);
}

void UdpProbeFlow::finish() {
  if (finished_) return;
  finished_ = true;
  if (on_complete_) {
    CompletionFn cb = std::move(on_complete_);
    cb(stats_);
  }
}

}  // namespace iqb::netsim
