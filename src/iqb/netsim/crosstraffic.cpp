#include "iqb/netsim/crosstraffic.hpp"

#include <cassert>

namespace iqb::netsim {

CrossTrafficFlow::CrossTrafficFlow(Simulator& sim, Path path,
                                   CrossTrafficConfig config, util::Rng rng,
                                   std::uint64_t flow_id)
    : sim_(sim),
      path_(std::move(path)),
      config_(config),
      rng_(rng),
      flow_id_(flow_id) {
  assert(!path_.empty());
  assert(config_.rate.value() > 0.0);
}

void CrossTrafficFlow::start() {
  // Start in a random phase so concurrent subscribers don't pulse in
  // lockstep.
  const double initial_delay =
      rng_.exponential(1.0 / std::max(config_.mean_off_s, 1e-3));
  sim_.schedule_in(initial_delay, [this] { begin_burst(); });
}

void CrossTrafficFlow::begin_burst() {
  if (stopped_ || sim_.now() >= config_.stop_at) return;
  on_ = true;
  const double burst = rng_.exponential(1.0 / std::max(config_.mean_on_s, 1e-3));
  burst_ends_at_ = sim_.now() + burst;
  send_next();
}

void CrossTrafficFlow::send_next() {
  if (stopped_ || sim_.now() >= config_.stop_at) return;
  if (sim_.now() >= burst_ends_at_) {
    on_ = false;
    const double idle =
        rng_.exponential(1.0 / std::max(config_.mean_off_s, 1e-3));
    sim_.schedule_in(idle, [this] { begin_burst(); });
    return;
  }
  Packet packet;
  packet.flow_id = flow_id_;
  packet.seq = packets_sent_;
  packet.kind = PacketKind::kData;
  packet.size_bytes = config_.packet_bytes + kUdpHeaderBytes;
  packet.sent_at = sim_.now();
  ++packets_sent_;
  // Fire-and-forget: cross traffic is not acknowledged.
  send_along(path_, packet, [](const Packet&) {});

  const double interval = static_cast<double>(packet.size_bytes) * 8.0 /
                          config_.rate.bits_per_second();
  sim_.schedule_in(interval, [this] { send_next(); });
}

}  // namespace iqb::netsim
