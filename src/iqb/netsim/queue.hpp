// Queue disciplines deciding admission into a link's buffer.
//
// DropTail models the fixed FIFO buffers of consumer CPE; RED models
// classic probabilistic AQM; PIE (RFC 8033) models modern
// latency-targeting AQM (DOCSIS 3.1 ships it), dropping at enqueue
// based on the estimated queueing delay. The choice of discipline is
// what separates a "fast but bloated" link from a "responsive" one in
// the simulated populations, directly exercising IQB's
// latency-vs-throughput story.
#pragma once

#include <cstdint>

#include "iqb/netsim/sim.hpp"
#include "iqb/util/rng.hpp"

namespace iqb::netsim {

/// Everything a discipline may consult when deciding admission.
struct QueueContext {
  std::uint64_t queued_bytes = 0;   ///< Bytes already buffered.
  std::uint32_t packet_bytes = 0;   ///< Size of the arriving packet.
  SimTime now = 0.0;                ///< Simulation clock.
  double drain_rate_bps = 0.0;      ///< Link rate draining this queue.
};

class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;
  /// Decide whether the arriving packet may enter the queue. Called
  /// once per enqueue attempt.
  virtual bool admit(const QueueContext& context, util::Rng& rng) = 0;
  /// Buffer capacity in bytes (for reporting).
  virtual std::uint64_t capacity_bytes() const noexcept = 0;
};

/// FIFO with a hard byte limit.
class DropTailQueue final : public QueueDiscipline {
 public:
  explicit DropTailQueue(std::uint64_t capacity_bytes) noexcept
      : capacity_(capacity_bytes) {}

  bool admit(const QueueContext& context, util::Rng&) override {
    return context.queued_bytes + context.packet_bytes <= capacity_;
  }
  std::uint64_t capacity_bytes() const noexcept override { return capacity_; }

 private:
  std::uint64_t capacity_;
};

/// Random Early Detection (Floyd & Jacobson 1993), byte mode, with an
/// EWMA of the instantaneous queue. Drops with probability rising
/// linearly from 0 at min_threshold to max_p at max_threshold; hard
/// drop above max_threshold or the physical capacity.
class RedQueue final : public QueueDiscipline {
 public:
  struct Config {
    std::uint64_t capacity_bytes = 256 * 1024;
    std::uint64_t min_threshold_bytes = 32 * 1024;
    std::uint64_t max_threshold_bytes = 128 * 1024;
    double max_drop_probability = 0.1;
    double ewma_weight = 0.002;  ///< Classic RED w_q.
  };

  explicit RedQueue(Config config) noexcept : config_(config) {}

  bool admit(const QueueContext& context, util::Rng& rng) override;
  std::uint64_t capacity_bytes() const noexcept override {
    return config_.capacity_bytes;
  }

  double average_queue_bytes() const noexcept { return avg_; }

 private:
  Config config_;
  double avg_ = 0.0;
  // Count of packets admitted since the last drop; RED uses it to
  // spread drops out (uniformization).
  std::uint64_t since_last_drop_ = 0;
};

/// PIE — Proportional Integral controller Enhanced (RFC 8033,
/// simplified: no burst allowance, no ECN). Estimates queueing delay
/// as queued_bytes / drain_rate and updates a drop probability every
/// t_update via the PI control law
///   p += alpha * (delay - target) + beta * (delay - delay_old).
class PieQueue final : public QueueDiscipline {
 public:
  struct Config {
    std::uint64_t capacity_bytes = 512 * 1024;
    double target_delay_s = 0.015;  ///< RFC 8033 default 15 ms.
    double t_update_s = 0.015;      ///< Probability update interval.
    double alpha = 0.125;           ///< Integral gain (1/s of delay error).
    double beta = 1.25;             ///< Proportional gain.
  };

  explicit PieQueue(Config config) noexcept : config_(config) {}

  bool admit(const QueueContext& context, util::Rng& rng) override;
  std::uint64_t capacity_bytes() const noexcept override {
    return config_.capacity_bytes;
  }

  double drop_probability() const noexcept { return drop_probability_; }

 private:
  void maybe_update(const QueueContext& context);

  Config config_;
  double drop_probability_ = 0.0;
  double last_delay_s_ = 0.0;
  SimTime next_update_at_ = 0.0;
};

}  // namespace iqb::netsim
