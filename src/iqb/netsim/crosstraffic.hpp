// Background cross-traffic generator.
//
// Real access links are rarely idle while a speed test runs: other
// devices stream, sync and browse. This flow injects an on/off UDP
// stream (exponentially distributed burst and idle periods) at a
// configurable fraction of a target rate, giving each simulated
// subscriber time-varying measurements — which is what makes the 95th
// percentile aggregation of the IQB datasets tier meaningful.
#pragma once

#include <cstdint>

#include "iqb/netsim/network.hpp"
#include "iqb/netsim/packet.hpp"
#include "iqb/netsim/sim.hpp"
#include "iqb/util/rng.hpp"
#include "iqb/util/units.hpp"

namespace iqb::netsim {

struct CrossTrafficConfig {
  util::Mbps rate{10.0};          ///< Sending rate while ON.
  double mean_on_s = 2.0;         ///< Mean burst duration.
  double mean_off_s = 2.0;        ///< Mean idle duration.
  std::uint32_t packet_bytes = 1200;
  SimTime stop_at = kSimTimeInfinity;  ///< Stop generating after this time.
};

class CrossTrafficFlow {
 public:
  CrossTrafficFlow(Simulator& sim, Path path, CrossTrafficConfig config,
                   util::Rng rng, std::uint64_t flow_id);

  CrossTrafficFlow(const CrossTrafficFlow&) = delete;
  CrossTrafficFlow& operator=(const CrossTrafficFlow&) = delete;

  void start();
  void stop() noexcept { stopped_ = true; }

  std::uint64_t packets_sent() const noexcept { return packets_sent_; }

 private:
  void begin_burst();
  void send_next();

  Simulator& sim_;
  Path path_;
  CrossTrafficConfig config_;
  util::Rng rng_;
  std::uint64_t flow_id_;
  bool on_ = false;
  bool stopped_ = false;
  SimTime burst_ends_at_ = 0.0;
  std::uint64_t packets_sent_ = 0;
};

}  // namespace iqb::netsim
