#include "iqb/netsim/network.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

namespace iqb::netsim {

using util::ErrorCode;
using util::make_error;
using util::Result;

double LossSpec::mean_loss_rate() const noexcept {
  switch (kind) {
    case Kind::kNone: return 0.0;
    case Kind::kBernoulli: return p;
    case Kind::kGilbertElliott: {
      const double denom = p_gb + p_bg;
      if (denom <= 0.0) return loss_good;
      const double pi_bad = p_gb / denom;
      return pi_bad * loss_bad + (1.0 - pi_bad) * loss_good;
    }
  }
  return 0.0;
}

std::unique_ptr<LossModel> LossSpec::instantiate() const {
  switch (kind) {
    case Kind::kNone: return std::make_unique<NoLoss>();
    case Kind::kBernoulli: return std::make_unique<BernoulliLoss>(p);
    case Kind::kGilbertElliott:
      return std::make_unique<GilbertElliottLoss>(p_gb, p_bg, loss_good, loss_bad);
  }
  return std::make_unique<NoLoss>();
}

std::unique_ptr<QueueDiscipline> QueueSpec::instantiate() const {
  switch (kind) {
    case Kind::kDropTail: return std::make_unique<DropTailQueue>(capacity_bytes);
    case Kind::kRed: return std::make_unique<RedQueue>(red_config);
    case Kind::kPie: return std::make_unique<PieQueue>(pie_config);
  }
  return std::make_unique<DropTailQueue>(capacity_bytes);
}

namespace {

/// Recursive hop-chaining: deliver at the last hop, otherwise forward
/// to the next link. Captures copy the path by value at the first call
/// so the closure is self-contained; links must outlive in-flight
/// packets (guaranteed: the Network owns them for the simulation).
void send_hop(std::shared_ptr<const Path> path, std::size_t hop, Packet packet,
              Link::DeliverFn on_deliver, Link::DropFn on_drop) {
  Link* link = (*path)[hop];
  if (hop + 1 == path->size()) {
    link->send(std::move(packet), std::move(on_deliver), std::move(on_drop));
    return;
  }
  // Build the forwarding closure (which owns on_drop for later hops)
  // BEFORE passing a copy to this hop: evaluation order of function
  // arguments is unspecified, so capturing and moving on_drop in the
  // same call would race.
  Link::DropFn drop_here = on_drop;
  Link::DeliverFn forward =
      [path = std::move(path), hop, on_deliver = std::move(on_deliver),
       on_drop = std::move(on_drop)](const Packet& delivered) mutable {
        send_hop(std::move(path), hop + 1, delivered, std::move(on_deliver),
                 std::move(on_drop));
      };
  link->send(std::move(packet), std::move(forward), std::move(drop_here));
}

}  // namespace

void send_along(const Path& path, Packet packet, Link::DeliverFn on_deliver,
                Link::DropFn on_drop) {
  assert(!path.empty() && "send_along on empty path");
  send_hop(std::make_shared<const Path>(path), 0, std::move(packet),
           std::move(on_deliver), std::move(on_drop));
}

util::Seconds base_one_way_delay(const Path& path, std::uint32_t bytes) noexcept {
  double total = 0.0;
  for (const Link* link : path) {
    total += link->propagation_delay().value();
    total += static_cast<double>(bytes) * 8.0 / link->rate().bits_per_second();
  }
  return util::Seconds(total);
}

util::Mbps bottleneck_rate(const Path& path) noexcept {
  double rate = std::numeric_limits<double>::infinity();
  for (const Link* link : path) rate = std::min(rate, link->rate().value());
  return util::Mbps(rate);
}

Network::Network(Simulator& sim, std::uint64_t seed) : sim_(sim), rng_(seed) {}

NodeId Network::add_node(std::string name) {
  node_names_.push_back(std::move(name));
  adjacency_.emplace_back();
  return static_cast<NodeId>(node_names_.size() - 1);
}

Result<NodeId> Network::find_node(std::string_view name) const {
  for (std::size_t i = 0; i < node_names_.size(); ++i) {
    if (node_names_[i] == name) return static_cast<NodeId>(i);
  }
  return make_error(ErrorCode::kNotFound,
                    "no node named '" + std::string(name) + "'");
}

std::pair<Link*, Link*> Network::add_duplex_link(NodeId a, NodeId b,
                                                 const LinkSpec& a_to_b,
                                                 const LinkSpec& b_to_a) {
  assert(a < node_names_.size() && b < node_names_.size());
  auto make_link = [this](const LinkSpec& spec, NodeId from, NodeId to) {
    Link::Config config;
    config.rate = spec.rate;
    config.propagation_delay = spec.propagation_delay;
    config.queue = spec.queue.instantiate();
    config.loss = spec.loss.instantiate();
    config.shaper = spec.shaper;
    config.name = !spec.name.empty()
                      ? spec.name
                      : node_names_[from] + "->" + node_names_[to];
    return std::make_unique<Link>(
        sim_, std::move(config), rng_.fork(links_.size() + 1));
  };

  links_.push_back(make_link(a_to_b, a, b));
  Link* forward = links_.back().get();
  adjacency_[a].push_back(Edge{b, links_.size() - 1});

  links_.push_back(make_link(b_to_a, b, a));
  Link* reverse = links_.back().get();
  adjacency_[b].push_back(Edge{a, links_.size() - 1});

  return {forward, reverse};
}

Result<Path> Network::path(NodeId from, NodeId to) const {
  if (from >= node_names_.size() || to >= node_names_.size()) {
    return make_error(ErrorCode::kInvalidArgument, "invalid node id");
  }
  if (from == to) {
    return make_error(ErrorCode::kInvalidArgument,
                      "path from a node to itself");
  }
  // BFS by hop count; predecessor edges reconstruct the route.
  constexpr std::size_t kUnvisited = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> via_edge(node_names_.size(), kUnvisited);
  std::vector<NodeId> via_node(node_names_.size(), 0);
  std::deque<NodeId> frontier{from};
  std::vector<bool> visited(node_names_.size(), false);
  visited[from] = true;
  while (!frontier.empty()) {
    NodeId current = frontier.front();
    frontier.pop_front();
    if (current == to) break;
    for (const Edge& edge : adjacency_[current]) {
      if (visited[edge.to]) continue;
      visited[edge.to] = true;
      via_edge[edge.to] = edge.link_index;
      via_node[edge.to] = current;
      frontier.push_back(edge.to);
    }
  }
  if (!visited[to]) {
    return make_error(ErrorCode::kNotFound,
                      "no route from '" + node_names_[from] + "' to '" +
                          node_names_[to] + "'");
  }
  Path path;
  for (NodeId at = to; at != from; at = via_node[at]) {
    path.push_back(links_[via_edge[at]].get());
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<const Link*> Network::links() const {
  std::vector<const Link*> out;
  out.reserve(links_.size());
  for (const auto& link : links_) out.push_back(link.get());
  return out;
}

}  // namespace iqb::netsim
