// Stochastic packet loss models applied at link ingress.
//
// Queue overflow (congestion loss) is modelled by the queue
// discipline; these models capture *non-congestive* loss: radio
// interference, line noise, faulty equipment. Both classic models are
// provided: i.i.d. Bernoulli loss and the two-state Gilbert-Elliott
// chain, which produces the bursty loss patterns real access networks
// exhibit and which stresses TCP very differently from uniform loss.
#pragma once

#include <memory>

#include "iqb/util/rng.hpp"

namespace iqb::netsim {

class LossModel {
 public:
  virtual ~LossModel() = default;
  /// True if the packet should be dropped at ingress.
  virtual bool should_drop(util::Rng& rng) = 0;
};

/// No stochastic loss (default for clean wired links).
class NoLoss final : public LossModel {
 public:
  bool should_drop(util::Rng&) override { return false; }
};

/// Independent loss with fixed probability p.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p) noexcept : p_(p) {}
  bool should_drop(util::Rng& rng) override { return rng.bernoulli(p_); }
  double probability() const noexcept { return p_; }

 private:
  double p_;
};

/// Two-state Markov (Gilbert-Elliott) loss. In the Good state packets
/// drop with probability loss_good (usually ~0); in the Bad state with
/// loss_bad (high). Transitions g->b with p_gb, b->g with p_bg per
/// packet. Average loss = pi_b*loss_bad + pi_g*loss_good where
/// pi_b = p_gb/(p_gb+p_bg).
class GilbertElliottLoss final : public LossModel {
 public:
  GilbertElliottLoss(double p_gb, double p_bg, double loss_good,
                     double loss_bad) noexcept
      : p_gb_(p_gb), p_bg_(p_bg), loss_good_(loss_good), loss_bad_(loss_bad) {}

  bool should_drop(util::Rng& rng) override {
    if (bad_) {
      if (rng.bernoulli(p_bg_)) bad_ = false;
    } else {
      if (rng.bernoulli(p_gb_)) bad_ = true;
    }
    return rng.bernoulli(bad_ ? loss_bad_ : loss_good_);
  }

  /// Stationary mean loss rate of the chain.
  double mean_loss_rate() const noexcept {
    const double denom = p_gb_ + p_bg_;
    if (denom <= 0.0) return loss_good_;
    const double pi_bad = p_gb_ / denom;
    return pi_bad * loss_bad_ + (1.0 - pi_bad) * loss_good_;
  }

  bool in_bad_state() const noexcept { return bad_; }

 private:
  double p_gb_, p_bg_, loss_good_, loss_bad_;
  bool bad_ = false;
};

}  // namespace iqb::netsim
