// A unidirectional link: rate limiter + FIFO buffer + delay + loss.
//
// The link is the unit of transmission in the simulator. It models,
// in order: stochastic ingress loss (LossModel), buffer admission
// (QueueDiscipline), store-and-forward serialization at the link rate,
// then propagation delay. Queueing delay emerges naturally from the
// serialization of packets ahead in the buffer — this is what makes
// loaded latency ("bufferbloat") appear in the measurement clients
// without being programmed in explicitly.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "iqb/netsim/loss.hpp"
#include "iqb/netsim/packet.hpp"
#include "iqb/netsim/queue.hpp"
#include "iqb/netsim/sim.hpp"
#include "iqb/util/units.hpp"

namespace iqb::netsim {

/// Counters exposed per link for invariant tests (conservation:
/// offered == delivered + dropped_loss + dropped_queue + in flight).
struct LinkCounters {
  std::uint64_t offered_packets = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t dropped_loss_packets = 0;   ///< Stochastic loss model.
  std::uint64_t dropped_queue_packets = 0;  ///< Buffer overflow / AQM.
  std::uint64_t offered_bytes = 0;
  std::uint64_t delivered_bytes = 0;
};

/// Token-bucket traffic shaping (ISP provisioning with burst credit,
/// "speed boost"): packets serialize at the full line rate while
/// tokens last, then drain at the sustained rate. A shaped 100 Mb/s
/// tier on a 1 Gb/s line reads very differently to a short-transfer
/// test than to a sustained one — a real-world measurement artifact
/// the simulated dataset panel can now reproduce.
struct ShaperConfig {
  bool enabled = false;
  util::Mbps sustained_rate{100.0};
  std::uint64_t burst_bytes = 2 * 1024 * 1024;
};

class Link {
 public:
  struct Config {
    util::Mbps rate{100.0};
    util::Seconds propagation_delay{0.005};
    std::unique_ptr<QueueDiscipline> queue;  ///< Defaults to 256 KiB DropTail.
    std::unique_ptr<LossModel> loss;         ///< Defaults to NoLoss.
    ShaperConfig shaper{};                   ///< Off by default.
    std::string name;                        ///< For traces/debugging.
  };

  /// Called when a packet exits the far end of the link.
  using DeliverFn = std::function<void(const Packet&)>;
  /// Called when a packet is dropped (loss or queue). Optional.
  using DropFn = std::function<void(const Packet&)>;

  Link(Simulator& sim, Config config, util::Rng rng);

  /// Offer a packet. Delivery (or drop) is reported asynchronously
  /// via the callbacks, in simulated time.
  void send(Packet packet, DeliverFn on_deliver, DropFn on_drop = nullptr);

  const LinkCounters& counters() const noexcept { return counters_; }
  util::Mbps rate() const noexcept { return config_.rate; }
  util::Seconds propagation_delay() const noexcept {
    return config_.propagation_delay;
  }
  const std::string& name() const noexcept { return config_.name; }
  std::uint64_t queued_bytes() const noexcept { return queued_bytes_; }

  /// Replace the stochastic loss model mid-simulation (failure
  /// injection in tests).
  void set_loss_model(std::unique_ptr<LossModel> loss);

 private:
  struct Pending {
    Packet packet;
    DeliverFn on_deliver;
  };

  void start_transmission();
  /// Seconds the head packet must wait for shaper tokens (0 when
  /// shaping is off or credit suffices); consumes the tokens.
  SimTime take_shaper_tokens(std::uint32_t packet_bytes) noexcept;

  Simulator& sim_;
  Config config_;
  util::Rng rng_;
  std::deque<Pending> queue_;
  std::uint64_t queued_bytes_ = 0;
  bool transmitting_ = false;
  LinkCounters counters_;

  // Shaper token bucket (bytes of credit).
  double shaper_tokens_ = 0.0;
  SimTime shaper_refilled_at_ = 0.0;
};

}  // namespace iqb::netsim
