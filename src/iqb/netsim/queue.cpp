#include "iqb/netsim/queue.hpp"

#include <algorithm>

namespace iqb::netsim {

bool RedQueue::admit(const QueueContext& context, util::Rng& rng) {
  // Physical capacity is always enforced.
  if (context.queued_bytes + context.packet_bytes > config_.capacity_bytes) {
    return false;
  }

  avg_ += config_.ewma_weight * (static_cast<double>(context.queued_bytes) - avg_);

  if (avg_ < static_cast<double>(config_.min_threshold_bytes)) {
    ++since_last_drop_;
    return true;
  }
  if (avg_ >= static_cast<double>(config_.max_threshold_bytes)) {
    since_last_drop_ = 0;
    return false;
  }
  // Linear ramp between thresholds, uniformized by the count of
  // packets since the last drop (Floyd & Jacobson eq. 3).
  const double span = static_cast<double>(config_.max_threshold_bytes -
                                          config_.min_threshold_bytes);
  const double pb = config_.max_drop_probability *
                    (avg_ - static_cast<double>(config_.min_threshold_bytes)) / span;
  const double denom = 1.0 - static_cast<double>(since_last_drop_) * pb;
  const double pa = denom > 0.0 ? pb / denom : 1.0;
  if (rng.bernoulli(pa)) {
    since_last_drop_ = 0;
    return false;
  }
  ++since_last_drop_;
  return true;
}

void PieQueue::maybe_update(const QueueContext& context) {
  if (context.now < next_update_at_) return;
  next_update_at_ = context.now + config_.t_update_s;
  const double delay_s =
      context.drain_rate_bps > 0.0
          ? static_cast<double>(context.queued_bytes) * 8.0 /
                context.drain_rate_bps
          : 0.0;
  // PI control law (RFC 8033 §4.2), with the standard auto-scaling of
  // gains while the drop probability is small so the controller does
  // not overshoot from a cold start.
  double alpha = config_.alpha;
  double beta = config_.beta;
  if (drop_probability_ < 0.000001) {
    alpha /= 2048.0;
    beta /= 2048.0;
  } else if (drop_probability_ < 0.00001) {
    alpha /= 512.0;
    beta /= 512.0;
  } else if (drop_probability_ < 0.0001) {
    alpha /= 128.0;
    beta /= 128.0;
  } else if (drop_probability_ < 0.001) {
    alpha /= 32.0;
    beta /= 32.0;
  } else if (drop_probability_ < 0.01) {
    alpha /= 8.0;
    beta /= 8.0;
  } else if (drop_probability_ < 0.1) {
    alpha /= 2.0;
    beta /= 2.0;
  }
  drop_probability_ += alpha * (delay_s - config_.target_delay_s) +
                       beta * (delay_s - last_delay_s_);
  drop_probability_ = std::clamp(drop_probability_, 0.0, 1.0);
  // Decay toward zero when the queue has fully drained.
  if (context.queued_bytes == 0 && last_delay_s_ == 0.0) {
    drop_probability_ *= 0.98;
  }
  last_delay_s_ = delay_s;
}

bool PieQueue::admit(const QueueContext& context, util::Rng& rng) {
  if (context.queued_bytes + context.packet_bytes > config_.capacity_bytes) {
    return false;
  }
  maybe_update(context);
  // Never early-drop when the queue is nearly empty (RFC 8033 §4.1
  // safeguard), so short flows are not punished.
  if (context.queued_bytes < 2ull * context.packet_bytes) return true;
  return !rng.bernoulli(drop_probability_);
}

}  // namespace iqb::netsim
