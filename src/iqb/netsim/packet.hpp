// Packet representation shared by links, queues and flows.
#pragma once

#include <array>
#include <cstdint>

#include "iqb/netsim/sim.hpp"

namespace iqb::netsim {

enum class PacketKind : std::uint8_t {
  kData,      ///< TCP-style data segment.
  kAck,       ///< TCP-style cumulative acknowledgement.
  kProbe,     ///< UDP probe (echo request).
  kProbeEcho, ///< UDP probe reply.
};

/// A simulated packet. Value type; flows keep whatever bookkeeping
/// they need keyed by (flow_id, seq) rather than inside the packet.
struct Packet {
  std::uint64_t flow_id = 0;
  std::uint64_t seq = 0;        ///< Segment/probe sequence number.
  std::uint64_t ack = 0;        ///< Cumulative ACK (kAck only).
  std::uint32_t size_bytes = 0; ///< On-the-wire size incl. headers.
  PacketKind kind = PacketKind::kData;
  SimTime sent_at = 0.0;        ///< Stamped by the sender at first hop.
  bool retransmit = false;      ///< Karn's rule: exclude from RTT sampling.
  std::uint64_t echo_seq = 0;   ///< For kProbeEcho: echoed probe seq.
  /// TCP-timestamp-style echo (RFC 7323): for kAck, the sent_at and
  /// retransmit flag of the data segment that triggered this ACK, so
  /// the sender can take exact RTT samples even when the cumulative
  /// ACK is blocked behind a hole.
  SimTime echo_sent_at = 0.0;
  bool echo_retransmit = false;

  /// SACK blocks (RFC 2018): segment ranges [begin, end) received
  /// above the cumulative ACK. Without these, a burst loss degrades
  /// NewReno to one repaired hole per RTT — the well-known pathology
  /// SACK was introduced to fix, and every real stack ships it.
  struct SackRange {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;  // exclusive
  };
  static constexpr int kMaxSackRanges = 4;
  std::array<SackRange, kMaxSackRanges> sack{};
  int sack_count = 0;
};

/// Conventional header sizes used by the flow models.
constexpr std::uint32_t kTcpHeaderBytes = 40;   // IP + TCP, no options
constexpr std::uint32_t kUdpHeaderBytes = 28;   // IP + UDP
constexpr std::uint32_t kDefaultMssBytes = 1448; // 1500 MTU - headers - ts

}  // namespace iqb::netsim
