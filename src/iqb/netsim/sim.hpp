// Discrete-event simulation core.
//
// A single-threaded event loop with a virtual clock. Determinism is a
// hard requirement (every IQB experiment must be reproducible), so
// ties in event time are broken by insertion order and all randomness
// lives in explicitly seeded Rng instances owned by the components.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace iqb::netsim {

/// Simulated time in seconds since simulation start.
using SimTime = double;

constexpr SimTime kSimTimeInfinity = std::numeric_limits<double>::infinity();

/// Handle for a scheduled event that may be cancelled (e.g. TCP RTO
/// timers that are re-armed on every ACK).
using TimerId = std::uint64_t;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }

  /// Schedule at an absolute time >= now(). Scheduling in the past is
  /// clamped to now() (a zero-delay event).
  TimerId schedule_at(SimTime time, Callback callback);

  /// Schedule after a non-negative delay.
  TimerId schedule_in(SimTime delay, Callback callback);

  /// Cancel a pending event. Cancelling an already-fired or unknown
  /// id is a no-op (returns false).
  bool cancel(TimerId id);

  /// Run events until the queue empties or the clock passes `until`.
  /// Returns the number of events executed.
  std::size_t run(SimTime until = kSimTimeInfinity);

  /// Execute the single next event, if any. Returns false when empty.
  bool step();

  /// Pending (non-cancelled) event count.
  std::size_t pending() const noexcept { return heap_.size() - cancelled_.size(); }

  /// Total events executed since construction (for benches).
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break for equal times
    TimerId id;
    // Ordered as a min-heap via operator> in the comparator below.
  };
  struct EventCompare {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  TimerId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventCompare> heap_;
  // Callbacks stored separately so the heap stays trivially copyable.
  std::unordered_map<TimerId, Callback> callbacks_;
  std::unordered_set<TimerId> cancelled_;
};

}  // namespace iqb::netsim
