#include "iqb/netsim/link.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace iqb::netsim {

Link::Link(Simulator& sim, Config config, util::Rng rng)
    : sim_(sim), config_(std::move(config)), rng_(rng) {
  if (!config_.queue) {
    config_.queue = std::make_unique<DropTailQueue>(256 * 1024);
  }
  if (!config_.loss) {
    config_.loss = std::make_unique<NoLoss>();
  }
  assert(config_.rate.value() > 0.0 && "link rate must be positive");
  if (config_.shaper.enabled) {
    assert(config_.shaper.sustained_rate.value() > 0.0);
    shaper_tokens_ = static_cast<double>(config_.shaper.burst_bytes);
  }
}

SimTime Link::take_shaper_tokens(std::uint32_t packet_bytes) noexcept {
  if (!config_.shaper.enabled) return 0.0;
  // Refill credit accrued since the last take, capped at the bucket.
  const double refill_rate =
      config_.shaper.sustained_rate.bytes_per_second();
  shaper_tokens_ = std::min(
      static_cast<double>(config_.shaper.burst_bytes),
      shaper_tokens_ + (sim_.now() - shaper_refilled_at_) * refill_rate);
  shaper_refilled_at_ = sim_.now();
  if (shaper_tokens_ >= packet_bytes) {
    shaper_tokens_ -= packet_bytes;
    return 0.0;
  }
  // Wait until enough credit accrues, then spend it all.
  const double deficit = static_cast<double>(packet_bytes) - shaper_tokens_;
  shaper_tokens_ = 0.0;
  const double wait = deficit / refill_rate;
  shaper_refilled_at_ = sim_.now() + wait;
  return wait;
}

void Link::set_loss_model(std::unique_ptr<LossModel> loss) {
  config_.loss = loss ? std::move(loss) : std::make_unique<NoLoss>();
}

void Link::send(Packet packet, DeliverFn on_deliver, DropFn on_drop) {
  ++counters_.offered_packets;
  counters_.offered_bytes += packet.size_bytes;

  if (config_.loss->should_drop(rng_)) {
    ++counters_.dropped_loss_packets;
    if (on_drop) on_drop(packet);
    return;
  }
  QueueContext context;
  context.queued_bytes = queued_bytes_;
  context.packet_bytes = packet.size_bytes;
  context.now = sim_.now();
  context.drain_rate_bps = config_.rate.bits_per_second();
  if (!config_.queue->admit(context, rng_)) {
    ++counters_.dropped_queue_packets;
    if (on_drop) on_drop(packet);
    return;
  }
  queued_bytes_ += packet.size_bytes;
  queue_.push_back(Pending{std::move(packet), std::move(on_deliver)});
  if (!transmitting_) start_transmission();
}

void Link::start_transmission() {
  assert(!queue_.empty());
  transmitting_ = true;
  // Serialization: the head packet occupies the transmitter for
  // size/rate seconds; afterwards it propagates independently while
  // the next packet starts serializing (pipelining). A shaper, if
  // configured, may hold the packet first until tokens accrue.
  const Pending& head = queue_.front();
  const double shaper_wait_s = take_shaper_tokens(head.packet.size_bytes);
  const double serialize_s =
      static_cast<double>(head.packet.size_bytes) * 8.0 /
      config_.rate.bits_per_second();
  sim_.schedule_in(shaper_wait_s + serialize_s, [this] {
    Pending done = std::move(queue_.front());
    queue_.pop_front();
    queued_bytes_ -= done.packet.size_bytes;
    ++counters_.delivered_packets;
    counters_.delivered_bytes += done.packet.size_bytes;
    // Propagation happens off the transmitter; capture by value so the
    // packet survives until delivery.
    sim_.schedule_in(config_.propagation_delay.value(),
                     [packet = std::move(done.packet),
                      deliver = std::move(done.on_deliver)] {
                       if (deliver) deliver(packet);
                     });
    if (!queue_.empty()) {
      start_transmission();
    } else {
      transmitting_ = false;
    }
  });
}

}  // namespace iqb::netsim
