#include "iqb/fleet/fetcher.hpp"

#include <chrono>
#include <condition_variable>
#include <utility>

#include "iqb/obs/clock.hpp"
#include "iqb/obs/metrics.hpp"
#include "iqb/obs/request_stats.hpp"
#include "iqb/util/log.hpp"
#include "iqb/util/strings.hpp"

namespace iqb::fleet {

namespace {

constexpr const char* kShardUpMetric = "fleet_shard_up";
constexpr const char* kShardUpHelp =
    "1 while the shard's last fetch was fresh, 0 while served from "
    "cache or absent";

}  // namespace

util::Result<ShardEndpoint> parse_shard_endpoint(const std::string& text,
                                                 std::size_t index) {
  ShardEndpoint endpoint;
  std::string address = text;
  const std::size_t eq = text.find('=');
  if (eq != std::string::npos) {
    endpoint.name = text.substr(0, eq);
    address = text.substr(eq + 1);
  } else {
    endpoint.name = "shard" + std::to_string(index);
  }
  const std::size_t colon = address.rfind(':');
  if (endpoint.name.empty() || colon == std::string::npos || colon == 0) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "bad shard endpoint '" + text +
                                "' (want [name=]host:port)");
  }
  endpoint.host = address.substr(0, colon);
  auto port = util::parse_int(address.substr(colon + 1));
  if (!port.ok() || port.value() <= 0 || port.value() > 65535) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "bad shard port in '" + text + "'");
  }
  endpoint.port = static_cast<std::uint16_t>(port.value());
  return endpoint;
}

FleetFetcher::FleetFetcher(Options options, obs::MetricsRegistry* metrics)
    : options_(std::move(options)), metrics_(metrics) {
  shards_.reserve(options_.shards.size());
  for (const ShardEndpoint& endpoint : options_.shards) {
    ShardState state;
    state.endpoint = endpoint;
    state.breaker = robust::CircuitBreaker(options_.breaker);
    shards_.push_back(std::move(state));
  }
  if (metrics_) {
    // Register the fleet families eagerly so dashboards see them (at
    // zero) before the first fault.
    for (const ShardEndpoint& endpoint : options_.shards) {
      metrics_->gauge(kShardUpMetric, kShardUpHelp,
                      {{"shard", endpoint.name}});
    }
    metrics_->counter("fleet_fetch_retries_total",
                      "Shard fetch attempts beyond the first");
    metrics_->counter("fleet_hedges_total",
                      "Hedged second requests fired after hedge_delay_ms");
    metrics_->counter("fleet_hedge_losses_total",
                      "Attempts whose answer arrived after another attempt "
                      "had already won the race");
    metrics_->counter("fleet_breaker_denials_total",
                      "Shard fetches skipped by an open circuit breaker");
  }
}

FleetFetcher::~FleetFetcher() {
  std::lock_guard<std::mutex> lock(parked_mutex_);
  for (ParkedThread& parked : parked_) {
    if (parked.thread.joinable()) parked.thread.join();
  }
  parked_.clear();
}

void FleetFetcher::reap_finished() {
  std::lock_guard<std::mutex> lock(parked_mutex_);
  for (auto it = parked_.begin(); it != parked_.end();) {
    if (it->done->load()) {
      if (it->thread.joinable()) it->thread.join();
      it = parked_.erase(it);
    } else {
      ++it;
    }
  }
}

util::Result<obs::HttpClient::Response> FleetFetcher::hedged_get(
    const ShardEndpoint& endpoint,
    const std::shared_ptr<obs::Tracer>& tracer, std::size_t fetch_span,
    int retry_index) {
  using Result = util::Result<obs::HttpClient::Response>;
  struct Race {
    std::mutex mutex;
    std::condition_variable cv;
    std::optional<Result> success;
    std::optional<Result> failure;  ///< First failure, for the error.
    int outstanding = 0;
  };
  auto race = std::make_shared<Race>();

  const obs::HttpClient client(options_.http);
  const std::string host = endpoint.host;
  const std::uint16_t port = endpoint.port;
  const std::string path = options_.path;
  obs::MetricsRegistry* metrics = metrics_;
  std::atomic<std::uint64_t>* hedge_losses = &hedge_losses_;

  auto launch = [&](bool hedged) {
    // Every HTTP attempt is its own span (child of the shard's fetch
    // span) and carries that span in an explicit traceparent header:
    // these threads don't share the cycle thread's ambient context,
    // and each attempt must parent the shard-side server span it —
    // not its sibling — actually caused.
    std::size_t span = obs::Tracer::kNoSpan;
    std::vector<obs::HttpHeader> headers;
    if (tracer) {
      span = tracer->begin_span_at("fleet.rpc", fetch_span);
      tracer->set_attribute(span, "retry", std::to_string(retry_index));
      tracer->set_attribute(span, "hedged", hedged ? "true" : "false");
      const obs::SpanContext context{tracer->trace_id(), tracer->uid(span)};
      if (context.valid()) {
        headers.emplace_back(obs::kTraceparentHeader,
                             obs::format_traceparent(context));
      }
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    {
      std::lock_guard<std::mutex> lock(race->mutex);
      ++race->outstanding;
    }
    std::thread thread([race, done, client, host, port, path, headers, tracer,
                        span, metrics, hedge_losses] {
      const std::uint64_t started_ns = obs::steady_clock().now_ns();
      Result result = client.get(host, port, path, headers);
      const double elapsed_ms =
          static_cast<double>(obs::steady_clock().now_ns() - started_ns) / 1e6;
      bool lost = false;
      {
        std::lock_guard<std::mutex> lock(race->mutex);
        // A result landing after another attempt already won is a
        // hedge loss — the work was wasted, but its latency is the
        // tail the hedge existed to cut, so it must not vanish.
        lost = race->success.has_value();
        if (!lost && result.ok()) {
          race->success = std::move(result);
        } else if (!result.ok() && !race->failure) {
          race->failure = std::move(result);
        }
        --race->outstanding;
      }
      if (lost) {
        hedge_losses->fetch_add(1);
        if (metrics) {
          metrics
              ->counter("fleet_hedge_losses_total",
                        "Attempts whose answer arrived after another attempt "
                        "had already won the race")
              .inc();
          metrics
              ->histogram("iqb_http_request_duration_ms",
                          "HTTP request wall time in milliseconds",
                          obs::request_duration_buckets_ms(),
                          {{"code", "hedge_loss"}, {"path", path}})
              .observe(elapsed_ms);
        }
      }
      if (tracer) {
        if (lost) tracer->set_attribute(span, "hedge_loss", "true");
        tracer->end_span(span);
      }
      race->cv.notify_all();
      done->store(true);
    });
    std::lock_guard<std::mutex> lock(parked_mutex_);
    parked_.push_back({std::move(thread), std::move(done)});
  };

  launch(/*hedged=*/false);
  std::unique_lock<std::mutex> lock(race->mutex);
  if (options_.hedge_delay_ms > 0) {
    const bool settled = race->cv.wait_for(
        lock, std::chrono::milliseconds(options_.hedge_delay_ms),
        [&] { return race->success || race->outstanding == 0; });
    if (!settled) {
      lock.unlock();
      hedges_.fetch_add(1);
      if (metrics_) {
        metrics_
            ->counter("fleet_hedges_total",
                      "Hedged second requests fired after hedge_delay_ms")
            .inc();
      }
      launch(/*hedged=*/true);
      lock.lock();
    }
  }
  // First success wins; otherwise wait for every launched attempt to
  // fail. Each attempt is bounded by the HTTP total deadline, so this
  // wait is bounded too.
  race->cv.wait(lock,
                [&] { return race->success || race->outstanding == 0; });
  Result result = race->success
                      ? std::move(*race->success)
                      : (race->failure
                             ? std::move(*race->failure)
                             : Result(util::make_error(
                                   util::ErrorCode::kInternal,
                                   "hedged fetch finished without outcome")));
  lock.unlock();
  reap_finished();
  return result;
}

ShardView FleetFetcher::fetch_shard(
    ShardState& state, const std::shared_ptr<obs::Tracer>& tracer,
    std::size_t parent_span) {
  std::size_t span = obs::Tracer::kNoSpan;
  if (tracer) {
    span = tracer->begin_span_at("fleet.fetch", parent_span);
    tracer->set_attribute(span, "shard", state.endpoint.name);
  }
  ShardView view = fetch_shard_impl(state, tracer, span);
  if (tracer) {
    tracer->set_attribute(span, "fresh",
                          view.payload && !view.stale ? "true" : "false");
    if (!view.error.empty()) tracer->set_attribute(span, "error", view.error);
    tracer->end_span(span);
  }
  return view;
}

ShardView FleetFetcher::fetch_shard_impl(
    ShardState& state, const std::shared_ptr<obs::Tracer>& tracer,
    std::size_t fetch_span) {
  ShardView view;
  view.name = state.endpoint.name;

  auto fail = [&](std::string reason) {
    state.up = false;
    ++state.consecutive_failures;
    state.last_error = reason;
    view.error = std::move(reason);
    view.payload = state.last_good;  // may be nullopt
    view.stale = view.payload.has_value();
    if (metrics_) {
      metrics_
          ->gauge(kShardUpMetric, kShardUpHelp,
                  {{"shard", state.endpoint.name}})
          .set(0.0);
      metrics_
          ->counter("fleet_fetch_failures_total",
                    "Shard fetch episodes that exhausted their budget",
                    {{"shard", state.endpoint.name}})
          .inc();
    }
    return view;
  };

  if (!state.breaker.allow_request()) {
    denials_.fetch_add(1);
    if (metrics_) {
      metrics_
          ->counter("fleet_breaker_denials_total",
                    "Shard fetches skipped by an open circuit breaker")
          .inc();
    }
    return fail("circuit breaker open (" +
                std::string(robust::breaker_state_name(
                    state.breaker.state())) +
                ")");
  }

  // Retry episode: hedged attempts separated by decorrelated-jitter
  // sleeps, bounded by the policy's attempt count and virtual-time
  // deadline. Every attempt outcome feeds the breaker.
  robust::RetrySchedule schedule(options_.retry);
  std::string last_error;
  int retry_index = 0;
  for (;;) {
    auto fetched =
        hedged_get(state.endpoint, tracer, fetch_span, retry_index);
    ++retry_index;
    if (fetched.ok() && fetched.value().status == 200) {
      auto payload = parse_shard_payload(fetched.value().body);
      if (payload.ok()) {
        state.breaker.record_success();
        state.up = true;
        state.consecutive_failures = 0;
        state.last_error.clear();
        state.last_good = std::move(payload).value();
        if (metrics_) {
          metrics_
              ->gauge(kShardUpMetric, kShardUpHelp,
                      {{"shard", state.endpoint.name}})
              .set(1.0);
        }
        view.payload = state.last_good;
        view.stale = false;
        return view;
      }
      last_error = "payload: " + payload.error().message;
    } else if (fetched.ok()) {
      last_error = "shard answered HTTP " +
                   std::to_string(fetched.value().status);
    } else {
      last_error = fetched.error().message;
    }
    state.breaker.record_failure();
    const double delay_s = schedule.next_delay_s();
    if (delay_s < 0.0) break;  // policy exhausted
    retries_.fetch_add(1);
    if (metrics_) {
      metrics_
          ->counter("fleet_fetch_retries_total",
                    "Shard fetch attempts beyond the first")
          .inc();
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(
        delay_s * options_.retry_sleep_scale));
  }
  return fail(last_error);
}

std::vector<ShardView> FleetFetcher::fetch_all(
    std::shared_ptr<obs::Tracer> tracer, std::size_t parent_span) {
  reap_finished();
  std::vector<ShardView> views(shards_.size());
  {
    // One scatter thread per shard: fleet sizes are tens, not
    // thousands, and each thread spends its life blocked on I/O. The
    // shard mutex is held for the whole scatter — status() readers
    // see pre- or post-cycle state, never a torn shard entry.
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::thread> scatter;
    scatter.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      scatter.emplace_back([this, i, &views, &tracer, parent_span] {
        views[i] = fetch_shard(shards_[i], tracer, parent_span);
      });
    }
    for (std::thread& thread : scatter) thread.join();
  }
  return views;
}

std::vector<ShardStatus> FleetFetcher::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ShardStatus> out;
  out.reserve(shards_.size());
  for (const ShardState& state : shards_) {
    ShardStatus status;
    status.name = state.endpoint.name;
    status.address = state.endpoint.address();
    status.up = state.up;
    status.breaker = state.breaker.state();
    status.last_cycle = state.last_good ? state.last_good->cycle : 0;
    status.consecutive_failures = state.consecutive_failures;
    status.last_error = state.last_error;
    out.push_back(std::move(status));
  }
  return out;
}

}  // namespace iqb::fleet
