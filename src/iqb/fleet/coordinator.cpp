#include "iqb/fleet/coordinator.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "iqb/core/pipeline.hpp"
#include "iqb/report/render.hpp"
#include "iqb/util/log.hpp"

namespace iqb::fleet {

FuseOutput fuse(const core::IqbConfig& config,
                std::span<const ShardView> views,
                const std::string& trace_id) {
  FuseOutput output;

  datasets::AggregateTable fused;
  robust::IngestHealth health;
  std::set<std::string> open_breakers;
  std::set<std::string> stale_regions;
  std::uint64_t max_cycle = 0;

  for (const ShardView& view : views) {
    if (!view.payload) {
      ++output.shards_missing;
      continue;
    }
    // Region-partitioned shards make merge exact: each region's cells
    // live on exactly one shard, so colliding-key overwrites only
    // happen if the operator misconfigured overlapping --regions (the
    // last shard wins, as AggregateTable::merge documents).
    fused.merge(view.payload->table);
    health.rows_quarantined += view.payload->health.rows_quarantined;
    health.sources_retried += view.payload->health.sources_retried;
    for (const std::string& breaker : view.payload->health.open_breakers) {
      open_breakers.insert(breaker);
    }
    max_cycle = std::max(max_cycle, view.payload->cycle);
    if (view.stale) {
      ++output.shards_cached;
      for (const std::string& region : view.payload->table.regions()) {
        stale_regions.insert(region);
      }
    } else {
      ++output.shards_fresh;
    }
  }
  health.open_breakers.assign(open_breakers.begin(), open_breakers.end());
  output.max_shard_cycle = max_cycle;
  output.stale_regions.assign(stale_regions.begin(), stale_regions.end());
  if (!output.any_payload()) return output;

  // Score the fused table exactly like a single daemon scores its own
  // aggregation: same per-region scorer, same (sorted) region order,
  // same renderer — that is what makes the zero-fault output
  // byte-identical.
  const core::Pipeline pipeline(config);
  std::vector<core::RegionResult> results;
  for (const std::string& region : fused.regions()) {
    auto result = pipeline.score_region(fused, region, health);
    if (!result.ok()) {
      IQB_LOG(kWarn) << "fleet: skipped region " << region << ": "
                     << result.error().message;
      output.skipped_regions.push_back(region);
      continue;
    }
    core::RegionResult scored = std::move(result).value();
    if (stale_regions.count(region) != 0) {
      // The region's data is a previous cycle's: the score stands but
      // cannot be corroborated this cycle, so confidence drops to the
      // single-source tier and the report names the silent shard.
      for (const ShardView& view : views) {
        if (view.stale && view.payload) {
          const auto owned = view.payload->table.regions();
          if (std::find(owned.begin(), owned.end(), region) != owned.end()) {
            scored.high.degradation.open_breakers.push_back("shard:" +
                                                            view.name);
            scored.minimum.degradation.open_breakers.push_back("shard:" +
                                                               view.name);
          }
        }
      }
      scored.high.degradation.tier = robust::ConfidenceTier::kC;
      scored.minimum.degradation.tier = robust::ConfidenceTier::kC;
    }
    if (scored.degradation().tier == robust::ConfidenceTier::kC) {
      output.tier_c = true;
      output.tier_c_regions.push_back(scored.region);
    }
    results.push_back(std::move(scored));
  }
  output.scores_json = report::to_json(results).dump(2) + "\n";

  ShardPayload fused_payload;
  fused_payload.cycle = max_cycle;
  fused_payload.trace_id = trace_id;
  fused_payload.table = std::move(fused);
  fused_payload.health = std::move(health);
  output.aggregate_json = serialize_shard_payload(fused_payload);
  return output;
}

}  // namespace iqb::fleet
