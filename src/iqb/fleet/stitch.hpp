// Cross-process trace stitching: merge /tracez dumps from the
// coordinator and its shards into one tree, and render timelines.
//
// Each process's SpanRingBuffer only knows its own spans; what crosses
// the wire is the uid link (a server span's parent_uid names the
// coordinator-side attempt span that caused it — see trace.hpp) and
// the `shard_trace` attribute a shard stamps on its /shard/aggregate
// server span to name the local cycle trace that produced the served
// payload. This module re-joins those pieces:
//
//   parse_tracez_dump   one /tracez JSON document -> SourcedSpans
//   graft_linked_traces re-parent a linked trace's roots under the
//                       span that declared the link
//   stitch              resolve uid links into one forest, align each
//                       source's rebased clock to its remote parent
//   stitched_to_json    the /fleet/tracez document (flat + tree)
//   to_chrome_trace     Chrome trace-event / Perfetto JSON timeline
//
// Everything here is pure data transformation — no I/O — so the
// coordinator's /fleet/tracez handler and the offline iqb_tracecat
// tool share one implementation.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "iqb/obs/span_buffer.hpp"
#include "iqb/util/json.hpp"
#include "iqb/util/result.hpp"

namespace iqb::fleet {

/// One span from one process's /tracez dump, tagged with where it
/// came from. Field meanings match obs::CompletedSpan; start_ns is
/// rebased to the owning cycle's first span (per-source clocks are
/// NOT comparable across sources until stitch() aligns them).
struct SourcedSpan {
  std::string source;  ///< "coordinator", "shard0", ... (dump origin).
  std::string trace_id;
  std::string name;
  std::uint64_t span_uid = 0;
  std::uint64_t parent_uid = 0;  ///< 0: root. May name a span in
                                 ///< another source (remote parent).
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::vector<std::pair<std::string, std::string>> attributes;

  /// First value of an attribute, or "".
  std::string attribute(const std::string& key) const;
};

/// Parse one tracez JSON document ({"spans":[...]}) as emitted by
/// tracez_to_json (or by stitched_to_json — a per-span "source" field,
/// when present, overrides `default_source`). Spans missing required
/// fields are an error; unknown fields are ignored.
util::Result<std::vector<SourcedSpan>> parse_tracez_dump(
    const util::JsonValue& document, const std::string& default_source);

/// Convert an in-process buffer snapshot (the coordinator's own spans)
/// without a JSON round-trip.
std::vector<SourcedSpan> from_completed(
    const std::vector<obs::CompletedSpan>& spans, const std::string& source);

/// Distinct `shard_trace` attribute values carried by `spans` — the
/// trace ids of shard-local cycles linked from served payloads, i.e.
/// what /fleet/tracez must fetch in its second round.
std::vector<std::string> linked_traces(const std::vector<SourcedSpan>& spans);

/// Re-parent every root (parent_uid == 0) of a linked trace under the
/// span that declared `shard_trace=<that trace>` in the same source,
/// turning the loose link into a real tree edge.
void graft_linked_traces(std::vector<SourcedSpan>& spans);

/// One node of the stitched forest. Indices refer into the span
/// vector passed to stitch().
struct StitchedNode {
  std::size_t span = 0;            ///< Index into the input vector.
  std::uint64_t aligned_start_ns = 0;  ///< On the coordinator's clock.
  std::size_t depth = 0;           ///< Depth in the *stitched* tree.
  std::vector<std::size_t> children;  ///< Node indices, by start time.
};

/// The stitched forest: nodes[i] describes spans[i] (nodes.size() ==
/// spans.size(), nodes[i].span == i). `roots` and `children` are
/// ordered by (aligned start, uid) for deterministic output.
struct StitchedTrace {
  std::vector<StitchedNode> nodes;
  std::vector<std::size_t> roots;
};

/// Resolve parent uids across sources into one forest and align
/// clocks: sources are rebased groups (source, trace); a group whose
/// root has a parent in another group starts, by definition of the
/// causing RPC, no earlier than that parent — its clock is shifted so
/// the root begins where its remote parent begins. Orphans (parent
/// uid unknown — evicted from a ring, or a loser span never ingested)
/// become roots.
StitchedTrace stitch(const std::vector<SourcedSpan>& spans);

/// The /fleet/tracez document: {"trace","sources","count","spans",
/// "tree"}. "spans" is flat, tracez-schema-compatible (plus "source"
/// and coordinator-clock "start_ns") so iqb_tracecat can consume it
/// like any /tracez dump; "tree" is the nested stitched forest for
/// humans.
util::JsonValue stitched_to_json(const std::string& trace_id,
                                 const std::vector<SourcedSpan>& spans);

/// Chrome trace-event JSON ({"traceEvents":[...]}, "X" complete
/// events in microseconds, one pid per source with process_name
/// metadata, tid = stitched depth). Loads in chrome://tracing and
/// ui.perfetto.dev.
util::JsonValue to_chrome_trace(const std::vector<SourcedSpan>& spans);

}  // namespace iqb::fleet
