#include "iqb/fleet/wire.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "iqb/util/json.hpp"

namespace iqb::fleet {

namespace {

using util::JsonArray;
using util::JsonObject;
using util::JsonValue;

JsonValue cell_to_json(const datasets::AggregateCell& cell) {
  JsonObject out;
  out.emplace("region", cell.region);
  out.emplace("dataset", cell.dataset);
  out.emplace("metric", std::string(datasets::metric_name(cell.metric)));
  out.emplace("value", cell.value);
  out.emplace("samples", static_cast<std::int64_t>(cell.sample_count));
  if (cell.ci) {
    JsonObject ci;
    ci.emplace("point", cell.ci->point);
    ci.emplace("lower", cell.ci->lower);
    ci.emplace("upper", cell.ci->upper);
    ci.emplace("level", cell.ci->level);
    out.emplace("ci", std::move(ci));
  }
  return out;
}

util::Result<datasets::AggregateCell> cell_from_json(const JsonValue& value) {
  datasets::AggregateCell cell;
  auto region = value.get_string("region");
  if (!region.ok()) return region.error();
  cell.region = std::move(region).value();
  auto dataset = value.get_string("dataset");
  if (!dataset.ok()) return dataset.error();
  cell.dataset = std::move(dataset).value();
  auto metric_text = value.get_string("metric");
  if (!metric_text.ok()) return metric_text.error();
  auto metric = datasets::metric_from_name(metric_text.value());
  if (!metric.ok()) return metric.error();
  cell.metric = metric.value();
  auto cell_value = value.get_number("value");
  if (!cell_value.ok()) return cell_value.error();
  if (!std::isfinite(cell_value.value())) {
    return util::make_error(util::ErrorCode::kParseError,
                            "non-finite aggregate value for " + cell.region);
  }
  cell.value = cell_value.value();
  auto samples = value.get_number("samples");
  if (!samples.ok()) return samples.error();
  if (samples.value() < 0) {
    return util::make_error(util::ErrorCode::kParseError,
                            "negative sample count for " + cell.region);
  }
  cell.sample_count = static_cast<std::size_t>(samples.value());
  if (value.contains("ci")) {
    auto ci = value.get_object("ci");
    if (!ci.ok()) return ci.error();
    const JsonValue ci_value{ci.value()};
    stats::ConfidenceInterval interval;
    auto point = ci_value.get_number("point");
    auto lower = ci_value.get_number("lower");
    auto upper = ci_value.get_number("upper");
    auto level = ci_value.get_number("level");
    if (!point.ok() || !lower.ok() || !upper.ok() || !level.ok()) {
      return util::make_error(util::ErrorCode::kParseError,
                              "malformed confidence interval for " +
                                  cell.region);
    }
    interval.point = point.value();
    interval.lower = lower.value();
    interval.upper = upper.value();
    interval.level = level.value();
    cell.ci = interval;
  }
  return cell;
}

}  // namespace

std::string serialize_shard_payload(const ShardPayload& payload) {
  JsonObject root;
  root.emplace("version", static_cast<std::int64_t>(payload.version));
  root.emplace("cycle", static_cast<std::int64_t>(payload.cycle));
  root.emplace("trace", payload.trace_id);

  JsonArray cells;
  for (const datasets::AggregateCell& cell : payload.table.cells()) {
    cells.push_back(cell_to_json(cell));
  }
  root.emplace("cells", std::move(cells));

  JsonObject health;
  health.emplace("rows_quarantined",
                 static_cast<std::int64_t>(payload.health.rows_quarantined));
  health.emplace("sources_retried",
                 static_cast<std::int64_t>(payload.health.sources_retried));
  JsonArray breakers;
  for (const std::string& breaker : payload.health.open_breakers) {
    breakers.emplace_back(breaker);
  }
  health.emplace("open_breakers", std::move(breakers));
  root.emplace("health", std::move(health));

  return JsonValue(std::move(root)).dump() + "\n";
}

util::Result<ShardPayload> parse_shard_payload(std::string_view text) {
  auto parsed = util::parse_json(text);
  if (!parsed.ok()) return parsed.error();
  const JsonValue& root = parsed.value();

  auto version = root.get_number("version");
  if (!version.ok()) return version.error();
  if (version.value() != static_cast<double>(kWireVersion)) {
    return util::make_error(
        util::ErrorCode::kParseError,
        "unsupported shard payload version " +
            std::to_string(static_cast<std::int64_t>(version.value())) +
            " (this coordinator speaks " + std::to_string(kWireVersion) +
            ")");
  }

  ShardPayload payload;
  payload.version = kWireVersion;
  auto cycle = root.get_number("cycle");
  if (!cycle.ok()) return cycle.error();
  if (cycle.value() < 0) {
    return util::make_error(util::ErrorCode::kParseError,
                            "negative shard cycle");
  }
  payload.cycle = static_cast<std::uint64_t>(cycle.value());
  auto trace = root.get_string("trace");
  if (!trace.ok()) return trace.error();
  payload.trace_id = std::move(trace).value();

  auto cells = root.get_array("cells");
  if (!cells.ok()) return cells.error();
  for (const JsonValue& cell_value : cells.value()) {
    auto cell = cell_from_json(cell_value);
    if (!cell.ok()) return cell.error();
    payload.table.put(std::move(cell).value());
  }

  auto health = root.get_object("health");
  if (!health.ok()) return health.error();
  const JsonValue health_value{health.value()};
  auto quarantined = health_value.get_number("rows_quarantined");
  if (!quarantined.ok()) return quarantined.error();
  payload.health.rows_quarantined =
      static_cast<std::size_t>(std::max(quarantined.value(), 0.0));
  auto retried = health_value.get_number("sources_retried");
  if (!retried.ok()) return retried.error();
  payload.health.sources_retried =
      static_cast<std::size_t>(std::max(retried.value(), 0.0));
  auto breakers = health_value.get_array("open_breakers");
  if (!breakers.ok()) return breakers.error();
  for (const JsonValue& breaker : breakers.value()) {
    if (!breaker.is_string()) {
      return util::make_error(util::ErrorCode::kParseError,
                              "open_breakers entries must be strings");
    }
    payload.health.open_breakers.push_back(breaker.as_string());
  }
  return payload;
}

}  // namespace iqb::fleet
