// Fleet wire format: the versioned shard payload.
//
// A shard daemon owns a region subset and exposes its per-cycle
// AggregateTable on /shard/aggregate; the coordinator fetches those
// payloads, merges the tables (AggregateTable::merge) and scores the
// union exactly like a single daemon would. That only works if the
// serialization is *exact*: aggregate values are doubles, and the
// coordinator's fused /scores must be byte-identical to a single
// daemon's over the same records. Numbers therefore ride through
// util::JsonValue's %.17g formatting and from_chars parsing, which
// round-trip every finite double bit-for-bit (asserted in tests).
//
// The payload is versioned: a coordinator rejects payloads whose
// version it does not speak (a mid-upgrade fleet degrades the shard,
// it does not mis-merge it), and ships the shard's ingest-side health
// so quarantined rows and open feed breakers keep flowing into the
// fused scores' degradation reports.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "iqb/datasets/aggregate.hpp"
#include "iqb/robust/degradation.hpp"
#include "iqb/util/result.hpp"

namespace iqb::fleet {

/// Wire version this build speaks.
inline constexpr std::uint32_t kWireVersion = 1;

/// One shard's per-cycle contribution to the fleet.
struct ShardPayload {
  std::uint32_t version = kWireVersion;
  std::uint64_t cycle = 0;      ///< Shard's completed-cycle ordinal.
  std::string trace_id;         ///< Shard cycle's correlation id.
  datasets::AggregateTable table;
  robust::IngestHealth health;  ///< Shard-local ingest health.
};

/// Serialize to the versioned JSON document served on /shard/aggregate
/// (compact, newline-terminated, deterministic field order).
std::string serialize_shard_payload(const ShardPayload& payload);

/// Parse and validate a payload. Foreign versions, missing fields,
/// unknown metric names and non-finite values are kParseError — a
/// coordinator treats any of them as a failed fetch.
util::Result<ShardPayload> parse_shard_payload(std::string_view text);

}  // namespace iqb::fleet
