// Gather stage: fuse shard payloads into one served score set.
//
// The coordinator's contract is the paper's degradation contract
// lifted to fleet scale: while at least one shard answers, /scores is
// always a well-formed, complete-looking document — never an error —
// and what the fleet could not corroborate this cycle is *labelled*,
// not hidden:
//
//   * fresh shards contribute their aggregate tables verbatim; the
//     merged table is scored exactly like a single daemon scores its
//     own aggregation, so a zero-fault fleet's /scores is
//     byte-identical to a single daemon over the union of records;
//   * a shard served from cache (it failed this cycle) contributes
//     its last-good table, and every region it owns is demoted to
//     confidence tier C — the scores stand, the trust does not — with
//     "shard:<name>" recorded among the open breakers;
//   * a shard with no payload at all simply has no regions yet; the
//     rest of the fleet is unaffected.
//
// Tier demotion feeds the existing /readyz semantics (tier C =>
// "degraded", 503) so orchestration sees fleet faults through the
// same lens as ingest faults.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "iqb/core/config.hpp"
#include "iqb/fleet/fetcher.hpp"
#include "iqb/fleet/wire.hpp"

namespace iqb::fleet {

/// Result of fusing one cycle's shard views.
struct FuseOutput {
  /// Rendered exactly like WatchDaemon renders a cycle
  /// (report::to_json(...).dump(2) + "\n") — byte-identical to a
  /// single daemon when every shard is fresh.
  std::string scores_json;
  /// The fused table re-serialized as a shard payload, so a
  /// coordinator can itself be scatter-gathered by a higher tier.
  std::string aggregate_json;

  bool tier_c = false;
  std::vector<std::string> tier_c_regions;
  /// Regions served from a cached (stale) shard payload, sorted.
  std::vector<std::string> stale_regions;
  /// Regions that could not be scored (e.g. cells below min_samples).
  std::vector<std::string> skipped_regions;

  std::size_t shards_fresh = 0;
  std::size_t shards_cached = 0;
  std::size_t shards_missing = 0;
  /// Newest shard cycle folded in (freshness indicator).
  std::uint64_t max_shard_cycle = 0;

  /// At least one shard contributed a payload (fresh or cached);
  /// false means there is nothing to serve this cycle.
  bool any_payload() const noexcept {
    return shards_fresh + shards_cached > 0;
  }
  /// Some configured shard did not contribute fresh data.
  bool partial() const noexcept { return shards_cached + shards_missing > 0; }
};

/// Merge the views' tables and health, score every region of the
/// fused table, demote stale shards' regions to tier C, and render.
/// Pure: no I/O, no clock — the scatter stage owns time.
FuseOutput fuse(const core::IqbConfig& config, std::span<const ShardView> views,
                const std::string& trace_id);

}  // namespace iqb::fleet
