#include "iqb/fleet/replication.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <set>
#include <thread>
#include <utility>

#include "iqb/obs/metrics.hpp"
#include "iqb/util/json.hpp"
#include "iqb/util/log.hpp"
#include "iqb/util/strings.hpp"

namespace iqb::fleet {

namespace {

constexpr const char* kCheckpointzPath = "/checkpointz";
constexpr const char* kFrameContentType = "application/octet-stream";

constexpr const char* kPushMetric = "iqbd_replication_push_total";
constexpr const char* kPushHelp =
    "Checkpoint frames pushed to peers, by outcome";
constexpr const char* kLagMetric = "iqbd_replication_lag_cycles";
constexpr const char* kLagHelp =
    "Cycles the peer's replica of this node trails the local newest "
    "checkpoint (0 = fully replicated)";
constexpr const char* kDenialMetric = "iqbd_replication_breaker_denials_total";
constexpr const char* kDenialHelp =
    "Replication sweeps skipped by an open per-peer circuit breaker";

obs::HttpResponse json_error(int status, const std::string& reason) {
  util::JsonObject out;
  out.emplace("error", reason);
  return {status, "application/json",
          util::JsonValue(std::move(out)).dump() + "\n"};
}

util::JsonArray entries_to_json(const std::vector<CatalogEntry>& entries) {
  util::JsonArray out;
  for (const CatalogEntry& entry : entries) {
    util::JsonObject e;
    e.emplace("cycle", static_cast<std::int64_t>(entry.cycle));
    e.emplace("bytes", static_cast<std::int64_t>(entry.bytes));
    e.emplace("crc32", entry.crc32_hex);
    out.emplace_back(std::move(e));
  }
  return out;
}

util::Result<std::vector<CatalogEntry>> entries_from_json(
    const util::JsonArray& array) {
  std::vector<CatalogEntry> entries;
  for (const util::JsonValue& value : array) {
    CatalogEntry entry;
    auto cycle = value.get_number("cycle");
    if (!cycle.ok() || cycle.value() < 1.0) {
      return util::make_error(util::ErrorCode::kParseError,
                              "catalog entry missing a positive cycle");
    }
    entry.cycle = static_cast<std::uint64_t>(cycle.value());
    entry.bytes = static_cast<std::uint64_t>(
        value.get_number("bytes").value_or(0.0));
    entry.crc32_hex = value.get_string("crc32").value_or("");
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<CatalogEntry> store_entries(const robust::CheckpointStore& store) {
  auto listed = store.list();
  if (!listed.ok()) return {};
  std::vector<CatalogEntry> entries;
  entries.reserve(listed.value().size());
  for (const robust::CheckpointStore::Entry& entry : listed.value()) {
    entries.push_back({entry.cycle, entry.bytes, entry.crc32_hex});
  }
  return entries;
}

/// Cycle ordinal from "/checkpointz/<cycle>", or 0 when malformed.
std::uint64_t cycle_from_path(const std::string& path) {
  const std::string prefix = std::string(kCheckpointzPath) + "/";
  if (path.rfind(prefix, 0) != 0) return 0;
  const auto parsed = util::parse_int(path.substr(prefix.size()));
  if (!parsed.ok() || parsed.value() <= 0) return 0;
  return static_cast<std::uint64_t>(parsed.value());
}

}  // namespace

bool valid_node_id(std::string_view id) noexcept {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::uint64_t CheckpointCatalog::newest(
    const std::vector<CatalogEntry>& entries) {
  std::uint64_t newest = 0;
  for (const CatalogEntry& entry : entries) {
    newest = std::max(newest, entry.cycle);
  }
  return newest;
}

std::string render_checkpoint_catalog(const CheckpointCatalog& catalog) {
  util::JsonObject out;
  out.emplace("node", catalog.node);
  out.emplace("own", entries_to_json(catalog.own));
  util::JsonObject replicas;
  for (const auto& [source, entries] : catalog.replicas) {
    replicas.emplace(source, entries_to_json(entries));
  }
  out.emplace("replicas", std::move(replicas));
  return util::JsonValue(std::move(out)).dump() + "\n";
}

util::Result<CheckpointCatalog> parse_checkpoint_catalog(
    std::string_view json) {
  auto parsed = util::parse_json(json);
  if (!parsed.ok()) {
    return util::make_error(util::ErrorCode::kParseError,
                            "catalog is not valid JSON: " +
                                parsed.error().message);
  }
  CheckpointCatalog catalog;
  auto node = parsed->get_string("node");
  if (!node.ok()) {
    return util::make_error(util::ErrorCode::kParseError,
                            "catalog missing node");
  }
  catalog.node = std::move(node).value();
  auto own = parsed->get_array("own");
  if (!own.ok()) {
    return util::make_error(util::ErrorCode::kParseError,
                            "catalog missing own");
  }
  auto own_entries = entries_from_json(own.value());
  if (!own_entries.ok()) return own_entries.error();
  catalog.own = std::move(own_entries).value();
  if (auto replicas = parsed->get_object("replicas"); replicas.ok()) {
    for (const auto& [source, value] : replicas.value()) {
      if (!value.is_array()) continue;
      auto entries = entries_from_json(value.as_array());
      if (!entries.ok()) return entries.error();
      catalog.replicas.emplace(source, std::move(entries).value());
    }
  }
  return catalog;
}

CheckpointExchange::CheckpointExchange(Options options,
                                       const robust::CheckpointStore* own)
    : options_(std::move(options)), own_(own) {}

robust::CheckpointStore CheckpointExchange::replica_store(
    const std::string& source) const {
  return robust::CheckpointStore(options_.state_dir / "replicas" / source,
                                 options_.keep);
}

CheckpointCatalog CheckpointExchange::catalog() const {
  CheckpointCatalog catalog;
  catalog.node = options_.node_id;
  if (own_ != nullptr) catalog.own = store_entries(*own_);
  std::error_code ec;
  const std::filesystem::path replicas_dir = options_.state_dir / "replicas";
  for (const auto& entry :
       std::filesystem::directory_iterator(replicas_dir, ec)) {
    const std::string source = entry.path().filename().string();
    // Only directories a well-formed source could have created; a
    // stray file (or a dir someone dropped in by hand) is not served.
    if (!entry.is_directory(ec) || !valid_node_id(source)) continue;
    catalog.replicas.emplace(source, store_entries(replica_store(source)));
  }
  return catalog;
}

std::optional<obs::HttpResponse> CheckpointExchange::handle(
    const obs::HttpRequest& request) const {
  if (request.path != kCheckpointzPath &&
      request.path.rfind(std::string(kCheckpointzPath) + "/", 0) != 0) {
    return std::nullopt;
  }
  if (request.method == "POST") return handle_post(request);
  return handle_get(request);
}

std::optional<obs::HttpResponse> CheckpointExchange::handle_get(
    const obs::HttpRequest& request) const {
  if (request.path == kCheckpointzPath) {
    return obs::HttpResponse{200, "application/json",
                             render_checkpoint_catalog(catalog())};
  }
  const std::uint64_t cycle = cycle_from_path(request.path);
  if (cycle == 0) {
    return json_error(400, "bad checkpoint path (want /checkpointz/<cycle>)");
  }
  const std::string source = obs::query_param(request.query, "source");
  util::Result<std::string> frame = [&]() -> util::Result<std::string> {
    if (source.empty() || source == options_.node_id) {
      if (own_ == nullptr) {
        return util::make_error(util::ErrorCode::kNotFound,
                                "this node persists no own checkpoints");
      }
      return own_->read_frame(cycle);
    }
    if (!valid_node_id(source)) {
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "bad source node id");
    }
    return replica_store(source).read_frame(cycle);
  }();
  if (!frame.ok()) {
    // A frame that exists but fails decode-verification and one that
    // was never stored both answer 404: either way this node has no
    // serveable copy, and the reason says which case it was.
    return json_error(404, frame.error().message);
  }
  obs::HttpResponse response{200, kFrameContentType,
                             std::move(frame).value()};
  response.headers.emplace_back("X-IQB-Checkpoint-Cycle",
                                std::to_string(cycle));
  return response;
}

std::optional<obs::HttpResponse> CheckpointExchange::handle_post(
    const obs::HttpRequest& request) const {
  const std::uint64_t cycle = cycle_from_path(request.path);
  if (cycle == 0) {
    return json_error(400, "bad checkpoint path (want /checkpointz/<cycle>)");
  }
  const std::string source = obs::query_param(request.query, "source");
  if (!valid_node_id(source)) {
    return json_error(400, "bad or missing source node id");
  }
  if (source == options_.node_id) {
    // A peer claiming to be us would write into a replica dir shadowing
    // our own identity — confused at best, spoofed at worst.
    return json_error(409, "source '" + source + "' is this node's own id");
  }
  if (request.body.empty()) {
    return json_error(400, "empty checkpoint frame");
  }
  // import_frame re-verifies the frame's magic/version/size/CRC on
  // this side of the wire before anything touches disk.
  auto imported = replica_store(source).import_frame(request.body);
  if (!imported.ok()) {
    return json_error(400, imported.error().message);
  }
  if (imported->cycle != cycle) {
    return json_error(409, "frame carries cycle " +
                               std::to_string(imported->cycle) +
                               " but was posted as " + std::to_string(cycle));
  }
  util::JsonObject out;
  out.emplace("status", "stored");
  out.emplace("source", source);
  out.emplace("cycle", static_cast<std::int64_t>(imported->cycle));
  return obs::HttpResponse{200, "application/json",
                           util::JsonValue(std::move(out)).dump() + "\n"};
}

Replicator::Replicator(Options options, const robust::CheckpointStore* store,
                       obs::MetricsRegistry* metrics)
    : options_(std::move(options)), store_(store), metrics_(metrics) {
  peers_.reserve(options_.peers.size());
  for (const ShardEndpoint& endpoint : options_.peers) {
    PeerState state;
    state.endpoint = endpoint;
    state.breaker = robust::CircuitBreaker(options_.breaker);
    peers_.push_back(std::move(state));
  }
  if (metrics_) {
    // Eager registration so dashboards see the families (at zero)
    // before the first push or fault.
    for (const ShardEndpoint& endpoint : options_.peers) {
      metrics_->counter(kPushMetric, kPushHelp,
                        {{"peer", endpoint.name}, {"result", "ok"}});
      metrics_->gauge(kLagMetric, kLagHelp, {{"peer", endpoint.name}});
    }
    metrics_->counter(kDenialMetric, kDenialHelp);
  }
}

Replicator::PeerOutcome Replicator::replicate_peer(
    PeerState& peer, const std::shared_ptr<obs::Tracer>& tracer,
    std::size_t parent_span) {
  PeerOutcome outcome;
  outcome.peer = peer.endpoint.name;

  std::size_t span = obs::Tracer::kNoSpan;
  if (tracer) {
    span = tracer->begin_span_at("fleet.replicate", parent_span);
    tracer->set_attribute(span, "peer", peer.endpoint.name);
  }
  auto finish = [&](PeerOutcome result) {
    if (tracer) {
      tracer->set_attribute(span, "pushed", std::to_string(result.pushed));
      tracer->set_attribute(span, "lag", std::to_string(result.lag_cycles));
      if (!result.error.empty()) {
        tracer->set_attribute(span, "error", result.error);
      }
      tracer->end_span(span);
    }
    if (metrics_) {
      metrics_->gauge(kLagMetric, kLagHelp, {{"peer", peer.endpoint.name}})
          .set(static_cast<double>(result.lag_cycles));
    }
    return result;
  };

  const std::vector<CatalogEntry> own =
      store_ ? store_entries(*store_) : std::vector<CatalogEntry>{};
  const std::uint64_t own_newest = CheckpointCatalog::newest(own);
  outcome.lag_cycles = own_newest;  // pessimistic until the peer answers

  if (!peer.breaker.allow_request()) {
    denials_.fetch_add(1);
    if (metrics_) metrics_->counter(kDenialMetric, kDenialHelp).inc();
    outcome.error =
        "circuit breaker open (" +
        std::string(robust::breaker_state_name(peer.breaker.state())) + ")";
    return finish(outcome);
  }

  const obs::HttpClient client(options_.http);
  robust::RetrySchedule schedule(options_.retry);
  // One retry budget for the whole sweep: transient failures (5xx,
  // transport) retry against it; 4xx answers are permanent — the peer
  // understood us and said no — and never retry.
  const auto exchange =
      [&](const std::function<util::Result<obs::HttpClient::Response>()>& op)
      -> util::Result<obs::HttpClient::Response> {
    for (;;) {
      auto result = op();
      if (result.ok() && result.value().status < 500) return result;
      const double delay_s = schedule.next_delay_s();
      if (delay_s < 0.0) return result;
      std::this_thread::sleep_for(std::chrono::duration<double>(
          delay_s * options_.retry_sleep_scale));
    }
  };

  std::vector<obs::HttpHeader> headers;
  if (tracer) {
    const obs::SpanContext context{tracer->trace_id(), tracer->uid(span)};
    if (context.valid()) {
      headers.emplace_back(obs::kTraceparentHeader,
                           obs::format_traceparent(context));
    }
  }
  auto fetched = exchange([&] {
    return client.get(peer.endpoint.host, peer.endpoint.port,
                      kCheckpointzPath, headers);
  });
  if (!fetched.ok() || fetched.value().status != 200) {
    peer.breaker.record_failure();
    outcome.error = fetched.ok() ? "peer catalog answered HTTP " +
                                       std::to_string(fetched.value().status)
                                 : fetched.error().message;
    return finish(outcome);
  }
  auto catalog = parse_checkpoint_catalog(fetched.value().body);
  if (!catalog.ok()) {
    peer.breaker.record_failure();
    outcome.error = catalog.error().message;
    return finish(outcome);
  }

  // Diff-driven push: whatever the peer's replica set is missing, send
  // newest first. The fast path (everything but this cycle's frame)
  // and anti-entropy catch-up after a partition are the same walk.
  std::set<std::uint64_t> held;
  if (const auto it = catalog->replicas.find(options_.node_id);
      it != catalog->replicas.end()) {
    for (const CatalogEntry& entry : it->second) held.insert(entry.cycle);
  }
  std::vector<std::uint64_t> missing;
  for (const CatalogEntry& entry : own) {
    if (held.find(entry.cycle) == held.end()) missing.push_back(entry.cycle);
  }
  std::sort(missing.rbegin(), missing.rend());
  if (missing.size() > options_.max_push_per_sweep) {
    missing.resize(options_.max_push_per_sweep);
  }

  std::uint64_t replicated_newest =
      held.empty() ? 0 : *held.rbegin();
  for (const std::uint64_t cycle : missing) {
    auto frame = store_->read_frame(cycle);
    if (!frame.ok()) {
      // Local rot discovered while replicating: skip this generation
      // (its intact neighbours still spread) and say why.
      IQB_LOG(kWarn) << "replication skipping cycle " << cycle << ": "
                     << frame.error().message;
      continue;
    }
    std::size_t push_span = obs::Tracer::kNoSpan;
    std::vector<obs::HttpHeader> push_headers;
    if (tracer) {
      push_span = tracer->begin_span_at("fleet.push", span);
      tracer->set_attribute(push_span, "cycle", std::to_string(cycle));
      const obs::SpanContext context{tracer->trace_id(),
                                     tracer->uid(push_span)};
      if (context.valid()) {
        push_headers.emplace_back(obs::kTraceparentHeader,
                                  obs::format_traceparent(context));
      }
    }
    const std::string path = std::string(kCheckpointzPath) + "/" +
                             std::to_string(cycle) +
                             "?source=" + options_.node_id;
    auto pushed = exchange([&] {
      return client.post(peer.endpoint.host, peer.endpoint.port, path,
                         frame.value(), kFrameContentType, push_headers);
    });
    const bool stored = pushed.ok() && pushed.value().status == 200;
    if (tracer) {
      tracer->set_attribute(push_span, "stored", stored ? "true" : "false");
      tracer->end_span(push_span);
    }
    if (!stored) {
      push_failures_.fetch_add(1);
      if (metrics_) {
        metrics_
            ->counter(kPushMetric, kPushHelp,
                      {{"peer", peer.endpoint.name}, {"result", "error"}})
            .inc();
      }
      outcome.error = pushed.ok() ? "peer answered HTTP " +
                                        std::to_string(pushed.value().status)
                                  : pushed.error().message;
      break;
    }
    pushes_.fetch_add(1);
    ++outcome.pushed;
    replicated_newest = std::max(replicated_newest, cycle);
    if (metrics_) {
      metrics_
          ->counter(kPushMetric, kPushHelp,
                    {{"peer", peer.endpoint.name}, {"result", "ok"}})
          .inc();
    }
  }

  if (outcome.error.empty()) {
    peer.breaker.record_success();
  } else {
    peer.breaker.record_failure();
  }
  outcome.lag_cycles =
      own_newest > replicated_newest ? own_newest - replicated_newest : 0;
  return finish(outcome);
}

std::vector<Replicator::PeerOutcome> Replicator::replicate(
    std::shared_ptr<obs::Tracer> tracer, std::size_t parent_span) {
  // Sequential sweep: peers are few (replication factor 1-2), each op
  // is deadline-bounded, and in-order outcomes keep the logs and the
  // tests deterministic.
  std::vector<PeerOutcome> outcomes;
  outcomes.reserve(peers_.size());
  for (PeerState& peer : peers_) {
    outcomes.push_back(replicate_peer(peer, tracer, parent_span));
  }
  return outcomes;
}

PeerRecovery bootstrap_from_peers(const robust::CheckpointStore& store,
                                  std::uint64_t local_cycle,
                                  std::uint64_t recovery_lag,
                                  const std::string& node_id,
                                  const std::vector<ShardEndpoint>& peers,
                                  const obs::HttpClient::Options& http) {
  PeerRecovery recovery;
  const obs::HttpClient client(http);

  struct Candidate {
    ShardEndpoint peer;
    std::uint64_t cycle = 0;
  };
  std::vector<Candidate> candidates;
  for (const ShardEndpoint& peer : peers) {
    auto fetched = client.get(peer.host, peer.port, kCheckpointzPath);
    if (!fetched.ok()) {
      recovery.rejected.push_back(
          {peer.name + " catalog", fetched.error().message});
      continue;
    }
    if (fetched.value().status != 200) {
      recovery.rejected.push_back(
          {peer.name + " catalog",
           "HTTP " + std::to_string(fetched.value().status)});
      continue;
    }
    auto catalog = parse_checkpoint_catalog(fetched.value().body);
    if (!catalog.ok()) {
      recovery.rejected.push_back(
          {peer.name + " catalog", catalog.error().message});
      continue;
    }
    const auto it = catalog->replicas.find(node_id);
    const std::uint64_t newest =
        it == catalog->replicas.end()
            ? 0
            : CheckpointCatalog::newest(it->second);
    if (newest == 0) {
      recovery.rejected.push_back(
          {peer.name, "holds no replica of '" + node_id + "'"});
      continue;
    }
    // Newest-valid-wins: a remote copy must beat the local newest by
    // more than the configured lag to be worth adopting (guarded
    // against unsigned wraparound on absurd lag values).
    if (newest <= recovery_lag || newest - recovery_lag <= local_cycle) {
      recovery.rejected.push_back(
          {peer.name + " cycle " + std::to_string(newest),
           "not newer than local cycle " + std::to_string(local_cycle) +
               " + lag " + std::to_string(recovery_lag)});
      continue;
    }
    candidates.push_back({peer, newest});
  }

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.cycle > b.cycle;
                   });
  for (const Candidate& candidate : candidates) {
    const std::string label =
        candidate.peer.name + " cycle " + std::to_string(candidate.cycle);
    const std::string path = std::string(kCheckpointzPath) + "/" +
                             std::to_string(candidate.cycle) +
                             "?source=" + node_id;
    auto fetched =
        client.get(candidate.peer.host, candidate.peer.port, path);
    if (!fetched.ok()) {
      recovery.rejected.push_back({label, fetched.error().message});
      continue;
    }
    if (fetched.value().status != 200) {
      recovery.rejected.push_back(
          {label, "HTTP " + std::to_string(fetched.value().status)});
      continue;
    }
    // import_frame re-verifies the CRC on this end before the frame
    // touches the local store; a copy that rotted in flight (or on the
    // peer) is refused here and the next candidate gets its turn.
    auto imported = store.import_frame(fetched.value().body);
    if (!imported.ok()) {
      recovery.rejected.push_back({label, imported.error().message});
      continue;
    }
    if (imported->cycle != candidate.cycle) {
      recovery.rejected.push_back(
          {label, "frame carries cycle " + std::to_string(imported->cycle)});
      continue;
    }
    recovery.checkpoint = std::move(imported).value();
    recovery.source = candidate.peer.name;
    return recovery;
  }
  return recovery;
}

}  // namespace iqb::fleet
