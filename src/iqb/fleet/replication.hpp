// Fleet checkpoint replication and peer-bootstrap recovery.
//
// The scatter-gather fleet tolerates a shard that *restarts* — its
// local CheckpointStore replays the last good cycle — but not one
// that loses its state dir (disk wipe, node replacement, bit rot
// across every retained generation). Replication closes that hole by
// spreading each shard's checkpoints across its peers, riding on the
// framed format robust::CheckpointStore already verifies:
//
//   * CheckpointExchange serves a daemon's retained checkpoints over
//     HTTP: `GET /checkpointz` is the catalog (own generations plus
//     every replica held for peers, each with cycle, byte size and
//     payload CRC), `GET /checkpointz/<cycle>` is one raw frame —
//     decode-verified before it leaves, so a rotted file is never
//     served — and `POST /checkpointz/<cycle>?source=<node>` accepts
//     a peer's frame into a per-source replica store after this side
//     re-verifies the frame's own CRC. Replicas live beside (never
//     inside) the daemon's own generations, one directory per source
//     node, so a peer can never overwrite local state.
//
//   * Replicator runs on the pushing side: after each completed cycle
//     it reconciles every configured peer against its own catalog and
//     POSTs whatever the peer is missing, newest first. Because the
//     sweep is diff-driven rather than "push the latest", the fast
//     path (peer holds everything but the new frame) and anti-entropy
//     after a partition (peer missed N frames) are the same code.
//     Transient failures ride the shared RetrySchedule; a persistently
//     dead peer trips a per-peer CircuitBreaker and stops consuming
//     the cycle's time budget until half-open probes readmit it.
//
//   * bootstrap_from_peers runs on the recovering side: when local
//     recovery comes up empty (or trails the fleet by more than
//     `recovery_lag` cycles) it asks every peer's catalog for the
//     newest replica of *this* node's state, fetches candidates
//     newest-first, and imports the first frame that survives CRC
//     re-verification into the local store. Newest-valid-wins across
//     local + remote; every rejected candidate carries its reason so
//     the operator can see *why* a copy was refused.
//
// Replication metrics (when a registry is attached):
// iqbd_replication_push_total{peer,result}, iqbd_replication_lag_cycles
// {peer} and iqbd_replication_breaker_denials_total; the recovering
// daemon counts adopted remote checkpoints as iqbd_peer_recovery_total.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "iqb/fleet/fetcher.hpp"
#include "iqb/obs/http_client.hpp"
#include "iqb/obs/http_server.hpp"
#include "iqb/obs/trace.hpp"
#include "iqb/robust/checkpoint.hpp"
#include "iqb/robust/circuit_breaker.hpp"
#include "iqb/robust/retry.hpp"
#include "iqb/util/result.hpp"

namespace iqb::obs {
class MetricsRegistry;
}

namespace iqb::fleet {

/// Node ids name replica directories on peers, so they are restricted
/// to [A-Za-z0-9_-] (1..64 chars): no separators, no dots, nothing a
/// hostile peer could bend into path traversal.
bool valid_node_id(std::string_view id) noexcept;

/// One retained generation as advertised on /checkpointz.
struct CatalogEntry {
  std::uint64_t cycle = 0;
  std::uint64_t bytes = 0;
  std::string crc32_hex;
};

/// The /checkpointz document: who is answering, what it retains of its
/// own state, and what it holds for each peer that replicates to it.
struct CheckpointCatalog {
  std::string node;
  std::vector<CatalogEntry> own;  ///< Oldest first.
  std::map<std::string, std::vector<CatalogEntry>> replicas;

  /// Newest cycle in `entries`-style vectors (0 when empty).
  static std::uint64_t newest(const std::vector<CatalogEntry>& entries);
};

std::string render_checkpoint_catalog(const CheckpointCatalog& catalog);
util::Result<CheckpointCatalog> parse_checkpoint_catalog(
    std::string_view json);

/// Serves and accepts checkpoint frames for one daemon. Thread-safe:
/// handle() may run on any HTTP worker; all state is on disk and every
/// write goes through CheckpointStore's atomic_write.
class CheckpointExchange {
 public:
  struct Options {
    /// This daemon's stable name; the directory its frames land under
    /// on peers. Must satisfy valid_node_id.
    std::string node_id = "iqbd";
    /// Root state dir. Replicas held for peers live at
    /// `<state_dir>/replicas/<source>`, parallel to the daemon's own
    /// checkpoint files.
    std::filesystem::path state_dir;
    /// Keep bound for each per-source replica store.
    std::size_t keep = 3;
  };

  /// `own` is the daemon's own CheckpointStore (non-owning, may be
  /// null: the exchange then serves an empty own catalog — a
  /// coordinator that accepts replicas but persists nothing itself).
  CheckpointExchange(Options options, const robust::CheckpointStore* own);

  /// Route-override hook: answers every /checkpointz path, returns
  /// nullopt for anything else.
  std::optional<obs::HttpResponse> handle(
      const obs::HttpRequest& request) const;

  /// The catalog served on GET /checkpointz.
  CheckpointCatalog catalog() const;

  /// The per-source replica store (directory may not exist yet).
  robust::CheckpointStore replica_store(const std::string& source) const;

  const Options& options() const noexcept { return options_; }

 private:
  std::optional<obs::HttpResponse> handle_get(
      const obs::HttpRequest& request) const;
  std::optional<obs::HttpResponse> handle_post(
      const obs::HttpRequest& request) const;

  Options options_;
  const robust::CheckpointStore* own_;
};

/// Pushes this node's checkpoints to configured peers after each
/// cycle. One Replicator lives as long as the daemon so breaker state
/// accumulates across cycles, exactly like FleetFetcher's.
class Replicator {
 public:
  struct Options {
    std::string node_id = "iqbd";
    std::vector<ShardEndpoint> peers;
    obs::HttpClient::Options http;
    /// Retry budget per peer per sweep (decorrelated jitter).
    robust::RetryPolicy retry{/*max_attempts=*/2, /*base_delay_s=*/0.05,
                              /*max_delay_s=*/0.5, /*deadline_s=*/2.0,
                              /*seed=*/23};
    robust::CircuitBreakerConfig breaker;
    /// Scale applied to retry delays before sleeping (tests shrink it).
    double retry_sleep_scale = 1.0;
    /// Frames pushed to one peer in one sweep, newest first; bounds a
    /// post-partition catch-up burst. The next sweep continues.
    std::size_t max_push_per_sweep = 8;
  };

  /// Result of one peer's sweep, for logging and /fleetz-style status.
  struct PeerOutcome {
    std::string peer;
    std::size_t pushed = 0;         ///< Frames stored by the peer.
    std::uint64_t lag_cycles = 0;   ///< Our newest minus peer's copy.
    std::string error;              ///< Last failure, empty when clean.
  };

  /// `store` is the daemon's own CheckpointStore (non-owning).
  Replicator(Options options, const robust::CheckpointStore* store,
             obs::MetricsRegistry* metrics = nullptr);

  /// One sweep: reconcile every peer against the local catalog and
  /// push missing frames. Returns one outcome per peer in
  /// configuration order. A non-null tracer hangs a "fleet.replicate"
  /// span per peer (and a "fleet.push" child per upload) off
  /// `parent_span`, each push carrying its span as an explicit
  /// traceparent so peer-side server spans join this trace.
  std::vector<PeerOutcome> replicate(
      std::shared_ptr<obs::Tracer> tracer = nullptr,
      std::size_t parent_span = obs::Tracer::kNoSpan);

  std::uint64_t pushes_total() const noexcept { return pushes_.load(); }
  std::uint64_t push_failures_total() const noexcept {
    return push_failures_.load();
  }
  std::uint64_t breaker_denials_total() const noexcept {
    return denials_.load();
  }

 private:
  struct PeerState {
    ShardEndpoint endpoint;
    robust::CircuitBreaker breaker;
  };

  PeerOutcome replicate_peer(PeerState& peer,
                             const std::shared_ptr<obs::Tracer>& tracer,
                             std::size_t parent_span);

  Options options_;
  const robust::CheckpointStore* store_;
  obs::MetricsRegistry* metrics_;
  std::vector<PeerState> peers_;

  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> push_failures_{0};
  std::atomic<std::uint64_t> denials_{0};
};

/// Why one recovery candidate was passed over (peer unreachable, bad
/// catalog, frame failed CRC re-verification, ...).
struct RejectedCandidate {
  std::string candidate;  ///< "peer2 cycle 41", "peer1 catalog", ...
  std::string reason;
};

/// Outcome of bootstrap_from_peers. `checkpoint` is set only when a
/// remote copy won: it has already been imported into the local store
/// (so the next restart recovers locally) and `source` names the peer
/// it came from.
struct PeerRecovery {
  std::optional<robust::Checkpoint> checkpoint;
  std::string source;
  std::vector<RejectedCandidate> rejected;
};

/// Newest-valid-wins bootstrap across local + remote candidates. Asks
/// every peer's catalog for replicas of `node_id`, keeps candidates
/// strictly newer than `local_cycle + recovery_lag` (local_cycle 0 =
/// local recovery found nothing), and tries them newest-first: fetch
/// the frame, re-verify its CRC, import into `store`. The first
/// survivor wins; every refused candidate is recorded with its
/// reason. With no surviving candidate the caller keeps its local
/// outcome (checkpoint unset).
PeerRecovery bootstrap_from_peers(const robust::CheckpointStore& store,
                                  std::uint64_t local_cycle,
                                  std::uint64_t recovery_lag,
                                  const std::string& node_id,
                                  const std::vector<ShardEndpoint>& peers,
                                  const obs::HttpClient::Options& http);

}  // namespace iqb::fleet
