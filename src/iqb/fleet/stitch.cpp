#include "iqb/fleet/stitch.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>

namespace iqb::fleet {

namespace {

/// Group key for clock alignment: one ingest (one cycle of one
/// process) rebases its spans together, so (source, trace) spans
/// share a clock and must be shifted together.
std::string group_key(const SourcedSpan& span) {
  return span.source + '\0' + span.trace_id;
}

}  // namespace

std::string SourcedSpan::attribute(const std::string& key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return v;
  }
  return {};
}

util::Result<std::vector<SourcedSpan>> parse_tracez_dump(
    const util::JsonValue& document, const std::string& default_source) {
  auto spans_field = document.get_array("spans");
  if (!spans_field.ok()) return spans_field.error();
  std::vector<SourcedSpan> out;
  out.reserve(spans_field.value().size());
  for (const util::JsonValue& entry : spans_field.value()) {
    if (!entry.is_object()) {
      return util::make_error(util::ErrorCode::kParseError,
                              "tracez span entry is not an object");
    }
    SourcedSpan span;
    span.source = default_source;
    if (entry.contains("source")) {
      auto source = entry.get_string("source");
      if (!source.ok()) return source.error();
      span.source = std::move(source).value();
    }
    auto trace = entry.get_string("trace");
    auto name = entry.get_string("name");
    auto uid_hex = entry.get_string("span");
    auto start = entry.get_number("start_ns");
    auto duration = entry.get_number("duration_ns");
    if (!trace.ok()) return trace.error();
    if (!name.ok()) return name.error();
    if (!uid_hex.ok()) return uid_hex.error();
    if (!start.ok()) return start.error();
    if (!duration.ok()) return duration.error();
    const auto uid = obs::parse_span_uid(uid_hex.value());
    if (!uid) {
      return util::make_error(util::ErrorCode::kParseError,
                              "bad span uid '" + uid_hex.value() + "'");
    }
    span.trace_id = std::move(trace).value();
    span.name = std::move(name).value();
    span.span_uid = *uid;
    span.start_ns = static_cast<std::uint64_t>(start.value());
    span.duration_ns = static_cast<std::uint64_t>(duration.value());
    if (entry.contains("parent_span")) {
      auto parent_hex = entry.get_string("parent_span");
      if (!parent_hex.ok()) return parent_hex.error();
      if (!parent_hex.value().empty()) {
        const auto parent = obs::parse_span_uid(parent_hex.value());
        if (!parent) {
          return util::make_error(
              util::ErrorCode::kParseError,
              "bad parent span uid '" + parent_hex.value() + "'");
        }
        span.parent_uid = *parent;
      }
    }
    if (entry.contains("attributes")) {
      auto attributes = entry.get_object("attributes");
      if (!attributes.ok()) return attributes.error();
      for (const auto& [key, value] : attributes.value()) {
        if (!value.is_string()) {
          return util::make_error(util::ErrorCode::kParseError,
                                  "span attribute '" + key +
                                      "' is not a string");
        }
        span.attributes.emplace_back(key, value.as_string());
      }
    }
    out.push_back(std::move(span));
  }
  return out;
}

std::vector<SourcedSpan> from_completed(
    const std::vector<obs::CompletedSpan>& spans, const std::string& source) {
  std::vector<SourcedSpan> out;
  out.reserve(spans.size());
  for (const obs::CompletedSpan& span : spans) {
    SourcedSpan sourced;
    sourced.source = source;
    sourced.trace_id = span.trace_id;
    sourced.name = span.name;
    sourced.span_uid = span.span_uid;
    sourced.parent_uid = span.parent_uid;
    sourced.start_ns = span.start_ns;
    sourced.duration_ns = span.duration_ns;
    sourced.attributes = span.attributes;
    out.push_back(std::move(sourced));
  }
  return out;
}

std::vector<std::string> linked_traces(const std::vector<SourcedSpan>& spans) {
  std::vector<std::string> out;
  for (const SourcedSpan& span : spans) {
    const std::string linked = span.attribute("shard_trace");
    if (linked.empty() || linked == span.trace_id) continue;
    if (std::find(out.begin(), out.end(), linked) == out.end()) {
      out.push_back(linked);
    }
  }
  return out;
}

void graft_linked_traces(std::vector<SourcedSpan>& spans) {
  for (const SourcedSpan& linker : spans) {
    const std::string linked = linker.attribute("shard_trace");
    if (linked.empty() || linked == linker.trace_id) continue;
    for (SourcedSpan& candidate : spans) {
      // Only the linked trace's roots, and only in the source that
      // declared the link: the cycle trace lives in the same
      // process's buffer as the server span that served its payload.
      if (candidate.parent_uid == 0 && candidate.trace_id == linked &&
          candidate.source == linker.source) {
        candidate.parent_uid = linker.span_uid;
      }
    }
  }
}

StitchedTrace stitch(const std::vector<SourcedSpan>& spans) {
  StitchedTrace out;
  out.nodes.resize(spans.size());

  std::unordered_map<std::uint64_t, std::size_t> by_uid;
  by_uid.reserve(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    by_uid.emplace(spans[i].span_uid, i);  // first occurrence wins
  }

  // Clock alignment. Each (source, trace) group shares one rebased
  // clock; a cross-group parent edge pins the child group's clock:
  // the causing RPC (the parent span) was in flight when the remote
  // work began, so the child's start aligns to the parent's start.
  std::map<std::string, std::size_t> group_of_key;
  std::vector<std::size_t> group(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    group[i] =
        group_of_key.emplace(group_key(spans[i]), group_of_key.size())
            .first->second;
  }
  struct GroupEdge {
    std::size_t child = 0;   ///< Span index in the child group.
    std::size_t parent = 0;  ///< Span index in the parent group.
  };
  std::vector<std::vector<GroupEdge>> outgoing(group_of_key.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent_uid == 0) continue;
    const auto parent = by_uid.find(spans[i].parent_uid);
    if (parent == by_uid.end()) continue;
    if (group[parent->second] != group[i]) {
      outgoing[group[parent->second]].push_back({i, parent->second});
    }
  }
  std::vector<std::int64_t> shift(group_of_key.size(), 0);
  std::vector<bool> pinned(group_of_key.size(), false);
  // Groups never appearing as a cross-edge child anchor the timeline.
  std::vector<bool> is_child(group_of_key.size(), false);
  for (const auto& edges : outgoing) {
    for (const GroupEdge& edge : edges) is_child[group[edge.child]] = true;
  }
  std::deque<std::size_t> queue;
  for (std::size_t g = 0; g < group_of_key.size(); ++g) {
    if (!is_child[g]) {
      pinned[g] = true;
      queue.push_back(g);
    }
  }
  while (!queue.empty()) {
    const std::size_t g = queue.front();
    queue.pop_front();
    for (const GroupEdge& edge : outgoing[g]) {
      const std::size_t child_group = group[edge.child];
      if (pinned[child_group]) continue;
      shift[child_group] =
          shift[g] + static_cast<std::int64_t>(spans[edge.parent].start_ns) -
          static_cast<std::int64_t>(spans[edge.child].start_ns);
      pinned[child_group] = true;
      queue.push_back(child_group);
    }
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    out.nodes[i].span = i;
    out.nodes[i].aligned_start_ns = static_cast<std::uint64_t>(
        std::max<std::int64_t>(
            0, static_cast<std::int64_t>(spans[i].start_ns) +
                   shift[group[i]]));
  }

  // Tree edges: a resolvable parent uid is an edge, anything else is
  // a root (genuine roots and orphans alike).
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto parent = spans[i].parent_uid != 0
                            ? by_uid.find(spans[i].parent_uid)
                            : by_uid.end();
    if (parent != by_uid.end() && parent->second != i) {
      out.nodes[parent->second].children.push_back(i);
    } else {
      out.roots.push_back(i);
    }
  }
  const auto by_start = [&](std::size_t a, std::size_t b) {
    if (out.nodes[a].aligned_start_ns != out.nodes[b].aligned_start_ns) {
      return out.nodes[a].aligned_start_ns < out.nodes[b].aligned_start_ns;
    }
    return spans[a].span_uid < spans[b].span_uid;
  };
  std::sort(out.roots.begin(), out.roots.end(), by_start);
  for (StitchedNode& node : out.nodes) {
    std::sort(node.children.begin(), node.children.end(), by_start);
  }

  // Depths, iteratively (a hostile dump could chain thousands deep).
  std::deque<std::size_t> walk(out.roots.begin(), out.roots.end());
  while (!walk.empty()) {
    const std::size_t index = walk.front();
    walk.pop_front();
    for (std::size_t child : out.nodes[index].children) {
      out.nodes[child].depth = out.nodes[index].depth + 1;
      walk.push_back(child);
    }
  }
  return out;
}

namespace {

void append_flat(const std::vector<SourcedSpan>& spans,
                 const StitchedTrace& tree, std::size_t index,
                 util::JsonArray& out) {
  const SourcedSpan& span = spans[index];
  const StitchedNode& node = tree.nodes[index];
  util::JsonObject entry;
  entry.emplace("trace", span.trace_id);
  entry.emplace("name", span.name);
  entry.emplace("source", span.source);
  entry.emplace("depth", static_cast<std::int64_t>(node.depth));
  entry.emplace("span", obs::span_uid_hex(span.span_uid));
  entry.emplace("parent_span", span.parent_uid == 0
                                   ? std::string()
                                   : obs::span_uid_hex(span.parent_uid));
  entry.emplace("start_ns",
                static_cast<std::int64_t>(node.aligned_start_ns));
  entry.emplace("duration_ns", static_cast<std::int64_t>(span.duration_ns));
  if (!span.attributes.empty()) {
    util::JsonObject attributes;
    for (const auto& [key, value] : span.attributes) {
      attributes.insert_or_assign(key, value);
    }
    entry.emplace("attributes", std::move(attributes));
  }
  out.push_back(std::move(entry));
  for (std::size_t child : node.children) {
    append_flat(spans, tree, child, out);
  }
}

util::JsonValue render_node(const std::vector<SourcedSpan>& spans,
                            const StitchedTrace& tree, std::size_t index) {
  const SourcedSpan& span = spans[index];
  const StitchedNode& node = tree.nodes[index];
  util::JsonObject entry;
  entry.emplace("name", span.name);
  entry.emplace("source", span.source);
  entry.emplace("trace", span.trace_id);
  entry.emplace("span", obs::span_uid_hex(span.span_uid));
  entry.emplace("start_ns",
                static_cast<std::int64_t>(node.aligned_start_ns));
  entry.emplace("duration_ns", static_cast<std::int64_t>(span.duration_ns));
  if (!span.attributes.empty()) {
    util::JsonObject attributes;
    for (const auto& [key, value] : span.attributes) {
      attributes.insert_or_assign(key, value);
    }
    entry.emplace("attributes", std::move(attributes));
  }
  util::JsonArray children;
  for (std::size_t child : node.children) {
    children.push_back(render_node(spans, tree, child));
  }
  if (!children.empty()) entry.emplace("children", std::move(children));
  return util::JsonValue(std::move(entry));
}

}  // namespace

util::JsonValue stitched_to_json(const std::string& trace_id,
                                 const std::vector<SourcedSpan>& spans) {
  const StitchedTrace tree = stitch(spans);
  util::JsonArray flat;
  util::JsonArray roots;
  for (std::size_t root : tree.roots) {
    append_flat(spans, tree, root, flat);
    roots.push_back(render_node(spans, tree, root));
  }
  util::JsonArray sources;
  for (const SourcedSpan& span : spans) {
    bool seen = false;
    for (const util::JsonValue& existing : sources) {
      if (existing.as_string() == span.source) {
        seen = true;
        break;
      }
    }
    if (!seen) sources.push_back(span.source);
  }
  util::JsonObject out;
  out.emplace("trace", trace_id);
  out.emplace("count", static_cast<std::int64_t>(flat.size()));
  out.emplace("sources", std::move(sources));
  out.emplace("spans", std::move(flat));
  out.emplace("tree", std::move(roots));
  return out;
}

util::JsonValue to_chrome_trace(const std::vector<SourcedSpan>& spans) {
  const StitchedTrace tree = stitch(spans);
  // Stable pid per source, in first-appearance order.
  std::vector<std::string> sources;
  for (const SourcedSpan& span : spans) {
    if (std::find(sources.begin(), sources.end(), span.source) ==
        sources.end()) {
      sources.push_back(span.source);
    }
  }
  util::JsonArray events;
  for (std::size_t pid = 0; pid < sources.size(); ++pid) {
    util::JsonObject args;
    args.emplace("name", sources[pid]);
    util::JsonObject meta;
    meta.emplace("ph", "M");
    meta.emplace("name", "process_name");
    meta.emplace("pid", static_cast<std::int64_t>(pid));
    meta.emplace("tid", 0);
    meta.emplace("args", std::move(args));
    events.push_back(std::move(meta));
  }
  for (const StitchedNode& node : tree.nodes) {
    const SourcedSpan& span = spans[node.span];
    const std::size_t pid =
        static_cast<std::size_t>(std::find(sources.begin(), sources.end(),
                                           span.source) -
                                 sources.begin());
    util::JsonObject args;
    args.emplace("trace", span.trace_id);
    args.emplace("span", obs::span_uid_hex(span.span_uid));
    if (span.parent_uid != 0) {
      args.emplace("parent_span", obs::span_uid_hex(span.parent_uid));
    }
    for (const auto& [key, value] : span.attributes) {
      args.insert_or_assign(key, value);
    }
    util::JsonObject event;
    event.emplace("ph", "X");
    event.emplace("name", span.name);
    event.emplace("cat", span.source);
    event.emplace("ts", static_cast<double>(node.aligned_start_ns) / 1000.0);
    event.emplace("dur", static_cast<double>(span.duration_ns) / 1000.0);
    event.emplace("pid", static_cast<std::int64_t>(pid));
    event.emplace("tid", static_cast<std::int64_t>(node.depth));
    event.emplace("args", std::move(args));
    events.push_back(std::move(event));
  }
  util::JsonObject out;
  out.emplace("traceEvents", std::move(events));
  out.emplace("displayTimeUnit", "ms");
  return out;
}

}  // namespace iqb::fleet
