// Fault-tolerant scatter stage: fetch every shard's aggregate payload.
//
// One coordinator cycle asks every shard for its /shard/aggregate
// payload in parallel. The fetch path is where fleet robustness lives:
//
//   * deadlines — every request is bounded by obs::HttpClient's
//     connect/read/total deadlines, so a blackholed shard costs one
//     deadline, never a hang;
//   * bounded retries — robust::RetryPolicy (decorrelated jitter)
//     drives real sleeps between attempts, so a flapping shard gets a
//     second chance without a retry storm;
//   * hedging — if an attempt has not answered after hedge_delay_ms a
//     second request races it and the first answer wins, cutting the
//     tail latency a slow-but-alive shard would otherwise impose;
//   * circuit breaking — a per-shard robust::CircuitBreaker opens
//     after persistent failure so a dead shard stops consuming retry
//     and hedge budget, re-probing via half-open trials;
//   * last-good caching — a shard that fails this cycle is served
//     from its previous payload, marked stale, so its regions degrade
//     (tier demotion) instead of disappearing.
//
// Fleet metrics (when a registry is attached): fleet_shard_up{shard},
// fleet_fetch_retries_total, fleet_hedges_total,
// fleet_hedge_losses_total, fleet_fetch_failures_total{shard},
// fleet_breaker_denials_total. A hedge *loss* is an attempt whose
// answer arrived after another attempt had already won its race; the
// loser's latency is observed into the per-request histogram
// (iqb_http_request_duration_ms{code="hedge_loss"}) so the tail the
// hedge actually cut stays measurable instead of vanishing.
//
// When a Tracer is passed to fetch_all, the scatter is traced: one
// "fleet.fetch" span per shard (child of the given parent span), one
// "fleet.rpc" child per HTTP attempt tagged retry=N and hedged=
// true/false (plus hedge_loss=true on losers), and each attempt
// carries its own span in an explicit traceparent header — so shard-
// side server spans become children of the exact attempt that reached
// them. The tracer is shared because losing hedge threads may outlive
// the cycle that spawned them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "iqb/fleet/wire.hpp"
#include "iqb/obs/http_client.hpp"
#include "iqb/obs/trace.hpp"
#include "iqb/robust/circuit_breaker.hpp"
#include "iqb/robust/retry.hpp"

namespace iqb::obs {
class MetricsRegistry;
}

namespace iqb::fleet {

struct ShardEndpoint {
  std::string name;  ///< Stable label ("shard0", "eu-west", ...).
  std::string host;  ///< IPv4 dotted quad.
  std::uint16_t port = 0;

  std::string address() const { return host + ":" + std::to_string(port); }
};

/// Parse "name=host:port" or "host:port" (name defaults to
/// "shard<index>").
util::Result<ShardEndpoint> parse_shard_endpoint(const std::string& text,
                                                 std::size_t index);

/// One shard's contribution to a coordinator cycle.
struct ShardView {
  std::string name;
  /// Payload to merge: fresh from this cycle, or the cached last-good
  /// one (stale == true), or absent entirely (shard never answered).
  std::optional<ShardPayload> payload;
  bool stale = false;     ///< payload is the cached previous fetch.
  std::string error;      ///< Last failure, empty when fresh.
};

/// Live per-shard status for /readyz and /fleetz.
struct ShardStatus {
  std::string name;
  std::string address;
  bool up = false;  ///< Last cycle fetched fresh.
  robust::BreakerState breaker = robust::BreakerState::kClosed;
  std::uint64_t last_cycle = 0;          ///< Newest payload cycle seen.
  std::uint64_t consecutive_failures = 0;
  std::string last_error;
};

class FleetFetcher {
 public:
  struct Options {
    std::vector<ShardEndpoint> shards;
    obs::HttpClient::Options http;
    /// Retry budget per shard per cycle (attempts + jittered delays).
    robust::RetryPolicy retry{/*max_attempts=*/2, /*base_delay_s=*/0.05,
                              /*max_delay_s=*/0.5, /*deadline_s=*/2.0,
                              /*seed=*/17};
    robust::CircuitBreakerConfig breaker;
    /// Latency threshold before a hedged second request; 0 disables.
    std::uint64_t hedge_delay_ms = 150;
    /// Scale applied to retry delays before sleeping (tests use a
    /// small value so jitter stays decorrelated but wall time stays
    /// short).
    double retry_sleep_scale = 1.0;
    std::string path = "/shard/aggregate";
  };

  explicit FleetFetcher(Options options,
                        obs::MetricsRegistry* metrics = nullptr);
  ~FleetFetcher();  ///< Joins any still-running hedge losers.
  FleetFetcher(const FleetFetcher&) = delete;
  FleetFetcher& operator=(const FleetFetcher&) = delete;

  /// Scatter-gather one cycle: every shard fetched concurrently, each
  /// within its own deadline/retry/hedge budget. Always returns one
  /// view per configured shard, in configuration order.
  ///
  /// A non-null `tracer` traces the scatter (see file comment); the
  /// per-shard fetch spans become children of `parent_span` (pass
  /// Tracer::kNoSpan for roots). Shared ownership because hedge-losing
  /// threads may still be recording spans after this call returns.
  std::vector<ShardView> fetch_all(
      std::shared_ptr<obs::Tracer> tracer = nullptr,
      std::size_t parent_span = obs::Tracer::kNoSpan);

  /// Per-shard status after the last fetch_all (configuration order).
  std::vector<ShardStatus> status() const;

  std::uint64_t hedges_total() const noexcept { return hedges_.load(); }
  std::uint64_t hedge_losses_total() const noexcept {
    return hedge_losses_.load();
  }
  std::uint64_t retries_total() const noexcept { return retries_.load(); }
  std::uint64_t breaker_denials_total() const noexcept {
    return denials_.load();
  }

 private:
  struct ShardState {
    ShardEndpoint endpoint;
    robust::CircuitBreaker breaker;
    std::optional<ShardPayload> last_good;
    bool up = false;
    std::uint64_t consecutive_failures = 0;
    std::string last_error;
  };

  ShardView fetch_shard(ShardState& state,
                        const std::shared_ptr<obs::Tracer>& tracer,
                        std::size_t parent_span);
  ShardView fetch_shard_impl(ShardState& state,
                             const std::shared_ptr<obs::Tracer>& tracer,
                             std::size_t fetch_span);
  util::Result<obs::HttpClient::Response> hedged_get(
      const ShardEndpoint& endpoint,
      const std::shared_ptr<obs::Tracer>& tracer, std::size_t fetch_span,
      int retry_index);
  void reap_finished();

  Options options_;
  obs::MetricsRegistry* metrics_;

  mutable std::mutex mutex_;  ///< Guards shards_ (status vs scatter).
  std::vector<ShardState> shards_;

  std::atomic<std::uint64_t> hedges_{0};
  std::atomic<std::uint64_t> hedge_losses_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> denials_{0};

  // Hedge attempts that lost the race keep running until their HTTP
  // deadline; they are parked here and joined opportunistically (and
  // finally in the destructor) instead of blocking the winning cycle.
  struct ParkedThread {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex parked_mutex_;
  std::vector<ParkedThread> parked_;
};

}  // namespace iqb::fleet
