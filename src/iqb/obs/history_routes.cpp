#include "iqb/obs/history_routes.hpp"

#include "iqb/util/json.hpp"
#include "iqb/util/strings.hpp"

namespace iqb::obs {

namespace {

constexpr std::uint64_t kDefaultWindowMs = 15 * 60 * 1000;

/// A week. Anything above is almost certainly an overflowed or
/// garbage value, not a query the ring buffers could answer anyway.
constexpr std::int64_t kMaxWindowMs = 7LL * 24 * 60 * 60 * 1000;

HttpResponse disabled_response() {
  return {503, "application/json",
          "{\"reason\":\"telemetry disabled\",\"status\":\"disabled\"}\n"};
}

/// 400 with a reason body that names the offending value, so a caller
/// debugging a dashboard query sees *what* was rejected, not just that
/// something was.
HttpResponse bad_param(const std::string& reason) {
  util::JsonObject out;
  out.emplace("reason", reason);
  out.emplace("status", "error");
  return {400, "application/json",
          util::JsonValue(std::move(out)).dump() + "\n"};
}

}  // namespace

HttpResponse serve_historyz(const TimeSeriesStore* store,
                            const HttpRequest& request,
                            std::uint64_t now_ms) {
  if (store == nullptr) return disabled_response();
  const std::string series = query_param(request.query, "series");
  std::uint64_t window_ms = kDefaultWindowMs;
  if (const std::string window = query_param(request.query, "window");
      !window.empty()) {
    // Strict: full-string integer parse (rejects "1e9", "10abc" and
    // values that overflow int64), then positivity and a sane upper
    // bound — a negative or overflowed window must never reach the
    // unsigned window arithmetic below.
    const auto parsed = util::parse_int(window);
    if (!parsed.ok()) {
      return bad_param("bad window '" + window +
                       "': not a whole number of milliseconds");
    }
    if (parsed.value() <= 0) {
      return bad_param("bad window '" + window + "': must be positive");
    }
    if (parsed.value() > kMaxWindowMs) {
      return bad_param("bad window '" + window + "': exceeds " +
                       std::to_string(kMaxWindowMs) + " ms (7 days)");
    }
    window_ms = static_cast<std::uint64_t>(parsed.value());
  }
  const std::string points_param = query_param(request.query, "points");
  if (!points_param.empty() && points_param != "true" &&
      points_param != "false") {
    return bad_param("bad points '" + points_param +
                     "': expected true or false");
  }
  const bool points = points_param == "true";
  return {200, "application/json",
          store->to_json(series, window_ms, now_ms, points).dump(2) + "\n"};
}

HttpResponse serve_alertz(const SloEngine* engine, bool enabled) {
  if (!enabled) return disabled_response();
  if (engine == nullptr) {
    return {200, "application/json",
            "{\"active\":[],\"evaluations\":0,\"recent\":[],\"specs\":0}\n"};
  }
  return {200, "application/json", engine->to_json().dump(2) + "\n"};
}

}  // namespace iqb::obs
