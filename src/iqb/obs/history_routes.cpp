#include "iqb/obs/history_routes.hpp"

#include "iqb/util/strings.hpp"

namespace iqb::obs {

namespace {

constexpr std::uint64_t kDefaultWindowMs = 15 * 60 * 1000;

HttpResponse disabled_response() {
  return {503, "application/json",
          "{\"reason\":\"telemetry disabled\",\"status\":\"disabled\"}\n"};
}

}  // namespace

HttpResponse serve_historyz(const TimeSeriesStore* store,
                            const HttpRequest& request,
                            std::uint64_t now_ms) {
  if (store == nullptr) return disabled_response();
  const std::string series = query_param(request.query, "series");
  std::uint64_t window_ms = kDefaultWindowMs;
  if (const std::string window = query_param(request.query, "window");
      !window.empty()) {
    if (auto parsed = util::parse_int(window);
        parsed.ok() && parsed.value() > 0) {
      window_ms = static_cast<std::uint64_t>(parsed.value());
    } else {
      return {400, "application/json",
              "{\"reason\":\"bad window (milliseconds expected)\","
              "\"status\":\"error\"}\n"};
    }
  }
  const bool points = query_param(request.query, "points") == "true";
  return {200, "application/json",
          store->to_json(series, window_ms, now_ms, points).dump(2) + "\n"};
}

HttpResponse serve_alertz(const SloEngine* engine, bool enabled) {
  if (!enabled) return disabled_response();
  if (engine == nullptr) {
    return {200, "application/json",
            "{\"active\":[],\"evaluations\":0,\"recent\":[],\"specs\":0}\n"};
  }
  return {200, "application/json", engine->to_json().dump(2) + "\n"};
}

}  // namespace iqb::obs
