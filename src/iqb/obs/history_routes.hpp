// HTTP handlers for /historyz and /alertz, shared by the iqbd watch
// daemon and the fleet coordinator (both embed a TimeSeriesStore and
// an SloEngine and expose them through their route overrides).
#pragma once

#include <cstdint>
#include <optional>

#include "iqb/obs/history.hpp"
#include "iqb/obs/http_server.hpp"
#include "iqb/obs/slo.hpp"

namespace iqb::obs {

/// Serve /historyz: ?series= filters to one family, ?window= sets the
/// query window in milliseconds (default 15 min), ?points=true adds
/// raw [t_ms, value] pairs. `store` null means telemetry is disabled
/// (503). Bytes are deterministic for a fixed store + now_ms.
HttpResponse serve_historyz(const TimeSeriesStore* store,
                            const HttpRequest& request, std::uint64_t now_ms);

/// Serve /alertz. `engine` null (telemetry on, first cycle not yet
/// evaluated) serves an empty engine document rather than an error;
/// pass `enabled` false for the telemetry-off 503.
HttpResponse serve_alertz(const SloEngine* engine, bool enabled);

}  // namespace iqb::obs
