#include "iqb/obs/telemetry.hpp"

#include "iqb/robust/circuit_breaker.hpp"

namespace iqb::obs {

void add_counter(Telemetry* telemetry, const std::string& name,
                 const std::string& help, const LabelSet& labels,
                 double delta) {
  if (!telemetry || !telemetry->metrics) return;
  telemetry->metrics->counter(name, help, labels).inc(delta);
}

void set_gauge(Telemetry* telemetry, const std::string& name,
               const std::string& help, const LabelSet& labels, double value) {
  if (!telemetry || !telemetry->metrics) return;
  telemetry->metrics->gauge(name, help, labels).set(value);
}

void observe_histogram(Telemetry* telemetry, const std::string& name,
                       const std::string& help,
                       const std::vector<double>& upper_bounds,
                       const LabelSet& labels, double value) {
  if (!telemetry || !telemetry->metrics) return;
  telemetry->metrics->histogram(name, help, upper_bounds, labels)
      .observe(value);
}

void record_sketch_merges(Telemetry* telemetry, const std::string& sketch,
                          std::size_t merges) {
  add_counter(telemetry, "iqb_stats_sketch_merges_total",
              "Percentile-sketch merge operations", {{"sketch", sketch}},
              static_cast<double>(merges));
}

namespace {

constexpr const char* kBreakerStateHelp =
    "Circuit breaker state (1 for the current state, 0 otherwise)";

void set_state_gauges(MetricsRegistry& registry, const std::string& source,
                      robust::BreakerState current) {
  using robust::BreakerState;
  for (BreakerState state : {BreakerState::kClosed, BreakerState::kOpen,
                             BreakerState::kHalfOpen}) {
    registry
        .gauge("iqb_robust_breaker_state", kBreakerStateHelp,
               {{"source", source},
                {"state", robust::breaker_state_name(state)}})
        .set(state == current ? 1.0 : 0.0);
  }
}

}  // namespace

void wire_breaker(Telemetry* telemetry, const std::string& source,
                  robust::CircuitBreaker& breaker) {
  if (!telemetry || !telemetry->metrics) return;
  MetricsRegistry* registry = telemetry->metrics;
  // Pre-create the canonical edge so a healthy run still exports the
  // family (at 0) instead of omitting it.
  registry->counter("iqb_robust_breaker_transitions_total",
                    "Circuit breaker state transitions",
                    {{"from", "closed"}, {"source", source}, {"to", "open"}});
  set_state_gauges(*registry, source, breaker.state());
  breaker.on_state_change([registry, source](robust::BreakerState from,
                                             robust::BreakerState to) {
    registry
        ->counter("iqb_robust_breaker_transitions_total",
                  "Circuit breaker state transitions",
                  {{"from", robust::breaker_state_name(from)},
                   {"source", source},
                   {"to", robust::breaker_state_name(to)}})
        .inc();
    set_state_gauges(*registry, source, to);
  });
}

void record_breaker(Telemetry* telemetry, const std::string& source,
                    const robust::CircuitBreaker& breaker) {
  if (!telemetry || !telemetry->metrics) return;
  set_state_gauges(*telemetry->metrics, source, breaker.state());
  telemetry->metrics
      ->counter("iqb_robust_breaker_denied_total",
                "Requests denied by an open circuit breaker",
                {{"source", source}})
      .inc(static_cast<double>(breaker.denied_requests()));
}

StageTimer::StageTimer(Telemetry* telemetry, std::string stage)
    : telemetry_(telemetry),
      stage_(std::move(stage)),
      span_(telemetry ? telemetry->tracer : nullptr, stage_) {
  if (telemetry_ && telemetry_->metrics) {
    start_ns_ = telemetry_->time_source().now_ns();
  }
}

StageTimer::~StageTimer() {
  if (telemetry_ && telemetry_->metrics) {
    const std::uint64_t end_ns = telemetry_->time_source().now_ns();
    observe_histogram(telemetry_, "iqb_pipeline_stage_duration_seconds",
                      "Wall time per pipeline stage", latency_buckets_s(),
                      {{"stage", stage_}},
                      static_cast<double>(end_ns - start_ns_) * 1e-9);
  }
  span_.end();
}

}  // namespace iqb::obs
