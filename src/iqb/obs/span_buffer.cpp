#include "iqb/obs/span_buffer.hpp"

#include <algorithm>
#include <limits>

namespace iqb::obs {

std::size_t SpanRingBuffer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

void SpanRingBuffer::push(CompletedSpan span) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() == capacity_) spans_.pop_front();
  spans_.push_back(std::move(span));
}

std::size_t SpanRingBuffer::ingest(const Tracer& tracer,
                                   const std::string& trace_id) {
  const auto records = tracer.spans();
  if (records.empty()) return 0;
  std::uint64_t base_ns = std::numeric_limits<std::uint64_t>::max();
  for (const auto& record : records) {
    base_ns = std::min(base_ns, record.start_ns);
  }
  // Spans are stored in begin order, so a parent always precedes its
  // children and depths resolve in one forward pass.
  std::vector<std::size_t> depth(records.size(), 0);
  std::size_t ingested = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Tracer::SpanRecord& record = records[i];
    if (record.parent != Tracer::kNoSpan) depth[i] = depth[record.parent] + 1;
    if (!record.ended) continue;
    CompletedSpan span;
    span.trace_id = trace_id;
    span.name = record.name;
    span.depth = depth[i];
    span.span_uid = record.uid;
    span.parent_uid = record.parent_uid;
    span.start_ns = record.start_ns - base_ns;
    span.duration_ns = record.duration_ns();
    span.attributes = record.attributes;
    push(std::move(span));
    ++ingested;
  }
  return ingested;
}

std::size_t SpanRingBuffer::ingest(const Tracer& tracer) {
  return ingest(tracer, tracer.trace_id());
}

std::vector<CompletedSpan> SpanRingBuffer::recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {spans_.begin(), spans_.end()};
}

util::JsonValue tracez_to_json(const SpanRingBuffer& buffer,
                               const std::string& trace_filter) {
  const auto spans = buffer.recent();
  util::JsonArray entries;
  for (const auto& span : spans) {
    if (!trace_filter.empty() && span.trace_id != trace_filter) continue;
    util::JsonObject entry;
    entry.emplace("trace", span.trace_id);
    entry.emplace("name", span.name);
    entry.emplace("depth", static_cast<std::int64_t>(span.depth));
    entry.emplace("span", span_uid_hex(span.span_uid));
    entry.emplace("parent_span", span.parent_uid == 0
                                     ? std::string()
                                     : span_uid_hex(span.parent_uid));
    entry.emplace("start_ns", static_cast<std::int64_t>(span.start_ns));
    entry.emplace("duration_ns", static_cast<std::int64_t>(span.duration_ns));
    if (!span.attributes.empty()) {
      util::JsonObject attributes;
      for (const auto& [key, value] : span.attributes) {
        attributes.insert_or_assign(key, value);
      }
      entry.emplace("attributes", std::move(attributes));
    }
    entries.push_back(std::move(entry));
  }
  util::JsonObject out;
  out.emplace("count", static_cast<std::int64_t>(entries.size()));
  out.emplace("spans", std::move(entries));
  return out;
}

}  // namespace iqb::obs
