// Live telemetry endpoints over HttpServer.
//
// TelemetryServer owns the HTTP routing for an observable IQB
// process (the iqbd daemon, or any embedder):
//
//   GET /            text index of the endpoints below
//   GET /metrics     Prometheus text exposition (byte-stable exporter)
//   GET /metrics.json  the same registry as JSON
//   GET /healthz     200 while the process is up (liveness)
//   GET /readyz      200 after the first completed pipeline cycle;
//                    503 + JSON reason before that, or while the
//                    latest scores carry confidence tier C
//   GET /tracez      recent completed spans from the span ring buffer
//                    (?trace=<id> keeps only that trace's spans)
//   GET /requestz    recent requests from the server's access log
//   GET /scores      latest per-region IQB scores as JSON
//
// The score state is double-buffered: the producer (daemon cycle)
// builds an immutable ScoreSnapshot and publish()es it with one
// shared_ptr swap, so a scrape during an in-flight cycle serves the
// previous complete snapshot — never a torn one — and serving never
// blocks scoring.
//
// Request handling is itself instrumented into the registry:
// iqb_server_requests_total{path,status} and
// iqb_server_request_duration_seconds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "iqb/obs/http_server.hpp"
#include "iqb/obs/metrics.hpp"
#include "iqb/obs/span_buffer.hpp"
#include "iqb/util/result.hpp"

namespace iqb::obs {

/// Every path a TelemetryServer can serve (built-ins plus the fleet
/// coordinator's overrides). This is the bounded-cardinality label
/// allowlist shared by the server's own instrumentation and
/// RequestStats — paths outside it pool into "other".
const std::vector<std::string>& default_telemetry_paths();

/// Immutable result of one completed pipeline cycle, as served.
struct ScoreSnapshot {
  std::uint64_t cycle = 0;       ///< 1-based completed-cycle ordinal.
  std::string trace_id;          ///< The cycle's correlation id.
  std::string scores_json;       ///< report::to_json dump, ready to serve.
  bool tier_c = false;           ///< Any region at confidence tier C.
  std::vector<std::string> tier_c_regions;
  /// True when the snapshot was recovered from a checkpoint after a
  /// restart rather than produced by this process's own cycle. Served
  /// with `"stale":true` on /readyz and an `X-IQB-Stale: true` header
  /// on /scores until the first fresh cycle replaces it.
  bool stale = false;
  /// Serialized aggregate table the scores derive from (opaque to this
  /// layer; iqb::fleet's versioned shard payload in practice). Served
  /// verbatim on /shard/aggregate; empty = endpoint answers 503
  /// (recovered checkpoints carry scores but no table).
  std::string aggregate_json;
};

class TelemetryServer {
 public:
  /// Optional per-request hook consulted *before* the built-in routes.
  /// Returning a response serves it (instrumented like any other);
  /// returning nullopt falls through to the built-ins. Lets an
  /// embedder (the fleet coordinator) override /readyz with richer
  /// state or add endpoints without obs knowing about them.
  using RouteOverride =
      std::function<std::optional<HttpResponse>(const HttpRequest&)>;

  struct Options {
    HttpServer::Options http;
    /// Must be installed before start(); requests may hit it from any
    /// worker thread, so it must be thread-safe.
    RouteOverride route_override;
  };

  /// `metrics` and `spans` are non-owning and may each be null (the
  /// corresponding endpoints then serve an empty document). Both must
  /// outlive the server.
  TelemetryServer(Options options, MetricsRegistry* metrics,
                  SpanRingBuffer* spans);

  util::Result<void> start() { return http_.start(); }
  void stop() { http_.stop(); }
  /// Graceful: finish in-flight requests, then stop (SIGTERM drain).
  void drain() { http_.drain(); }
  bool running() const noexcept { return http_.running(); }
  std::uint16_t port() const noexcept { return http_.port(); }

  /// Swap in the latest completed cycle's snapshot. Readiness flips to
  /// true on the first publish and stays true (tier C degrades
  /// /readyz to 503 but the process keeps serving /scores).
  void publish(std::shared_ptr<const ScoreSnapshot> snapshot);

  /// Latest published snapshot (null before the first cycle).
  std::shared_ptr<const ScoreSnapshot> latest() const;

  /// True once publish() has been called.
  bool ready() const;

  /// Exposed for tests: the exact response /path would produce.
  HttpResponse handle(const HttpRequest& request);

 private:
  HttpResponse route(const HttpRequest& request) const;

  Options options_;
  MetricsRegistry* metrics_;
  SpanRingBuffer* spans_;

  mutable std::mutex snapshot_mutex_;  ///< Guards the pointer swap only.
  std::shared_ptr<const ScoreSnapshot> snapshot_;

  HttpServer http_;
};

}  // namespace iqb::obs
