#include "iqb/obs/http_client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <string_view>

#include "iqb/obs/trace.hpp"
#include "iqb/util/strings.hpp"

namespace iqb::obs {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Milliseconds until `deadline`, clamped to >= 0.
int ms_until(SteadyClock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - SteadyClock::now());
  return static_cast<int>(std::max<std::int64_t>(left.count(), 0));
}

util::Error io_error(const std::string& what) {
  return util::make_error(util::ErrorCode::kIoError,
                          what + ": " + std::strerror(errno));
}

/// RAII fd so every early return closes the socket.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

/// Wait for `events` on `fd`, bounded by both the idle timeout and
/// the total deadline. Returns false on timeout.
bool wait_ready(int fd, short events, int idle_timeout_ms,
                SteadyClock::time_point deadline) {
  for (;;) {
    const int timeout = std::min(idle_timeout_ms, ms_until(deadline));
    if (timeout <= 0) return false;
    pollfd pfd{fd, events, 0};
    const int n = ::poll(&pfd, 1, timeout);
    if (n > 0) return true;
    if (n == 0) return false;
    if (errno != EINTR) return false;
  }
}

/// RFC 7230 token-ish header name: printable ASCII, no separators that
/// would change the line's meaning. Anything else is rejected.
bool valid_header_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  for (char c : name) {
    if (c <= ' ' || c >= 127 || c == ':') return false;
  }
  return true;
}

/// Values must not contain CR or LF — a value like
/// "x\r\nHost: evil" would terminate the header early and inject an
/// attacker-controlled header (or a whole second request).
bool valid_header_value(std::string_view value) noexcept {
  return value.find('\r') == std::string_view::npos &&
         value.find('\n') == std::string_view::npos;
}

}  // namespace

std::string HttpClient::Response::header(const std::string& name) const {
  const std::string wanted = util::to_lower(name);
  for (const auto& [key, value] : headers) {
    if (key == wanted) return value;
  }
  return {};
}

util::Result<HttpClient::Response> HttpClient::get(
    const std::string& host, std::uint16_t port,
    const std::string& path) const {
  return get(host, port, path, {});
}

util::Result<HttpClient::Response> HttpClient::get(
    const std::string& host, std::uint16_t port, const std::string& path,
    const std::vector<HttpHeader>& headers) const {
  return perform("GET", host, port, path, {}, {}, headers);
}

util::Result<HttpClient::Response> HttpClient::post(
    const std::string& host, std::uint16_t port, const std::string& path,
    std::string_view body, const std::string& content_type,
    const std::vector<HttpHeader>& headers) const {
  return perform("POST", host, port, path, body, content_type, headers);
}

util::Result<HttpClient::Response> HttpClient::perform(
    const std::string& method, const std::string& host, std::uint16_t port,
    const std::string& path, std::string_view body,
    const std::string& content_type,
    const std::vector<HttpHeader>& headers) const {
  // Validate caller headers before any socket work: a bad header is a
  // caller bug, not a transport failure, and must never hit the wire.
  if (!valid_header_value(content_type)) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "content type contains CR/LF");
  }
  bool have_traceparent = false;
  std::string header_block;
  for (const auto& [name, value] : headers) {
    if (!valid_header_name(name)) {
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "invalid request header name '" + name + "'");
    }
    if (!valid_header_value(value)) {
      return util::make_error(
          util::ErrorCode::kInvalidArgument,
          "request header '" + name + "' value contains CR/LF");
    }
    if (name.size() + value.size() > options_.max_header_bytes) {
      return util::make_error(
          util::ErrorCode::kInvalidArgument,
          "request header '" + name + "' exceeds max_header_bytes (" +
              std::to_string(options_.max_header_bytes) + ")");
    }
    if (util::to_lower(name) == kTraceparentHeader) have_traceparent = true;
    header_block += name;
    header_block += ": ";
    header_block += value;
    header_block += "\r\n";
  }
  if (!have_traceparent) {
    // Ambient context propagation: a request made under an open
    // ScopedSpan carries that span as its remote parent.
    const SpanContext context = current_span_context();
    if (context.valid()) {
      header_block += kTraceparentHeader;
      header_block += ": ";
      header_block += format_traceparent(context);
      header_block += "\r\n";
    }
  }

  const auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(options_.total_deadline_ms);

  Fd sock;
  sock.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (sock.fd < 0) return io_error("socket");

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "bad host address '" + host + "'");
  }

  // Non-blocking connect so the SYN to a blackholed peer obeys the
  // connect deadline instead of the kernel's (minutes-long) default.
  const int flags = ::fcntl(sock.fd, F_GETFL, 0);
  ::fcntl(sock.fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(sock.fd, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    if (errno != EINPROGRESS) return io_error("connect " + host);
    if (!wait_ready(sock.fd, POLLOUT, options_.connect_timeout_ms, deadline)) {
      return util::make_error(util::ErrorCode::kIoError,
                              "connect " + host + ":" + std::to_string(port) +
                                  ": timed out");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    ::getsockopt(sock.fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) {
      return util::make_error(util::ErrorCode::kIoError,
                              "connect " + host + ":" + std::to_string(port) +
                                  ": " + std::strerror(err));
    }
  }

  std::string request = method + " " + path + " HTTP/1.1\r\nHost: " + host +
                        "\r\n" + header_block;
  if (method == "POST") {
    // Content-Length framing (no chunking) keeps the server's bounded
    // body read a single declared-size check.
    request += "Content-Type: " + (content_type.empty()
                                       ? std::string("application/octet-stream")
                                       : content_type) +
               "\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "Connection: close\r\n\r\n";
  request.append(body);
  std::size_t sent = 0;
  while (sent < request.size()) {
    if (!wait_ready(sock.fd, POLLOUT, options_.io_timeout_ms, deadline)) {
      return util::make_error(util::ErrorCode::kIoError, "send: timed out");
    }
    const ssize_t n = ::send(sock.fd, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return io_error("send");
    }
    sent += static_cast<std::size_t>(n);
  }

  // Read the whole response (Connection: close). Each recv is gated
  // on the idle timeout *and* the total deadline, so a dripping peer
  // cannot stretch the exchange past total_deadline_ms.
  std::string raw;
  char buffer[8192];
  bool peer_closed = false;
  std::size_t header_end = std::string::npos;
  std::optional<std::size_t> content_length;
  while (!peer_closed) {
    if (header_end != std::string::npos && content_length &&
        raw.size() >= header_end + 4 + *content_length) {
      break;  // full declared body in hand; don't wait for FIN
    }
    if (!wait_ready(sock.fd, POLLIN, options_.io_timeout_ms, deadline)) {
      return util::make_error(util::ErrorCode::kIoError,
                              header_end == std::string::npos
                                  ? "read: timed out before response headers"
                                  : "read: timed out mid-body");
    }
    const ssize_t n = ::recv(sock.fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return io_error("recv");
    }
    if (n == 0) {
      peer_closed = true;
    } else {
      raw.append(buffer, static_cast<std::size_t>(n));
      if (raw.size() > options_.max_response_bytes) {
        return util::make_error(util::ErrorCode::kIoError,
                                "response exceeds max_response_bytes");
      }
      if (header_end == std::string::npos) {
        header_end = raw.find("\r\n\r\n");
        if (header_end != std::string::npos) {
          // Parse Content-Length as soon as the head is complete so
          // the loop can stop at the declared body size.
          std::size_t pos = raw.find("\r\n") + 2;
          while (pos < header_end) {
            const std::size_t line_end = raw.find("\r\n", pos);
            const std::string_view line(raw.data() + pos, line_end - pos);
            const std::size_t colon = line.find(':');
            if (colon != std::string_view::npos &&
                util::to_lower(std::string(line.substr(0, colon))) ==
                    "content-length") {
              auto parsed = util::parse_int(util::trim(line.substr(colon + 1)));
              if (parsed.ok() && parsed.value() >= 0) {
                content_length = static_cast<std::size_t>(parsed.value());
              }
            }
            pos = line_end + 2;
          }
        }
      }
    }
  }

  if (header_end == std::string::npos) {
    return util::make_error(
        util::ErrorCode::kParseError,
        raw.empty() ? "connection closed before any response"
                    : "connection closed mid-headers (" +
                          std::to_string(raw.size()) + " bytes)");
  }
  Response response;
  if (raw.rfind("HTTP/1.", 0) != 0) {
    return util::make_error(util::ErrorCode::kParseError,
                            "malformed status line");
  }
  const std::size_t status_at = raw.find(' ');
  if (status_at == std::string::npos || status_at + 4 > header_end) {
    return util::make_error(util::ErrorCode::kParseError,
                            "malformed status line");
  }
  auto status = util::parse_int(
      std::string_view(raw.data() + status_at + 1, 3));
  if (!status.ok() || status.value() < 100 || status.value() > 599) {
    return util::make_error(util::ErrorCode::kParseError,
                            "malformed status code");
  }
  response.status = static_cast<int>(status.value());

  std::size_t pos = raw.find("\r\n") + 2;
  while (pos < header_end) {
    const std::size_t line_end = raw.find("\r\n", pos);
    const std::string_view line(raw.data() + pos, line_end - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      response.headers.emplace_back(
          util::to_lower(std::string(util::trim(line.substr(0, colon)))),
          std::string(util::trim(line.substr(colon + 1))));
    }
    pos = line_end + 2;
  }

  std::string response_body = raw.substr(header_end + 4);
  if (content_length) {
    if (response_body.size() < *content_length) {
      return util::make_error(
          util::ErrorCode::kParseError,
          "connection closed mid-body (" +
              std::to_string(response_body.size()) + " of " +
              std::to_string(*content_length) + " bytes)");
    }
    response_body.resize(*content_length);
  }
  response.body = std::move(response_body);
  return response;
}

}  // namespace iqb::obs
