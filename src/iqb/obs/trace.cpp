#include "iqb/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <random>

namespace iqb::obs {

namespace {

/// splitmix64: cheap, well-mixed 64-bit sequence from a counter.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Process-wide id source: one random_device seed, then a mixed
/// counter. Thread-safe, no lock, never zero-prone (mix64 output is
/// checked by callers where zero matters).
std::uint64_t next_process_id() {
  static const std::uint64_t seed = [] {
    std::random_device device;
    return (static_cast<std::uint64_t>(device()) << 32) ^ device();
  }();
  static std::atomic<std::uint64_t> counter{0};
  return mix64(seed + counter.fetch_add(1, std::memory_order_relaxed));
}

bool is_hex_char(char c) noexcept {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

/// Trace ids travel inside header values and log lines: keep them to
/// printable, unambiguous characters (alnum plus '-', '_', '.').
bool trace_id_safe(std::string_view id) noexcept {
  if (id.empty() || id.size() > 64) return false;
  for (char c : id) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                    (c >= 'A' && c <= 'Z') || c == '-' || c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

thread_local detail::AmbientSpan tl_ambient_span;

}  // namespace

std::string span_uid_hex(std::uint64_t uid) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[uid & 0xf];
    uid >>= 4;
  }
  return out;
}

std::optional<std::uint64_t> parse_span_uid(std::string_view hex) {
  if (hex.empty() || hex.size() > 16) return std::nullopt;
  std::uint64_t uid = 0;
  for (char c : hex) {
    if (!is_hex_char(c)) return std::nullopt;
    const std::uint64_t digit =
        c <= '9' ? static_cast<std::uint64_t>(c - '0')
                 : static_cast<std::uint64_t>((c | 0x20) - 'a' + 10);
    uid = (uid << 4) | digit;
  }
  return uid;
}

std::string generate_trace_id() { return span_uid_hex(next_process_id()); }

std::string format_traceparent(const SpanContext& context) {
  return "00-" + context.trace_id + "-" + span_uid_hex(context.span_uid) +
         "-01";
}

std::optional<SpanContext> parse_traceparent(std::string_view header) {
  // 00-<trace>-<span16hex>-<flags2hex>, anchored from the right so the
  // trace id may itself contain dashes ("iqbd-7").
  if (header.size() < 3 + 1 + 1 + 16 + 1 + 2) return std::nullopt;
  if (header.substr(0, 3) != "00-") return std::nullopt;
  const std::string_view rest = header.substr(3);
  const std::size_t flags_dash = rest.rfind('-');
  if (flags_dash == std::string_view::npos || flags_dash == 0) {
    return std::nullopt;
  }
  const std::string_view flags = rest.substr(flags_dash + 1);
  if (flags.size() != 2 || !is_hex_char(flags[0]) || !is_hex_char(flags[1])) {
    return std::nullopt;
  }
  const std::size_t span_dash = rest.rfind('-', flags_dash - 1);
  if (span_dash == std::string_view::npos) return std::nullopt;
  const std::string_view span_hex =
      rest.substr(span_dash + 1, flags_dash - span_dash - 1);
  if (span_hex.size() != 16) return std::nullopt;
  const auto span_uid = parse_span_uid(span_hex);
  if (!span_uid || *span_uid == 0) return std::nullopt;
  const std::string_view trace = rest.substr(0, span_dash);
  if (!trace_id_safe(trace)) return std::nullopt;
  SpanContext context;
  context.trace_id = std::string(trace);
  context.span_uid = *span_uid;
  return context;
}

Tracer::Tracer(Clock* clock)
    : clock_(clock ? clock : &steady_clock()) {
  // A fresh random base per tracer keeps uids fleet-unique without
  // coordination; zero is reserved for "no span", so nudge off it.
  uid_base_ = next_process_id();
  if (uid_base_ == 0) uid_base_ = 1;
}

void Tracer::set_trace_id(std::string trace_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_id_ = std::move(trace_id);
}

std::string Tracer::trace_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trace_id_;
}

void Tracer::set_span_uid_base(std::uint64_t base) {
  std::lock_guard<std::mutex> lock(mutex_);
  uid_base_ = base;
}

void Tracer::set_remote_parent(std::uint64_t parent_uid) {
  std::lock_guard<std::mutex> lock(mutex_);
  remote_parent_uid_ = parent_uid;
}

std::size_t Tracer::begin_span_locked(std::string name, std::size_t parent,
                                      bool push_open) {
  SpanRecord span;
  span.name = std::move(name);
  span.parent = parent;
  span.uid = uid_base_ + spans_.size() + 1;
  span.parent_uid = parent != kNoSpan && parent < spans_.size()
                        ? spans_[parent].uid
                        : remote_parent_uid_;
  span.start_ns = clock_->now_ns();
  const std::size_t id = spans_.size();
  spans_.push_back(std::move(span));
  if (push_open) open_stack_.push_back(id);
  return id;
}

std::size_t Tracer::begin_span(std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t parent = open_stack_.empty() ? kNoSpan : open_stack_.back();
  return begin_span_locked(std::move(name), parent, /*push_open=*/true);
}

std::size_t Tracer::begin_span_at(std::string name, std::size_t parent) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (parent != kNoSpan && parent >= spans_.size()) parent = kNoSpan;
  // Explicit-parent spans belong to other threads' control flow; they
  // never join this thread's open stack, so concurrent begin_span
  // calls on the owning thread keep their implicit nesting.
  return begin_span_locked(std::move(name), parent, /*push_open=*/false);
}

void Tracer::end_span(std::size_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= spans_.size() || spans_[id].ended) return;
  spans_[id].end_ns = clock_->now_ns();
  spans_[id].ended = true;
  // Usually the innermost span ends first; tolerate out-of-order ends
  // by removing the id wherever it sits in the open stack.
  auto it = std::find(open_stack_.rbegin(), open_stack_.rend(), id);
  if (it != open_stack_.rend()) {
    open_stack_.erase(std::next(it).base());
  }
}

void Tracer::set_attribute(std::size_t id, const std::string& key,
                           std::string value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= spans_.size()) return;
  spans_[id].attributes.emplace_back(key, std::move(value));
}

std::uint64_t Tracer::uid(std::size_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= spans_.size()) return 0;
  return spans_[id].uid;
}

std::vector<Tracer::SpanRecord> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

namespace detail {

AmbientSpan exchange_ambient_span(AmbientSpan next) noexcept {
  const AmbientSpan previous = tl_ambient_span;
  tl_ambient_span = next;
  return previous;
}

AmbientSpan ambient_span() noexcept { return tl_ambient_span; }

}  // namespace detail

SpanContext current_span_context() {
  const detail::AmbientSpan ambient = detail::ambient_span();
  if (!ambient.tracer || ambient.id == Tracer::kNoSpan) return {};
  SpanContext context;
  context.trace_id = ambient.tracer->trace_id();
  if (context.trace_id.empty()) context.trace_id = util::log_trace_id();
  context.span_uid = ambient.tracer->uid(ambient.id);
  return context;
}

void annotate_current_span(const std::string& key, std::string value) {
  const detail::AmbientSpan ambient = detail::ambient_span();
  if (!ambient.tracer || ambient.id == Tracer::kNoSpan) return;
  ambient.tracer->set_attribute(ambient.id, key, std::move(value));
}

}  // namespace iqb::obs
