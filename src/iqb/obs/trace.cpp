#include "iqb/obs/trace.hpp"

#include <algorithm>

namespace iqb::obs {

std::size_t Tracer::begin_span(std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  SpanRecord span;
  span.name = std::move(name);
  span.parent = open_stack_.empty() ? kNoSpan : open_stack_.back();
  span.start_ns = clock_->now_ns();
  const std::size_t id = spans_.size();
  spans_.push_back(std::move(span));
  open_stack_.push_back(id);
  return id;
}

void Tracer::end_span(std::size_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= spans_.size() || spans_[id].ended) return;
  spans_[id].end_ns = clock_->now_ns();
  spans_[id].ended = true;
  // Usually the innermost span ends first; tolerate out-of-order ends
  // by removing the id wherever it sits in the open stack.
  auto it = std::find(open_stack_.rbegin(), open_stack_.rend(), id);
  if (it != open_stack_.rend()) {
    open_stack_.erase(std::next(it).base());
  }
}

void Tracer::set_attribute(std::size_t id, const std::string& key,
                           std::string value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= spans_.size()) return;
  spans_[id].attributes.emplace_back(key, std::move(value));
}

std::vector<Tracer::SpanRecord> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

}  // namespace iqb::obs
