// Telemetry handle threaded through the run path.
//
// Instrumented seams (Pipeline::run, datasets::load_records, the
// importers, aggregation) take an optional `Telemetry*`; null means
// "telemetry off" and every helper below is a no-op, so a run without
// --metrics-out is bit-identical to an uninstrumented one. The struct
// is a plain bundle of non-owning pointers — callers own the registry
// / tracer / clock and decide what to export.
//
// Metric names follow `iqb_<layer>_<name>_<unit>` (DESIGN.md §8).
#pragma once

#include <cstddef>
#include <string>

#include "iqb/obs/clock.hpp"
#include "iqb/obs/metrics.hpp"
#include "iqb/obs/trace.hpp"

namespace iqb::robust {
class CircuitBreaker;
}

namespace iqb::obs {

struct Telemetry {
  MetricsRegistry* metrics = nullptr;  ///< May be null: no metrics.
  Tracer* tracer = nullptr;            ///< May be null: no spans.
  /// Clock for duration *metrics*. When null, falls back to the
  /// tracer's clock (if any), else the process steady clock — so a
  /// test that injects a ManualClock into the tracer gets
  /// deterministic stage-duration histograms for free.
  Clock* clock = nullptr;
  /// Correlation id for this run/cycle (empty: none). Pipeline::run
  /// installs it as the emitting thread's log trace id for the run's
  /// duration and stamps it onto the root span, so log records and
  /// exported spans both name the cycle that produced them.
  std::string trace_id;

  Clock& time_source() const noexcept {
    if (clock) return *clock;
    if (tracer) return tracer->clock();
    return steady_clock();
  }
};

/// The no-op-when-null convenience layer. `telemetry` (and its
/// `metrics` member) may be null in every call.
void add_counter(Telemetry* telemetry, const std::string& name,
                 const std::string& help, const LabelSet& labels = {},
                 double delta = 1.0);
void set_gauge(Telemetry* telemetry, const std::string& name,
               const std::string& help, const LabelSet& labels, double value);
void observe_histogram(Telemetry* telemetry, const std::string& name,
                       const std::string& help,
                       const std::vector<double>& upper_bounds,
                       const LabelSet& labels, double value);

/// Percentile-sketch merge accounting:
/// iqb_stats_sketch_merges_total{sketch=...} += merges.
void record_sketch_merges(Telemetry* telemetry, const std::string& sketch,
                          std::size_t merges);

/// Wire a circuit breaker into the registry: state transitions become
/// iqb_robust_breaker_transitions_total{source,from,to} (the
/// closed->open edge is pre-created at 0 so the family is always
/// present in exports), and the current state is mirrored into the
/// iqb_robust_breaker_state{source,state} 0/1 gauges. Overwrites any
/// callback already set on the breaker. No-op without metrics.
void wire_breaker(Telemetry* telemetry, const std::string& source,
                  robust::CircuitBreaker& breaker);

/// Final breaker accounting for a run: state gauges plus
/// iqb_robust_breaker_denied_total{source}.
void record_breaker(Telemetry* telemetry, const std::string& source,
                    const robust::CircuitBreaker& breaker);

/// RAII stage timer: opens a span named after the stage and, on
/// destruction, observes the elapsed time (from Telemetry's time
/// source) into iqb_pipeline_stage_duration_seconds{stage=...}.
class StageTimer {
 public:
  StageTimer(Telemetry* telemetry, std::string stage);
  ~StageTimer();
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  std::size_t span_id() const noexcept { return span_.id(); }

 private:
  Telemetry* telemetry_;
  std::string stage_;
  ScopedSpan span_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace iqb::obs
