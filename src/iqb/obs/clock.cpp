#include "iqb/obs/clock.hpp"

#include <chrono>

namespace iqb::obs {

namespace {

class SteadyClock final : public Clock {
 public:
  std::uint64_t now_ns() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

}  // namespace

Clock& steady_clock() {
  static SteadyClock instance;
  return instance;
}

}  // namespace iqb::obs
