// Minimal dependency-free blocking HTTP/1.1 client.
//
// The fleet coordinator scatter-gathers shard daemons over localhost/
// LAN HTTP; nothing in that path needs TLS, redirects, keep-alive or
// chunked encoding, so — symmetric with obs::HttpServer — we implement
// exactly the subset the fleet speaks: one request per connection
// (GET, or a Content-Length POST for checkpoint replication),
// `Connection: close`, Content-Length or read-to-EOF bodies.
//
// What it *does* take seriously is time. Every call is bounded three
// ways: a connect deadline (dead host / blackholed SYN), a per-read
// idle deadline (a peer that accepted and went silent, or is dripping
// a byte a second — the slowloris shape), and a total deadline that
// caps the whole exchange no matter how the peer misbehaves. A well-
// behaved fetch returns quickly; a misbehaving one returns an error
// within total_deadline_ms, never hangs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "iqb/util/result.hpp"

namespace iqb::obs {

/// One outbound request header (name, value). Names and values are
/// validated client-side before they touch the wire: a name must be a
/// printable token (no spaces, colons or control bytes), a value must
/// be CR/LF-free, and each header is size-bounded — so a caller-
/// supplied string can never smuggle an extra header (or a second
/// request) into the stream.
using HttpHeader = std::pair<std::string, std::string>;

class HttpClient {
 public:
  struct Options {
    int connect_timeout_ms = 1000;  ///< TCP connect bound.
    int io_timeout_ms = 2000;       ///< Per-read/-write idle bound.
    /// Whole-exchange bound (connect + send + read). A dripping peer
    /// keeps resetting the idle clock; this one it cannot reset.
    int total_deadline_ms = 5000;
    /// Response size bound (status line + headers + body); a peer
    /// streaming more gets an error, not an unbounded buffer.
    std::size_t max_response_bytes = 64 * 1024 * 1024;
    /// Per-request-header bound (name + value bytes); an oversized
    /// caller header is rejected client-side with kInvalidArgument.
    std::size_t max_header_bytes = 4 * 1024;
  };

  struct Response {
    int status = 0;
    std::string body;
    /// Response headers in arrival order (names lowercased).
    std::vector<std::pair<std::string, std::string>> headers;

    /// First value of a header (name lowercase), or empty.
    std::string header(const std::string& name) const;
  };

  HttpClient() = default;
  explicit HttpClient(Options options) : options_(options) {}

  const Options& options() const noexcept { return options_; }

  /// Blocking GET http://host:port/path. Any transport failure —
  /// refused, reset, timed out, oversized, malformed — is a
  /// kIoError/kParseError Result; HTTP error statuses (4xx/5xx) are
  /// *successful* fetches and come back as Response::status for the
  /// caller to interpret.
  util::Result<Response> get(const std::string& host, std::uint16_t port,
                             const std::string& path) const;

  /// As above with extra request headers. Malformed headers (empty or
  /// non-token name, CR/LF anywhere, name+value over max_header_bytes)
  /// fail with kInvalidArgument before any connection is made. Unless
  /// the caller supplied one, a `traceparent` header carrying the
  /// calling thread's active span context (current_span_context) is
  /// injected automatically, so every request made under a ScopedSpan
  /// propagates its trace to the server.
  util::Result<Response> get(const std::string& host, std::uint16_t port,
                             const std::string& path,
                             const std::vector<HttpHeader>& headers) const;

  /// Blocking POST of `body` (Content-Length framed, no chunking) with
  /// the given Content-Type. Same deadlines, header validation and
  /// traceparent injection as get(); same Result semantics (4xx/5xx
  /// are successful exchanges). This is the replication upload path:
  /// a shard pushing a checkpoint frame to a peer's /checkpointz.
  util::Result<Response> post(const std::string& host, std::uint16_t port,
                              const std::string& path, std::string_view body,
                              const std::string& content_type,
                              const std::vector<HttpHeader>& headers = {}) const;

 private:
  util::Result<Response> perform(const std::string& method,
                                 const std::string& host, std::uint16_t port,
                                 const std::string& path,
                                 std::string_view body,
                                 const std::string& content_type,
                                 const std::vector<HttpHeader>& headers) const;

  Options options_;
};

}  // namespace iqb::obs
