// Thread-safe metrics registry: counters, gauges, fixed-bucket
// histograms, all labeled.
//
// A MetricsRegistry owns families of time series keyed by metric name
// plus a sorted label set ({region=..., dataset=..., stage=...}).
// Handles returned by counter()/gauge()/histogram() are stable for
// the registry's lifetime and safe to update from any thread; the
// registry itself hands out handles and takes snapshots under a
// mutex, so instrumented code pays one map lookup per handle fetch
// and lock-free atomics per update.
//
// Naming follows Prometheus conventions, scoped as
// `iqb_<layer>_<name>_<unit>` (see DESIGN.md §8); exporters in
// export.hpp turn a snapshot into Prometheus exposition text or JSON.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace iqb::obs {

/// Sorted key -> value labels; map keeps snapshots and exports
/// deterministic.
using LabelSet = std::map<std::string, std::string>;

enum class MetricKind { kCounter, kGauge, kHistogram };

namespace detail {
/// fetch_add for doubles without requiring atomic<double>::fetch_add.
inline void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonically increasing value. inc() with a negative delta is a
/// caller bug (asserted in debug, ignored in release).
class Counter {
 public:
  void inc(double delta = 1.0) noexcept {
    if (delta < 0.0) return;
    detail::atomic_add(value_, delta);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<double> value_{0.0};
};

/// Value that can move in both directions.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(double delta) noexcept { detail::atomic_add(value_, delta); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations
/// <= upper_bounds[i] and > upper_bounds[i-1]; one implicit overflow
/// bucket catches the rest (the Prometheus "+Inf" bucket).
class Histogram {
 public:
  void observe(double value) noexcept;

  const std::vector<double>& upper_bounds() const noexcept { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size = bounds + 1 (overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  /// Cumulative counts as Prometheus exports them; the last element is
  /// the +Inf bucket. Monotone non-decreasing by construction, even
  /// when read concurrently with observe() calls.
  std::vector<std::uint64_t> cumulative_counts() const;
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  /// Invariant check for a quiescent histogram: the +Inf cumulative
  /// count equals count(). Under concurrent observes the two reads may
  /// legitimately straddle an update, so only call this when no
  /// observe() is in flight.
  bool consistent() const {
    const auto cumulative = cumulative_counts();
    return cumulative.back() == count();
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> upper_bounds);

  std::vector<double> bounds_;  ///< Sorted ascending.
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

/// Default duration buckets (seconds): microseconds to tens of
/// seconds, the range an IQB run's stages actually span.
const std::vector<double>& latency_buckets_s();

/// Default size/count buckets: powers of ten, 1 .. 1e7.
const std::vector<double>& size_buckets();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Fetch-or-create a series. The first call for a name fixes the
  /// family's kind and help text; a later call with the same name but
  /// a different kind is a caller bug (asserted in debug; in release
  /// the handle still works but its series is never exported).
  Counter& counter(const std::string& name, const std::string& help,
                   const LabelSet& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const LabelSet& labels = {});
  /// `upper_bounds` must be sorted ascending; the family's first call
  /// fixes the bounds for every series in it.
  Histogram& histogram(const std::string& name, const std::string& help,
                       const std::vector<double>& upper_bounds,
                       const LabelSet& labels = {});

  /// Point-in-time copy, families sorted by name, series by labels.
  struct Sample {
    LabelSet labels;
    double value = 0.0;
  };
  struct HistogramSample {
    LabelSet labels;
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> counts;  ///< Non-cumulative, + overflow.
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  struct Family {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::vector<Sample> samples;               ///< Counters / gauges.
    std::vector<HistogramSample> histograms;   ///< Histograms.
  };
  std::vector<Family> snapshot() const;

  /// Total number of registered series across all families.
  std::size_t series_count() const;

 private:
  struct FamilyStorage {
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::map<LabelSet, std::unique_ptr<Counter>> counters;
    std::map<LabelSet, std::unique_ptr<Gauge>> gauges;
    std::map<LabelSet, std::unique_ptr<Histogram>> histograms;
  };

  FamilyStorage& family(const std::string& name, const std::string& help,
                        MetricKind kind);

  mutable std::mutex mutex_;
  std::map<std::string, FamilyStorage> families_;
};

}  // namespace iqb::obs
