// Lightweight per-run tracing: named spans forming a tree.
//
// A Tracer records spans (name, start/end timestamps from an injected
// Clock, string attributes) and keeps an implicit stack of open spans:
// a span begun while another is open becomes its child. That matches
// the pipeline's single-threaded run path (ingest -> aggregate ->
// score -> render, one child per region) and keeps instrumentation to
// one ScopedSpan line per stage. Timestamps come exclusively from the
// Clock, so tests injecting a ManualClock get byte-stable traces.
//
// Spans are stored flat with parent indices; export.hpp rebuilds the
// tree for the JSON dump.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "iqb/obs/clock.hpp"
#include "iqb/util/log.hpp"

namespace iqb::obs {

class Tracer {
 public:
  /// Sentinel span id: "no span" / "no parent".
  static constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

  /// `clock` may be null (falls back to the process steady clock).
  /// The clock must outlive the tracer.
  explicit Tracer(Clock* clock = nullptr)
      : clock_(clock ? clock : &steady_clock()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  Clock& clock() const noexcept { return *clock_; }

  /// Open a span. Its parent is the innermost span still open at this
  /// moment (kNoSpan for a root). Returns the span's id.
  std::size_t begin_span(std::string name);

  /// Close a span; no-op if already closed or id is kNoSpan.
  void end_span(std::size_t id);

  /// Attach/overwrite a string attribute; no-op for kNoSpan.
  void set_attribute(std::size_t id, const std::string& key,
                     std::string value);

  struct SpanRecord {
    std::string name;
    std::size_t parent = kNoSpan;
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
    bool ended = false;
    /// Insertion-ordered key/value pairs (later set wins on export).
    std::vector<std::pair<std::string, std::string>> attributes;

    std::uint64_t duration_ns() const noexcept {
      return ended ? end_ns - start_ns : 0;
    }
  };

  /// Copy of every span recorded so far, in begin order.
  std::vector<SpanRecord> spans() const;
  std::size_t span_count() const;

 private:
  mutable std::mutex mutex_;
  Clock* clock_;
  std::vector<SpanRecord> spans_;
  std::vector<std::size_t> open_stack_;
};

/// RAII span. A null tracer makes every operation a no-op, which is
/// how instrumented code stays zero-cost when telemetry is off.
///
/// While open, the span installs its id as the thread's log-context
/// span (util::set_log_span), so every IQB_LOG line emitted inside an
/// instrumented stage carries "span=N" for trace correlation; end()
/// restores the enclosing span's id.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name)
      : tracer_(tracer),
        id_(tracer ? tracer->begin_span(std::move(name)) : Tracer::kNoSpan),
        previous_log_span_(id_ != Tracer::kNoSpan ? util::set_log_span(id_)
                                                  : util::log_span()) {}
  ~ScopedSpan() { end(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Close early (idempotent).
  void end() {
    if (tracer_ && id_ != Tracer::kNoSpan) {
      tracer_->end_span(id_);
      util::set_log_span(previous_log_span_);
      id_ = Tracer::kNoSpan;
    }
  }

  void set_attribute(const std::string& key, std::string value) {
    if (tracer_) tracer_->set_attribute(id_, key, std::move(value));
  }

  std::size_t id() const noexcept { return id_; }

 private:
  Tracer* tracer_;
  std::size_t id_;
  std::size_t previous_log_span_;
};

}  // namespace iqb::obs
