// Lightweight per-run tracing: named spans forming a tree, with
// cross-process context propagation.
//
// A Tracer records spans (name, start/end timestamps from an injected
// Clock, string attributes) and keeps an implicit stack of open spans:
// a span begun while another is open becomes its child. That matches
// the pipeline's single-threaded run path (ingest -> aggregate ->
// score -> render, one child per region) and keeps instrumentation to
// one ScopedSpan line per stage. Timestamps come exclusively from the
// Clock, so tests injecting a ManualClock get byte-stable traces.
//
// Beyond the local indices (parent links inside one Tracer), every
// span also carries a 64-bit *uid* that is unique across the fleet
// with overwhelming probability (uid = random per-tracer base + local
// index; tests pin the base for determinism). Uids are what crosses
// process boundaries: a traceparent-style header
//
//   00-<trace-id>-<16 hex span uid>-01
//
// names the caller's trace and active span; obs::HttpClient injects
// it on outbound requests and obs::HttpServer extracts it, running the
// handler under a server span whose parent_uid is the remote span. The
// trace id is the fleet's human-readable cycle id ("iqbd-7",
// "iqbc-3") or an auto-generated 64-bit hex id — the parse is
// right-anchored so trace ids may contain dashes.
//
// Spans are stored flat with parent indices; export.hpp rebuilds the
// tree for the JSON dump, and span_buffer.hpp folds completed spans
// (uids included) into the /tracez ring buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "iqb/obs/clock.hpp"
#include "iqb/util/log.hpp"

namespace iqb::obs {

/// A (trace id, span uid) pair as it crosses a process boundary.
struct SpanContext {
  std::string trace_id;       ///< Empty: no trace.
  std::uint64_t span_uid = 0; ///< 0: no span.

  bool valid() const noexcept { return !trace_id.empty() && span_uid != 0; }
};

/// 16 lowercase hex chars, zero padded ("00000000000004d2").
std::string span_uid_hex(std::uint64_t uid);

/// Parse a 1..16-char hex span uid; nullopt on malformed input.
std::optional<std::uint64_t> parse_span_uid(std::string_view hex);

/// Fresh 16-hex-char trace id from a process-wide seeded generator.
/// Collision-safe across threads and (probabilistically) processes.
std::string generate_trace_id();

/// Header name the context travels in ("traceparent").
inline constexpr const char* kTraceparentHeader = "traceparent";

/// "00-<trace-id>-<16 hex span uid>-01". `context` must be valid().
std::string format_traceparent(const SpanContext& context);

/// Parse a traceparent-style header value. The parse is right-anchored
/// — the last two dash-separated tokens are the flags and the span uid
/// — so trace ids containing dashes ("iqbd-7") round-trip. Returns
/// nullopt for anything malformed (wrong version, bad hex, zero span,
/// unsafe trace-id characters).
std::optional<SpanContext> parse_traceparent(std::string_view header);

class Tracer {
 public:
  /// Sentinel span id: "no span" / "no parent".
  static constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

  /// `clock` may be null (falls back to the process steady clock).
  /// The clock must outlive the tracer. Every tracer draws a random
  /// span-uid base so uids from different tracers (and processes)
  /// don't collide; tests pin it with set_span_uid_base.
  explicit Tracer(Clock* clock = nullptr);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  Clock& clock() const noexcept { return *clock_; }

  /// The trace this tracer's spans belong to. Set once per cycle /
  /// request before spans begin; empty until then.
  void set_trace_id(std::string trace_id);
  std::string trace_id() const;

  /// Pin the span-uid base (uid = base + local index + 1) so tests get
  /// deterministic uids. Call before the first begin_span.
  void set_span_uid_base(std::uint64_t base);

  /// Remote parent uid adopted by spans begun with no local parent
  /// (the server-side half of context propagation). 0 clears it.
  void set_remote_parent(std::uint64_t parent_uid);

  /// Open a span. Its parent is the innermost span still open at this
  /// moment (kNoSpan for a root). Returns the span's id.
  std::size_t begin_span(std::string name);

  /// Open a span under an explicit parent, without consulting or
  /// touching the open-span stack. This is how work fanned out to
  /// other threads (shard fetches, hedged attempts) records children
  /// of the coordinating span: thread-local stacks don't cross
  /// threads, explicit parents do. `parent` may be kNoSpan (root).
  std::size_t begin_span_at(std::string name, std::size_t parent);

  /// Close a span; no-op if already closed or id is kNoSpan.
  void end_span(std::size_t id);

  /// Attach/overwrite a string attribute; no-op for kNoSpan.
  void set_attribute(std::size_t id, const std::string& key,
                     std::string value);

  /// Fleet-unique 64-bit uid of a span (0 for kNoSpan / out of range).
  std::uint64_t uid(std::size_t id) const;

  struct SpanRecord {
    std::string name;
    std::size_t parent = kNoSpan;
    std::uint64_t uid = 0;         ///< Fleet-unique span id.
    std::uint64_t parent_uid = 0;  ///< Parent's uid; 0 for a root
                                   ///< (or the remote parent's uid).
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
    bool ended = false;
    /// Insertion-ordered key/value pairs (later set wins on export).
    std::vector<std::pair<std::string, std::string>> attributes;

    std::uint64_t duration_ns() const noexcept {
      return ended ? end_ns - start_ns : 0;
    }
  };

  /// Copy of every span recorded so far, in begin order.
  std::vector<SpanRecord> spans() const;
  std::size_t span_count() const;

 private:
  std::size_t begin_span_locked(std::string name, std::size_t parent,
                                bool push_open);

  mutable std::mutex mutex_;
  Clock* clock_;
  std::string trace_id_;
  std::uint64_t uid_base_ = 0;
  std::uint64_t remote_parent_uid_ = 0;
  std::vector<SpanRecord> spans_;
  std::vector<std::size_t> open_stack_;
};

namespace detail {
/// Thread-local innermost open ScopedSpan, for ambient propagation.
struct AmbientSpan {
  Tracer* tracer = nullptr;
  std::size_t id = Tracer::kNoSpan;
};
/// Install `next` as this thread's ambient span; returns the previous.
AmbientSpan exchange_ambient_span(AmbientSpan next) noexcept;
AmbientSpan ambient_span() noexcept;
}  // namespace detail

/// The calling thread's active span as a propagation context:
/// {tracer's trace id (falling back to the thread's log trace id),
/// innermost ScopedSpan uid}. Invalid when no instrumented span is
/// open — callers (HttpClient) then simply don't inject a header.
SpanContext current_span_context();

/// Attach an attribute to the calling thread's innermost open
/// ScopedSpan; no-op when none is open. Lets deep code (a telemetry
/// route handler) tag the enclosing server span without plumbing the
/// tracer through every signature.
void annotate_current_span(const std::string& key, std::string value);

/// RAII span. A null tracer makes every operation a no-op, which is
/// how instrumented code stays zero-cost when telemetry is off.
///
/// While open, the span installs its id as the thread's log-context
/// span (util::set_log_span), so every IQB_LOG line emitted inside an
/// instrumented stage carries "span=N" for trace correlation, and as
/// the thread's ambient span (current_span_context), so outbound HTTP
/// calls inherit it; end() restores the enclosing span's context.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name)
      : tracer_(tracer),
        id_(tracer ? tracer->begin_span(std::move(name)) : Tracer::kNoSpan),
        previous_log_span_(id_ != Tracer::kNoSpan ? util::set_log_span(id_)
                                                  : util::log_span()),
        previous_ambient_(id_ != Tracer::kNoSpan
                              ? detail::exchange_ambient_span({tracer_, id_})
                              : detail::ambient_span()) {}
  ~ScopedSpan() { end(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Close early (idempotent).
  void end() {
    if (tracer_ && id_ != Tracer::kNoSpan) {
      tracer_->end_span(id_);
      util::set_log_span(previous_log_span_);
      detail::exchange_ambient_span(previous_ambient_);
      id_ = Tracer::kNoSpan;
    }
  }

  void set_attribute(const std::string& key, std::string value) {
    if (tracer_) tracer_->set_attribute(id_, key, std::move(value));
  }

  std::size_t id() const noexcept { return id_; }

 private:
  Tracer* tracer_;
  std::size_t id_;
  std::size_t previous_log_span_;
  detail::AmbientSpan previous_ambient_;
};

}  // namespace iqb::obs
