#include "iqb/obs/request_stats.hpp"

#include <algorithm>

#include "iqb/obs/metrics.hpp"
#include "iqb/util/log.hpp"
#include "iqb/util/strings.hpp"

namespace iqb::obs {

namespace {

/// Pool label for paths outside known_paths, so an attacker probing
/// random URLs can't mint unbounded metric series.
const std::string kOtherPath = "other";

std::string status_class(int status) {
  if (status >= 100 && status <= 599) {
    return std::to_string(status / 100) + "xx";
  }
  return "invalid";
}

}  // namespace

const std::vector<double>& request_duration_buckets_ms() {
  static const std::vector<double> buckets = {
      0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
      500.0, 1000.0, 2500.0, 5000.0, 10000.0};
  return buckets;
}

RequestStats::RequestStats(Options options) : options_(std::move(options)) {
  if (options_.access_log_capacity == 0) options_.access_log_capacity = 1;
}

const std::string& RequestStats::path_label(const std::string& path) const {
  const auto& known = options_.known_paths;
  // The HTTP parser splits the query off before records reach us, but
  // a caller-recorded path with one intact must still label as its
  // known endpoint, not leak into the "other" pool.
  const std::size_t query = path.find('?');
  if (query != std::string::npos) {
    const std::string stripped = path.substr(0, query);
    const auto it = std::find(known.begin(), known.end(), stripped);
    return it != known.end() ? *it : kOtherPath;
  }
  const auto it = std::find(known.begin(), known.end(), path);
  return it != known.end() ? *it : kOtherPath;
}

void RequestStats::record(const Record& record) {
  if (options_.metrics != nullptr) {
    const std::string& path = path_label(record.path);
    options_.metrics
        ->counter("iqb_http_requests_total", "HTTP requests handled",
                  {{"path", path}})
        .inc();
    options_.metrics
        ->counter("iqb_http_responses_total",
                  "HTTP responses by status class",
                  {{"class", status_class(record.status)}})
        .inc();
    options_.metrics
        ->histogram("iqb_http_request_duration_ms",
                    "HTTP request wall time in milliseconds",
                    request_duration_buckets_ms(),
                    {{"code", std::to_string(record.status)}, {"path", path}})
        .observe(record.duration_ms);
  }
  const bool slow = options_.slow_request_ms > 0 &&
                    record.duration_ms >=
                        static_cast<double>(options_.slow_request_ms);
  if (slow) {
    if (options_.metrics != nullptr) {
      options_.metrics
          ->counter("iqb_http_slow_requests_total",
                    "HTTP requests at or over the slow threshold",
                    {{"path", path_label(record.path)}})
          .inc();
    }
    // The WARN line carries the trace id so the offender's full span
    // tree is one /tracez?trace=<id> away.
    IQB_LOG(kWarn) << "slow request " << record.method << " " << record.path
                   << " status=" << record.status << " duration_ms="
                   << util::format_fixed(record.duration_ms, 3)
                   << " peer=" << record.peer << " trace="
                   << (record.trace_id.empty() ? "-" : record.trace_id);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  if (slow) ++slow_total_;
  if (log_.size() == options_.access_log_capacity) log_.pop_front();
  log_.push_back(record);
}

std::uint64_t RequestStats::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t RequestStats::slow_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slow_total_;
}

std::vector<RequestStats::Record> RequestStats::recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {log_.begin(), log_.end()};
}

util::JsonValue RequestStats::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  util::JsonArray requests;
  for (const auto& record : log_) {
    util::JsonObject entry;
    entry.emplace("trace", record.trace_id);
    entry.emplace("peer", record.peer);
    entry.emplace("method", record.method);
    entry.emplace("path", record.path);
    entry.emplace("status", static_cast<std::int64_t>(record.status));
    entry.emplace("bytes", static_cast<std::int64_t>(record.bytes));
    entry.emplace("duration_ms", record.duration_ms);
    requests.push_back(std::move(entry));
  }
  util::JsonObject out;
  out.emplace("count", static_cast<std::int64_t>(total_));
  out.emplace("slow_count", static_cast<std::int64_t>(slow_total_));
  out.emplace("capacity",
              static_cast<std::int64_t>(options_.access_log_capacity));
  out.emplace("slow_request_ms",
              static_cast<std::int64_t>(options_.slow_request_ms));
  out.emplace("requests", std::move(requests));
  return out;
}

}  // namespace iqb::obs
