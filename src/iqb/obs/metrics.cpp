#include "iqb/obs/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace iqb::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         "histogram bounds must be sorted ascending");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, value);
  count_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<std::uint64_t> Histogram::cumulative_counts() const {
  std::vector<std::uint64_t> counts = bucket_counts();
  for (std::size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];
  return counts;
}

const std::vector<double>& latency_buckets_s() {
  static const std::vector<double> buckets = {
      1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0};
  return buckets;
}

const std::vector<double>& size_buckets() {
  static const std::vector<double> buckets = {1.0,  10.0, 100.0, 1e3,
                                              1e4,  1e5,  1e6,   1e7};
  return buckets;
}

MetricsRegistry::FamilyStorage& MetricsRegistry::family(
    const std::string& name, const std::string& help, MetricKind kind) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.help = help;
    it->second.kind = kind;
  } else {
    assert(it->second.kind == kind &&
           "metric family re-registered with a different kind");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& storage = family(name, help, MetricKind::kCounter);
  auto& slot = storage.counters[labels];
  if (!slot) slot.reset(new Counter());
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& storage = family(name, help, MetricKind::kGauge);
  auto& slot = storage.gauges[labels];
  if (!slot) slot.reset(new Gauge());
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const std::vector<double>& upper_bounds,
                                      const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& storage = family(name, help, MetricKind::kHistogram);
  auto& slot = storage.histograms[labels];
  if (!slot) slot.reset(new Histogram(upper_bounds));
  return *slot;
}

std::vector<MetricsRegistry::Family> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Family> out;
  out.reserve(families_.size());
  for (const auto& [name, storage] : families_) {
    Family family;
    family.name = name;
    family.help = storage.help;
    family.kind = storage.kind;
    switch (storage.kind) {
      case MetricKind::kCounter:
        for (const auto& [labels, counter] : storage.counters) {
          family.samples.push_back({labels, counter->value()});
        }
        break;
      case MetricKind::kGauge:
        for (const auto& [labels, gauge] : storage.gauges) {
          family.samples.push_back({labels, gauge->value()});
        }
        break;
      case MetricKind::kHistogram:
        for (const auto& [labels, histogram] : storage.histograms) {
          HistogramSample sample;
          sample.labels = labels;
          sample.upper_bounds = histogram->upper_bounds();
          sample.counts = histogram->bucket_counts();
          sample.sum = histogram->sum();
          sample.count = histogram->count();
          family.histograms.push_back(std::move(sample));
        }
        break;
    }
    out.push_back(std::move(family));
  }
  return out;
}

std::size_t MetricsRegistry::series_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [name, storage] : families_) {
    total += storage.counters.size() + storage.gauges.size() +
             storage.histograms.size();
  }
  return total;
}

}  // namespace iqb::obs
