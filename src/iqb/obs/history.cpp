#include "iqb/obs/history.hpp"

#include <algorithm>
#include <cmath>

#include "iqb/obs/export.hpp"

namespace iqb::obs {

TimeSeriesStore::TimeSeriesStore() : TimeSeriesStore(Options()) {}

TimeSeriesStore::TimeSeriesStore(Options options) : options_(options) {
  if (options_.capacity_per_series == 0) options_.capacity_per_series = 1;
  if (options_.max_series == 0) options_.max_series = 1;
}

std::vector<SamplePoint> TimeSeriesStore::Series::ordered() const {
  if (!full) return points;
  std::vector<SamplePoint> out;
  out.reserve(points.size());
  out.insert(out.end(), points.begin() + static_cast<std::ptrdiff_t>(head),
             points.end());
  out.insert(out.end(), points.begin(),
             points.begin() + static_cast<std::ptrdiff_t>(head));
  return out;
}

std::optional<SamplePoint> TimeSeriesStore::Series::newest() const {
  if (points.empty()) return std::nullopt;
  if (!full) return points.back();
  return points[(head + points.size() - 1) % points.size()];
}

void TimeSeriesStore::append(const std::string& name, const LabelSet& labels,
                             SeriesKind kind, std::uint64_t t_ms,
                             double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto family_it = families_.find(name);
  SeriesMap* family = nullptr;
  if (family_it == families_.end()) {
    if (series_count_ >= options_.max_series) {
      ++dropped_series_;
      return;
    }
    family = &families_[name];
  } else {
    family = &family_it->second;
  }
  auto series_it = family->find(labels);
  if (series_it == family->end()) {
    if (series_count_ >= options_.max_series) {
      ++dropped_series_;
      return;
    }
    series_it = family->emplace(labels, Series{}).first;
    series_it->second.kind = kind;
    ++series_count_;
  }
  Series& series = series_it->second;
  // Per-series points are time-ordered by contract; a stale append
  // (clock regression or duplicate sampler) is dropped, not
  // re-ordered. Equal timestamps are allowed so one cycle can sample
  // many families at the same instant.
  if (const auto newest = series.newest();
      newest && t_ms < newest->t_ms) {
    return;
  }
  if (series.points.size() < options_.capacity_per_series) {
    series.points.push_back({t_ms, value});
    if (series.points.size() == options_.capacity_per_series) {
      series.full = true;
      series.head = 0;
    }
  } else {
    series.points[series.head] = {t_ms, value};
    series.head = (series.head + 1) % series.points.size();
  }
}

void TimeSeriesStore::sample_registry(const MetricsRegistry& registry,
                                      std::uint64_t t_ms) {
  const auto families = registry.snapshot();
  for (const auto& family : families) {
    switch (family.kind) {
      case MetricKind::kCounter:
        for (const auto& sample : family.samples) {
          append(family.name, sample.labels, SeriesKind::kCounterSeries, t_ms,
                 sample.value);
        }
        break;
      case MetricKind::kGauge:
        for (const auto& sample : family.samples) {
          append(family.name, sample.labels, SeriesKind::kGaugeSeries, t_ms,
                 sample.value);
        }
        break;
      case MetricKind::kHistogram:
        for (const auto& histogram : family.histograms) {
          // The Prometheus data model verbatim: cumulative bucket
          // counts as counter series keyed by le, so window deltas
          // give "events <= bound in the window" — the burn-rate
          // numerator.
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < histogram.upper_bounds.size(); ++i) {
            cumulative += histogram.counts[i];
            LabelSet labels = histogram.labels;
            labels["le"] = format_metric_value(histogram.upper_bounds[i]);
            append(family.name + "_bucket", labels,
                   SeriesKind::kCounterSeries, t_ms,
                   static_cast<double>(cumulative));
          }
          cumulative += histogram.counts.back();
          LabelSet inf_labels = histogram.labels;
          inf_labels["le"] = "+Inf";
          append(family.name + "_bucket", inf_labels,
                 SeriesKind::kCounterSeries, t_ms,
                 static_cast<double>(cumulative));
          append(family.name + "_count", histogram.labels,
                 SeriesKind::kCounterSeries, t_ms,
                 static_cast<double>(histogram.count));
          append(family.name + "_sum", histogram.labels,
                 SeriesKind::kCounterSeries, t_ms, histogram.sum);
        }
        break;
    }
  }
}

const TimeSeriesStore::Series* TimeSeriesStore::find(
    const std::string& name, const LabelSet& labels) const {
  const auto family = families_.find(name);
  if (family == families_.end()) return nullptr;
  const auto series = family->second.find(labels);
  if (series == family->second.end()) return nullptr;
  return &series->second;
}

bool TimeSeriesStore::labels_match(const LabelSet& labels,
                                   const LabelSet& match) {
  for (const auto& [key, value] : match) {
    const auto it = labels.find(key);
    if (it == labels.end() || it->second != value) return false;
  }
  return true;
}

WindowStats TimeSeriesStore::stats_of(
    const std::vector<SamplePoint>& points) {
  WindowStats stats;
  stats.samples = points.size();
  if (points.empty()) return stats;
  stats.t_first_ms = points.front().t_ms;
  stats.t_last_ms = points.back().t_ms;
  stats.first = points.front().value;
  stats.last = points.back().value;
  stats.min = points.front().value;
  stats.max = points.front().value;
  double sum = 0.0;
  for (const SamplePoint& point : points) {
    stats.min = std::min(stats.min, point.value);
    stats.max = std::max(stats.max, point.value);
    sum += point.value;
  }
  stats.mean = sum / static_cast<double>(points.size());
  stats.delta = stats.last - stats.first;
  if (points.size() >= 2 && stats.t_last_ms > stats.t_first_ms) {
    stats.rate_per_s =
        stats.delta /
        (static_cast<double>(stats.t_last_ms - stats.t_first_ms) / 1000.0);
  }
  // Nearest-rank p95 over the window's samples (small n by
  // construction — the ring bounds it — so a sort-copy is fine).
  std::vector<double> values;
  values.reserve(points.size());
  for (const SamplePoint& point : points) values.push_back(point.value);
  std::sort(values.begin(), values.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(0.95 * static_cast<double>(values.size())));
  stats.p95 = values[rank == 0 ? 0 : rank - 1];
  return stats;
}

std::vector<SamplePoint> TimeSeriesStore::points_in_window(
    const std::string& name, const LabelSet& labels, std::uint64_t window_ms,
    std::uint64_t now_ms) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Series* series = find(name, labels);
  if (series == nullptr) return {};
  const std::uint64_t cutoff = now_ms >= window_ms ? now_ms - window_ms : 0;
  std::vector<SamplePoint> out;
  for (const SamplePoint& point : series->ordered()) {
    if (point.t_ms >= cutoff && point.t_ms <= now_ms) out.push_back(point);
  }
  return out;
}

std::optional<WindowStats> TimeSeriesStore::query(const std::string& name,
                                                  const LabelSet& labels,
                                                  std::uint64_t window_ms,
                                                  std::uint64_t now_ms) const {
  const auto points = points_in_window(name, labels, window_ms, now_ms);
  if (points.empty()) return std::nullopt;
  return stats_of(points);
}

std::optional<SamplePoint> TimeSeriesStore::latest(
    const std::string& name, const LabelSet& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Series* series = find(name, labels);
  if (series == nullptr) return std::nullopt;
  return series->newest();
}

std::vector<LabelSet> TimeSeriesStore::label_sets(const std::string& name,
                                                  const LabelSet& match) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<LabelSet> out;
  const auto family = families_.find(name);
  if (family == families_.end()) return out;
  for (const auto& [labels, series] : family->second) {
    if (labels_match(labels, match)) out.push_back(labels);
  }
  return out;
}

double TimeSeriesStore::sum_window_delta(const std::string& name,
                                         const LabelSet& match,
                                         std::uint64_t window_ms,
                                         std::uint64_t now_ms) const {
  double total = 0.0;
  for (const LabelSet& labels : label_sets(name, match)) {
    if (const auto stats = query(name, labels, window_ms, now_ms)) {
      total += stats->delta;
    }
  }
  return total;
}

std::vector<std::string> TimeSeriesStore::distinct_label_values(
    const std::string& name, const std::string& key) const {
  std::vector<std::string> out;
  for (const LabelSet& labels : label_sets(name)) {
    const auto it = labels.find(key);
    if (it == labels.end()) continue;
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t TimeSeriesStore::series_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_count_;
}

std::size_t TimeSeriesStore::dropped_series() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_series_;
}

util::JsonValue TimeSeriesStore::to_json(const std::string& family_filter,
                                         std::uint64_t window_ms,
                                         std::uint64_t now_ms,
                                         bool include_points) const {
  // Snapshot the family map under the lock, then do the windowed math
  // through the public (self-locking) queries on the copy-free keys.
  std::vector<std::pair<std::string, LabelSet>> keys;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, family] : families_) {
      if (!family_filter.empty() && name != family_filter) continue;
      for (const auto& [labels, series] : family) {
        keys.emplace_back(name, labels);
      }
    }
  }
  util::JsonArray series_json;
  for (const auto& [name, labels] : keys) {
    SeriesKind kind = SeriesKind::kGaugeSeries;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (const Series* series = find(name, labels)) kind = series->kind;
    }
    util::JsonObject entry;
    entry.emplace("name", name);
    if (!labels.empty()) {
      util::JsonObject labels_json;
      for (const auto& [key, value] : labels) labels_json.emplace(key, value);
      entry.emplace("labels", std::move(labels_json));
    }
    entry.emplace("kind", kind == SeriesKind::kCounterSeries ? "counter"
                                                             : "gauge");
    const auto stats = query(name, labels, window_ms, now_ms);
    entry.emplace("samples",
                  static_cast<std::int64_t>(stats ? stats->samples : 0));
    if (stats) {
      entry.emplace("first", stats->first);
      entry.emplace("last", stats->last);
      if (kind == SeriesKind::kCounterSeries) {
        entry.emplace("delta", stats->delta);
        entry.emplace("rate_per_s", stats->rate_per_s);
      } else {
        entry.emplace("min", stats->min);
        entry.emplace("max", stats->max);
        entry.emplace("mean", stats->mean);
        entry.emplace("p95", stats->p95);
      }
      if (include_points) {
        util::JsonArray points_json;
        for (const SamplePoint& point :
             points_in_window(name, labels, window_ms, now_ms)) {
          util::JsonArray pair;
          pair.emplace_back(static_cast<std::int64_t>(point.t_ms));
          pair.emplace_back(point.value);
          points_json.emplace_back(std::move(pair));
        }
        entry.emplace("points", std::move(points_json));
      }
    }
    series_json.emplace_back(std::move(entry));
  }
  util::JsonObject out;
  out.emplace("now_ms", static_cast<std::int64_t>(now_ms));
  out.emplace("window_ms", static_cast<std::int64_t>(window_ms));
  out.emplace("series_count", static_cast<std::int64_t>(series_count()));
  out.emplace("dropped_series", static_cast<std::int64_t>(dropped_series()));
  out.emplace("series", std::move(series_json));
  return util::JsonValue(std::move(out));
}

}  // namespace iqb::obs
