// Exporters: registry/trace -> Prometheus exposition text or JSON.
//
// Both are pure functions over a point-in-time snapshot, so their
// output is unit-testable byte for byte: families sort by name,
// series by label set, numbers render via shortest-round-trip
// to_chars. The Prometheus writer implements the text exposition
// format (HELP/TYPE lines, label escaping, cumulative histogram
// _bucket/_sum/_count series with an +Inf bucket).
#pragma once

#include <string>

#include "iqb/obs/metrics.hpp"
#include "iqb/obs/trace.hpp"
#include "iqb/util/json.hpp"

namespace iqb::obs {

/// Prometheus text exposition format (version 0.0.4).
std::string to_prometheus(const MetricsRegistry& registry);

/// JSON document {"metrics": [family...]}; histograms carry explicit
/// bucket upper bounds and non-cumulative counts plus sum/count.
util::JsonValue metrics_to_json(const MetricsRegistry& registry);

/// JSON trace tree {"trace": [root span...]}. Timestamps are
/// rebased so the earliest span starts at 0 ns — small numbers,
/// exact in a JSON double, and stable under a manual clock.
util::JsonValue trace_to_json(const Tracer& tracer);

/// Escape a label value per the exposition format: backslash, double
/// quote and newline. Exposed for tests.
std::string prometheus_escape(std::string_view value);

/// Shortest decimal rendering that round-trips the double ("1", "0.5",
/// "+Inf"). Exposed for tests.
std::string format_metric_value(double value);

}  // namespace iqb::obs
