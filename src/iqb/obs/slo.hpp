// SLO evaluation and alerting over the in-process history TSDB.
//
// An SloEngine turns declarative SloSpecs into stateful Alert
// instances, evaluated once per daemon cycle against the
// TimeSeriesStore. Four rule types cover the barometer's needs:
//
//   * kBurnRate — a Google-style multi-window burn-rate SLO ("99% of
//     /shard/aggregate requests < 250 ms over 1h"). The error budget
//     is 1 - objective; the bad-event fraction over a window divided
//     by the budget is the burn rate. The alert condition is the
//     SRE-workbook pair-of-pairs: fast (5m AND 1h both burning >
//     14.4x) OR slow (30m AND 6h both burning > 6x), so a sudden
//     total outage pages in minutes while a slow leak still pages
//     before the budget is gone. Sources: a histogram family (bad =
//     events above threshold_ms, from bucket deltas) or a counter
//     ratio (bad_metric/metric window deltas).
//   * kThreshold — latest value of every matching gauge series
//     compared against a bound (fleet_shard_up < 1 -> the
//     shard_unreachable alert), with hold-down.
//   * kAnomaly — EWMA + MAD drift detection on every matching gauge
//     series (per-region requirement percentiles): a point whose
//     robust z-score |x - ewma| / (1.4826 * MAD) exceeds mad_k after
//     warmup is anomalous. MAD is computed over the recent residual
//     window, so one historical outlier cannot deafen the detector.
//   * kFlap — value changes of a gauge inside flap_window_ms counted
//     against max_flips (confidence-tier flapping).
//
// Alert state machine (per spec x matching label set):
//   inactive -> pending (condition first true)
//   pending  -> firing  (condition held for for_ms; for_ms=0 skips
//                        pending and fires immediately)
//   pending  -> inactive (condition cleared before for_ms)
//   firing   -> resolved (condition clear for resolve_ms)
// Every transition is WARN-logged (the ambient cycle trace id rides
// on the record), stamped with the evaluating cycle + trace id, and
// kept in a bounded recent ring served on /alertz.
//
// Specs load from JSON (`iqbd --slo-file FILE`); built-in defaults
// (score drift, tier flap, shard_unreachable on coordinators) are
// added by the daemons themselves.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "iqb/obs/history.hpp"
#include "iqb/util/json.hpp"
#include "iqb/util/result.hpp"

namespace iqb::obs {

enum class AlertState { kInactive, kPending, kFiring, kResolved };
const char* alert_state_name(AlertState state) noexcept;

/// One alert instance's externally visible record.
struct Alert {
  std::string name;      ///< Spec name.
  LabelSet labels;       ///< Instance labels (series labels or spec labels).
  AlertState state = AlertState::kInactive;
  std::uint64_t since_ms = 0;  ///< When the current state was entered.
  double value = 0.0;          ///< Last evaluated value (burn rate, ...).
  std::string reason;          ///< Human-readable condition detail.
  std::uint64_t cycle = 0;     ///< Cycle of the last state transition.
  std::string trace_id;        ///< Trace id of that cycle.
};

struct AlertTransition {
  AlertState from = AlertState::kInactive;
  Alert alert;  ///< Post-transition snapshot.
};

struct SloSpec {
  enum class Type { kBurnRate, kThreshold, kAnomaly, kFlap };
  enum class Op { kLt, kGt };

  Type type = Type::kThreshold;
  std::string name;
  std::string metric;  ///< Family (histogram base name for kBurnRate).
  /// Series must carry all of these labels to match; matching series
  /// beyond the first each get their own alert instance.
  LabelSet labels;

  // kBurnRate ------------------------------------------------------
  double objective = 0.99;     ///< Fraction of events that must be good.
  double threshold_ms = 250;   ///< Histogram "good" bound (le units).
  /// Counter-ratio mode: when set, bad = delta(bad_metric{bad_labels})
  /// and total = delta(metric{labels}); threshold_ms is ignored.
  std::string bad_metric;
  LabelSet bad_labels;
  /// Multi-window pairs (SRE workbook defaults).
  std::uint64_t fast_short_ms = 5 * 60 * 1000;
  std::uint64_t fast_long_ms = 60 * 60 * 1000;
  double fast_factor = 14.4;
  std::uint64_t slow_short_ms = 30 * 60 * 1000;
  std::uint64_t slow_long_ms = 6 * 60 * 60 * 1000;
  double slow_factor = 6.0;

  // kThreshold -----------------------------------------------------
  Op op = Op::kLt;
  double bound = 1.0;

  // kAnomaly -------------------------------------------------------
  double ewma_alpha = 0.3;
  double mad_k = 6.0;
  std::size_t warmup_samples = 8;
  std::size_t residual_window = 64;

  // kFlap ----------------------------------------------------------
  std::size_t max_flips = 3;
  std::uint64_t flap_window_ms = 10 * 60 * 1000;

  // State-machine hold-down ---------------------------------------
  std::uint64_t for_ms = 0;      ///< Condition sustained before firing.
  std::uint64_t resolve_ms = 0;  ///< Condition clear before resolving.
};

const char* slo_type_name(SloSpec::Type type) noexcept;

/// Parse {"slos":[{...},...]} into specs. Unknown fields are errors —
/// a typo'd spec silently matching nothing would be an alerting hole.
util::Result<std::vector<SloSpec>> parse_slo_specs(
    const util::JsonValue& document);

/// Load + parse an --slo-file.
util::Result<std::vector<SloSpec>> load_slo_file(const std::string& path);

class SloEngine {
 public:
  struct Options {
    std::vector<SloSpec> specs;
    /// Bounded ring of recent transitions served on /alertz.
    std::size_t recent_capacity = 128;
  };

  /// `history` is non-owning and must outlive the engine.
  SloEngine(Options options, const TimeSeriesStore* history);
  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  /// Evaluate every spec at `now_ms`. Transitions are WARN-logged
  /// (under the caller's ambient log trace), recorded with the given
  /// cycle + trace id, and returned.
  std::vector<AlertTransition> evaluate(std::uint64_t now_ms,
                                        std::uint64_t cycle,
                                        const std::string& trace_id);

  /// Pending + firing instances, deterministic order.
  std::vector<Alert> active() const;
  /// Recent transitions, oldest to newest.
  std::vector<AlertTransition> recent() const;
  std::size_t spec_count() const { return options_.specs.size(); }
  std::uint64_t evaluations() const;

  /// The /alertz document: {"specs","evaluations","active":[...],
  /// "recent":[...]} — byte-stable ordering.
  util::JsonValue to_json() const;

 private:
  struct Instance {
    Alert alert;
    std::uint64_t pending_since_ms = 0;
    std::uint64_t clear_since_ms = 0;  ///< 0 = condition currently true.
    // kAnomaly running state.
    bool ewma_init = false;
    double ewma = 0.0;
    std::deque<double> residuals;
    std::uint64_t last_sample_t_ms = 0;
  };

  struct Evaluation {
    bool condition = false;
    bool known = false;  ///< Enough data to evaluate at all.
    double value = 0.0;
    std::string reason;
  };

  void evaluate_spec(const SloSpec& spec, std::uint64_t now_ms,
                     std::uint64_t cycle, const std::string& trace_id,
                     std::vector<AlertTransition>& transitions);
  Evaluation evaluate_burn_rate(const SloSpec& spec,
                                std::uint64_t now_ms) const;
  Evaluation evaluate_threshold(const SloSpec& spec, const LabelSet& labels,
                                std::uint64_t now_ms) const;
  Evaluation evaluate_anomaly(const SloSpec& spec, const LabelSet& labels,
                              Instance& instance) const;
  Evaluation evaluate_flap(const SloSpec& spec, const LabelSet& labels,
                           std::uint64_t now_ms) const;
  void step_instance(const SloSpec& spec, Instance& instance,
                     const Evaluation& evaluation, std::uint64_t now_ms,
                     std::uint64_t cycle, const std::string& trace_id,
                     std::vector<AlertTransition>& transitions);

  Options options_;
  const TimeSeriesStore* history_;

  mutable std::mutex mutex_;
  /// (spec index, instance labels) -> live state. std::map keys make
  /// active() and to_json() deterministic.
  std::map<std::pair<std::size_t, LabelSet>, Instance> instances_;
  std::deque<AlertTransition> recent_;
  std::uint64_t evaluations_ = 0;
};

}  // namespace iqb::obs
