// Minimal dependency-free HTTP/1.1 server for telemetry serving.
//
// Deliberately small: one blocking accept loop on a dedicated thread,
// a bounded queue of accepted connections drained by a fixed pool of
// worker threads, `Connection: close` on every response. That is all
// a scrape endpoint needs — Prometheus opens a fresh connection per
// scrape — and it keeps the server auditable: no keep-alive state
// machine, no chunked encoding, no TLS. GET/HEAD plus Content-Length-
// bounded POST (for checkpoint replication) are the whole method
// surface; anything else is 405.
//
// Backpressure is explicit: when the pending-connection queue is
// full the acceptor answers 503 inline and closes, so a scrape storm
// degrades loudly instead of queueing unboundedly. stop() is
// idempotent and joins every thread; it is safe to destroy the
// server (and whatever state the handler captured) afterwards.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>

#include "iqb/util/result.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace iqb::obs {

class MetricsRegistry;
class RequestStats;
class SpanRingBuffer;

struct HttpRequest {
  HttpRequest() = default;
  /// Tests and handlers mostly need just these two.
  HttpRequest(std::string method, std::string path)
      : method(std::move(method)), path(std::move(path)) {}

  std::string method;  ///< "GET", uppercased as received.
  std::string path;    ///< Path only; the query string is split off.
  std::string query;   ///< Raw query string (no '?'), "" when absent.
  /// Request headers in arrival order, names lowercased.
  std::vector<std::pair<std::string, std::string>> headers;
  /// POST payload, complete (Content-Length bytes) by the time the
  /// handler runs; always empty for GET/HEAD.
  std::string body;
  std::string peer;      ///< Client "ip:port", best effort.
  std::string trace_id;  ///< From traceparent, or server-generated
                         ///< when a span sink is configured; may be
                         ///< "" (telemetry off, no inbound context).

  /// First value of a header (lookup name lowercase), or empty.
  std::string header(const std::string& name) const;
};

/// Value of `key` in a raw query string ("trace=iqbd-7&x=1"), or "".
/// No percent-decoding — the fleet's ids are URL-safe by construction.
std::string query_param(const std::string& query, std::string_view key);

struct HttpResponse {
  HttpResponse() = default;
  HttpResponse(int status, std::string content_type, std::string body)
      : status(status),
        content_type(std::move(content_type)),
        body(std::move(body)) {}

  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra response headers (name, value), emitted verbatim after the
  /// standard ones. Used e.g. to flag recovered-but-stale snapshots.
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Standard reason phrase for the handful of statuses the telemetry
/// endpoints use ("OK", "Not Found", ...).
const char* http_status_reason(int status) noexcept;

/// Called on a worker thread for every well-formed request. Must be
/// thread-safe; exceptions escape to std::terminate (telemetry
/// handlers are expected to be non-throwing renderers).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;         ///< 0: ephemeral; see port().
    std::size_t worker_threads = 4; ///< Clamped to >= 1.
    std::size_t max_pending = 64;   ///< Queue bound before inline 503.
    int io_timeout_ms = 2000;       ///< Per-connection read/write timeout.
    /// Request-line + header byte bound. A client that sends more
    /// before the blank line gets 431 instead of growing our buffer.
    std::size_t max_request_bytes = 8 * 1024;
    /// POST body byte bound (declared Content-Length). Larger bodies
    /// are refused with 413 before any body byte is read; a POST with
    /// a missing or malformed Content-Length gets 400. Sized for a
    /// replicated checkpoint frame with headroom.
    std::size_t max_body_bytes = 16 * 1024 * 1024;
    /// Optional registry for the server's own health counters
    /// (http_accept_errors_total, http_requests_shed_total). Non-
    /// owning; must outlive the server. Null records nothing.
    MetricsRegistry* metrics = nullptr;
    /// Optional per-request telemetry sink: every connection —
    /// including early-rejected ones (431/400/405) — is recorded with
    /// trace id, peer, status, bytes and duration. Non-owning; must
    /// outlive the server. Null records nothing.
    RequestStats* request_stats = nullptr;
    /// Optional span sink. When set, each well-formed request runs
    /// under a "http.server" span (child of the inbound traceparent
    /// context if present) inside a ScopedLogTrace for its trace id,
    /// the completed span is folded into this buffer, and the response
    /// carries `X-IQB-Trace: <trace id>` so clients can find their
    /// request in /tracez. Null (telemetry off) leaves request
    /// handling — and every response byte — exactly as before.
    SpanRingBuffer* spans = nullptr;
  };

  HttpServer(Options options, HttpHandler handler);
  ~HttpServer();  ///< Calls stop().
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind + listen + start the accept/worker threads. Fails with
  /// kIoError if the address cannot be bound. Calling start() on a
  /// running server is an error.
  util::Result<void> start();

  /// Stop accepting, drain the queue (pending connections are closed
  /// unanswered), join all threads. Idempotent.
  void stop();

  /// Graceful variant of stop(): stop accepting new connections, let
  /// the workers answer everything already accepted, then join.
  /// Idempotent; stop() after drain() is a no-op.
  void drain();

  bool running() const noexcept { return running_; }

  /// Actual bound port (resolves port 0 after start()).
  std::uint16_t port() const noexcept { return bound_port_; }

  /// accept() failures the acceptor survived (also exported as
  /// http_accept_errors_total when Options::metrics is set).
  std::uint64_t accept_errors() const noexcept {
    return accept_errors_.load();
  }
  /// Connections shed with a best-effort 503 because the queue was
  /// full (http_requests_shed_total).
  std::uint64_t shed_total() const noexcept { return shed_total_.load(); }

 private:
  void accept_loop();
  void worker_loop();
  void handle_connection(int fd);
  void shed_connection(int fd);
  void shutdown_threads(bool graceful);

  Options options_;
  HttpHandler handler_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  bool running_ = false;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< Accepted fds awaiting a worker.
  bool stopping_ = false;    ///< Guarded by queue_mutex_.
  bool draining_ = false;    ///< Guarded by queue_mutex_: finish queue.

  std::atomic<std::uint64_t> accept_errors_{0};
  std::atomic<std::uint64_t> shed_total_{0};

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

}  // namespace iqb::obs
