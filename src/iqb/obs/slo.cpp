#include "iqb/obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "iqb/obs/export.hpp"
#include "iqb/util/fs.hpp"
#include "iqb/util/log.hpp"

namespace iqb::obs {
namespace {

std::string format_value(double value) { return format_metric_value(value); }

std::string labels_to_string(const LabelSet& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + value + "\"";
  }
  out += "}";
  return out;
}

util::JsonValue labels_to_json(const LabelSet& labels) {
  util::JsonObject out;
  for (const auto& [key, value] : labels) out.emplace(key, value);
  return util::JsonValue(std::move(out));
}

util::JsonValue alert_to_json(const Alert& alert) {
  util::JsonObject out;
  out.emplace("name", alert.name);
  if (!alert.labels.empty()) out.emplace("labels", labels_to_json(alert.labels));
  out.emplace("state", alert_state_name(alert.state));
  out.emplace("since_ms", static_cast<std::int64_t>(alert.since_ms));
  out.emplace("value", alert.value);
  out.emplace("reason", alert.reason);
  out.emplace("cycle", static_cast<std::int64_t>(alert.cycle));
  out.emplace("trace", alert.trace_id);
  return util::JsonValue(std::move(out));
}

util::Result<LabelSet> parse_label_object(const util::JsonValue& value,
                                          const std::string& context) {
  if (!value.is_object()) {
    return util::make_error(util::ErrorCode::kParseError,
                            context + " must be an object of string labels");
  }
  LabelSet out;
  for (const auto& [key, entry] : value.as_object()) {
    if (!entry.is_string()) {
      return util::make_error(
          util::ErrorCode::kParseError,
          context + " label '" + key + "' must be a string");
    }
    out[key] = entry.as_string();
  }
  return out;
}

}  // namespace

const char* alert_state_name(AlertState state) noexcept {
  switch (state) {
    case AlertState::kInactive:
      return "inactive";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
    case AlertState::kResolved:
      return "resolved";
  }
  return "inactive";
}

const char* slo_type_name(SloSpec::Type type) noexcept {
  switch (type) {
    case SloSpec::Type::kBurnRate:
      return "burn_rate";
    case SloSpec::Type::kThreshold:
      return "threshold";
    case SloSpec::Type::kAnomaly:
      return "anomaly";
    case SloSpec::Type::kFlap:
      return "flap";
  }
  return "threshold";
}

util::Result<std::vector<SloSpec>> parse_slo_specs(
    const util::JsonValue& document) {
  if (!document.is_object()) {
    return util::make_error(util::ErrorCode::kParseError,
                            "SLO document must be a JSON object");
  }
  auto slos = document.get_array("slos");
  if (!slos.ok()) return slos.error();

  std::vector<SloSpec> specs;
  for (std::size_t i = 0; i < slos->size(); ++i) {
    const util::JsonValue& entry = (*slos)[i];
    const std::string context = "slos[" + std::to_string(i) + "]";
    if (!entry.is_object()) {
      return util::make_error(util::ErrorCode::kParseError,
                              context + " must be an object");
    }
    SloSpec spec;
    auto name = entry.get_string("name");
    if (!name.ok()) {
      return util::make_error(util::ErrorCode::kParseError,
                              context + ": 'name' (string) is required");
    }
    spec.name = *name;
    auto type = entry.get_string("type");
    if (!type.ok()) {
      return util::make_error(util::ErrorCode::kParseError,
                              context + ": 'type' (string) is required");
    }
    if (*type == "burn_rate") {
      spec.type = SloSpec::Type::kBurnRate;
    } else if (*type == "threshold") {
      spec.type = SloSpec::Type::kThreshold;
    } else if (*type == "anomaly") {
      spec.type = SloSpec::Type::kAnomaly;
    } else if (*type == "flap") {
      spec.type = SloSpec::Type::kFlap;
    } else {
      return util::make_error(
          util::ErrorCode::kParseError,
          context + ": unknown type '" + *type +
              "' (expected burn_rate, threshold, anomaly, or flap)");
    }
    auto metric = entry.get_string("metric");
    if (!metric.ok()) {
      return util::make_error(util::ErrorCode::kParseError,
                              context + ": 'metric' (string) is required");
    }
    spec.metric = *metric;

    for (const auto& [key, value] : entry.as_object()) {
      if (key == "name" || key == "type" || key == "metric") continue;
      const std::string field_context = context + "." + key;
      if (key == "labels") {
        auto labels = parse_label_object(value, field_context);
        if (!labels.ok()) return labels.error();
        spec.labels = *labels;
      } else if (key == "bad_labels") {
        auto labels = parse_label_object(value, field_context);
        if (!labels.ok()) return labels.error();
        spec.bad_labels = *labels;
      } else if (key == "bad_metric") {
        if (!value.is_string()) {
          return util::make_error(util::ErrorCode::kParseError,
                                  field_context + " must be a string");
        }
        spec.bad_metric = value.as_string();
      } else if (key == "op") {
        if (!value.is_string() ||
            (value.as_string() != "lt" && value.as_string() != "gt")) {
          return util::make_error(util::ErrorCode::kParseError,
                                  field_context + " must be \"lt\" or \"gt\"");
        }
        spec.op =
            value.as_string() == "lt" ? SloSpec::Op::kLt : SloSpec::Op::kGt;
      } else if (value.is_number()) {
        const double number = value.as_number();
        if (key == "objective") {
          if (!(number > 0.0) || !(number < 1.0)) {
            return util::make_error(
                util::ErrorCode::kParseError,
                field_context + " must be strictly between 0 and 1");
          }
          spec.objective = number;
        } else if (key == "threshold_ms") {
          spec.threshold_ms = number;
        } else if (key == "bound") {
          spec.bound = number;
        } else if (key == "fast_short_ms") {
          spec.fast_short_ms = static_cast<std::uint64_t>(number);
        } else if (key == "fast_long_ms") {
          spec.fast_long_ms = static_cast<std::uint64_t>(number);
        } else if (key == "fast_factor") {
          spec.fast_factor = number;
        } else if (key == "slow_short_ms") {
          spec.slow_short_ms = static_cast<std::uint64_t>(number);
        } else if (key == "slow_long_ms") {
          spec.slow_long_ms = static_cast<std::uint64_t>(number);
        } else if (key == "slow_factor") {
          spec.slow_factor = number;
        } else if (key == "ewma_alpha") {
          if (!(number > 0.0) || number > 1.0) {
            return util::make_error(util::ErrorCode::kParseError,
                                    field_context + " must be in (0, 1]");
          }
          spec.ewma_alpha = number;
        } else if (key == "mad_k") {
          spec.mad_k = number;
        } else if (key == "warmup_samples") {
          spec.warmup_samples = static_cast<std::size_t>(number);
        } else if (key == "residual_window") {
          spec.residual_window = static_cast<std::size_t>(number);
        } else if (key == "max_flips") {
          spec.max_flips = static_cast<std::size_t>(number);
        } else if (key == "flap_window_ms") {
          spec.flap_window_ms = static_cast<std::uint64_t>(number);
        } else if (key == "for_ms") {
          spec.for_ms = static_cast<std::uint64_t>(number);
        } else if (key == "resolve_ms") {
          spec.resolve_ms = static_cast<std::uint64_t>(number);
        } else {
          return util::make_error(util::ErrorCode::kParseError,
                                  field_context + ": unknown field");
        }
      } else {
        return util::make_error(util::ErrorCode::kParseError,
                                field_context + ": unknown field");
      }
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

util::Result<std::vector<SloSpec>> load_slo_file(const std::string& path) {
  auto text = util::fs::read_file(path);
  if (!text.ok()) return text.error();
  auto document = util::parse_json(*text);
  if (!document.ok()) {
    return util::make_error(util::ErrorCode::kParseError,
                            "SLO file " + path + ": " +
                                document.error().message);
  }
  auto specs = parse_slo_specs(*document);
  if (!specs.ok()) {
    return util::make_error(util::ErrorCode::kParseError,
                            "SLO file " + path + ": " + specs.error().message);
  }
  return specs;
}

SloEngine::SloEngine(Options options, const TimeSeriesStore* history)
    : options_(std::move(options)), history_(history) {
  if (options_.recent_capacity == 0) options_.recent_capacity = 1;
}

SloEngine::Evaluation SloEngine::evaluate_burn_rate(
    const SloSpec& spec, std::uint64_t now_ms) const {
  // Burn rate over a window = bad_fraction / error_budget. Bad events
  // come either from histogram buckets (good = events <= threshold_ms)
  // or an explicit bad/total counter pair.
  const double budget = 1.0 - spec.objective;
  const auto burn_over = [&](std::uint64_t window_ms,
                             bool& window_known) -> double {
    double total = 0.0;
    double bad = 0.0;
    if (!spec.bad_metric.empty()) {
      total = history_->sum_window_delta(spec.metric, spec.labels, window_ms,
                                         now_ms);
      bad = history_->sum_window_delta(spec.bad_metric, spec.bad_labels,
                                       window_ms, now_ms);
    } else {
      total = history_->sum_window_delta(spec.metric + "_count", spec.labels,
                                         window_ms, now_ms);
      // "Good" is the tightest bucket whose le covers the threshold;
      // label sets tell us which buckets exist for this family.
      double best_bound = -1.0;
      std::string best_le;
      for (const LabelSet& labels :
           history_->label_sets(spec.metric + "_bucket", spec.labels)) {
        const auto it = labels.find("le");
        if (it == labels.end() || it->second == "+Inf") continue;
        const double bound = std::strtod(it->second.c_str(), nullptr);
        if (bound + 1e-9 >= spec.threshold_ms &&
            (best_bound < 0.0 || bound < best_bound)) {
          best_bound = bound;
          best_le = it->second;
        }
      }
      if (best_bound >= 0.0) {
        LabelSet match = spec.labels;
        match["le"] = best_le;
        bad = total - history_->sum_window_delta(spec.metric + "_bucket",
                                                 match, window_ms, now_ms);
      } else {
        // No bucket covers the threshold: everything counted is bad.
        bad = total;
      }
    }
    if (total <= 0.0) {
      window_known = false;
      return 0.0;
    }
    window_known = true;
    const double bad_fraction = std::clamp(bad / total, 0.0, 1.0);
    return budget > 0.0 ? bad_fraction / budget : 0.0;
  };

  Evaluation evaluation;
  bool fast_short_known = false, fast_long_known = false;
  bool slow_short_known = false, slow_long_known = false;
  const double fast_short = burn_over(spec.fast_short_ms, fast_short_known);
  const double fast_long = burn_over(spec.fast_long_ms, fast_long_known);
  const double slow_short = burn_over(spec.slow_short_ms, slow_short_known);
  const double slow_long = burn_over(spec.slow_long_ms, slow_long_known);
  evaluation.known =
      (fast_short_known && fast_long_known) ||
      (slow_short_known && slow_long_known);
  const bool fast = fast_short_known && fast_long_known &&
                    fast_short > spec.fast_factor &&
                    fast_long > spec.fast_factor;
  const bool slow = slow_short_known && slow_long_known &&
                    slow_short > spec.slow_factor &&
                    slow_long > spec.slow_factor;
  evaluation.condition = fast || slow;
  evaluation.value = std::max({fast_short, fast_long, slow_short, slow_long});
  std::ostringstream reason;
  reason << "burn fast=" << format_value(fast_short) << "/"
         << format_value(fast_long) << " (x" << format_value(spec.fast_factor)
         << ") slow=" << format_value(slow_short) << "/"
         << format_value(slow_long) << " (x" << format_value(spec.slow_factor)
         << ")";
  evaluation.reason = reason.str();
  return evaluation;
}

SloEngine::Evaluation SloEngine::evaluate_threshold(
    const SloSpec& spec, const LabelSet& labels, std::uint64_t) const {
  Evaluation evaluation;
  const auto point = history_->latest(spec.metric, labels);
  if (!point) return evaluation;
  evaluation.known = true;
  evaluation.value = point->value;
  evaluation.condition = spec.op == SloSpec::Op::kLt
                             ? point->value < spec.bound
                             : point->value > spec.bound;
  evaluation.reason = spec.metric + "=" + format_value(point->value) +
                      (spec.op == SloSpec::Op::kLt ? " < " : " > ") +
                      format_value(spec.bound);
  return evaluation;
}

SloEngine::Evaluation SloEngine::evaluate_anomaly(const SloSpec& spec,
                                                  const LabelSet& labels,
                                                  Instance& instance) const {
  Evaluation evaluation;
  const auto point = history_->latest(spec.metric, labels);
  if (!point) return evaluation;
  // Consume each sample exactly once: the EWMA must not re-ingest the
  // same point when cycles outpace the sampled series.
  if (instance.last_sample_t_ms != 0 &&
      point->t_ms <= instance.last_sample_t_ms) {
    evaluation.known = instance.residuals.size() >= spec.warmup_samples;
    evaluation.value = point->value;
    evaluation.reason = "no new sample";
    return evaluation;
  }
  instance.last_sample_t_ms = point->t_ms;
  const double x = point->value;
  if (!instance.ewma_init) {
    instance.ewma_init = true;
    instance.ewma = x;
    instance.residuals.push_back(0.0);
    evaluation.value = x;
    evaluation.reason = "warming up";
    return evaluation;
  }
  const double residual = std::abs(x - instance.ewma);
  // Score against the *previous* EWMA/MAD state, then update, so the
  // anomalous point itself does not dilute the detector that judges it.
  std::vector<double> sorted(instance.residuals.begin(),
                             instance.residuals.end());
  std::sort(sorted.begin(), sorted.end());
  const double mad = sorted[sorted.size() / 2];
  const double robust_sigma = 1.4826 * mad;
  const bool warmed = instance.residuals.size() >= spec.warmup_samples;
  double z = 0.0;
  if (robust_sigma > 1e-12) {
    z = residual / robust_sigma;
  } else if (residual > 1e-12) {
    // A flat history then a jump: infinite z in spirit.
    z = spec.mad_k + 1.0;
  }
  evaluation.known = warmed;
  evaluation.value = z;
  evaluation.condition = warmed && z > spec.mad_k;
  evaluation.reason = spec.metric + "=" + format_value(x) +
                      " ewma=" + format_value(instance.ewma) +
                      " |z|=" + format_value(z) + " (k=" +
                      format_value(spec.mad_k) + ")";
  instance.ewma = spec.ewma_alpha * x + (1.0 - spec.ewma_alpha) * instance.ewma;
  instance.residuals.push_back(residual);
  while (instance.residuals.size() > spec.residual_window) {
    instance.residuals.pop_front();
  }
  return evaluation;
}

SloEngine::Evaluation SloEngine::evaluate_flap(const SloSpec& spec,
                                               const LabelSet& labels,
                                               std::uint64_t now_ms) const {
  Evaluation evaluation;
  const auto points = history_->points_in_window(spec.metric, labels,
                                                 spec.flap_window_ms, now_ms);
  if (points.empty()) return evaluation;
  evaluation.known = true;
  std::size_t flips = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].value != points[i - 1].value) ++flips;
  }
  evaluation.value = static_cast<double>(flips);
  evaluation.condition = flips > spec.max_flips;
  evaluation.reason = spec.metric + " changed " + std::to_string(flips) +
                      "x in " + std::to_string(spec.flap_window_ms) +
                      "ms (max " + std::to_string(spec.max_flips) + ")";
  return evaluation;
}

void SloEngine::step_instance(const SloSpec& spec, Instance& instance,
                              const Evaluation& evaluation,
                              std::uint64_t now_ms, std::uint64_t cycle,
                              const std::string& trace_id,
                              std::vector<AlertTransition>& transitions) {
  Alert& alert = instance.alert;
  alert.value = evaluation.value;
  alert.reason = evaluation.reason;

  const auto transition = [&](AlertState to) {
    AlertTransition record;
    record.from = alert.state;
    alert.state = to;
    alert.since_ms = now_ms;
    alert.cycle = cycle;
    alert.trace_id = trace_id;
    record.alert = alert;
    transitions.push_back(record);
    recent_.push_back(std::move(record));
    while (recent_.size() > options_.recent_capacity) recent_.pop_front();
    IQB_LOG(kWarn) << "alert " << alert.name << labels_to_string(alert.labels)
                   << " " << alert_state_name(transitions.back().from) << "->"
                   << alert_state_name(to) << " value="
                   << format_value(alert.value) << " (" << alert.reason
                   << ") cycle=" << cycle;
  };

  const bool condition = evaluation.known && evaluation.condition;
  if (condition) {
    instance.clear_since_ms = 0;
    switch (alert.state) {
      case AlertState::kInactive:
      case AlertState::kResolved:
        instance.pending_since_ms = now_ms;
        if (spec.for_ms == 0) {
          transition(AlertState::kFiring);
        } else {
          transition(AlertState::kPending);
        }
        break;
      case AlertState::kPending:
        if (now_ms - instance.pending_since_ms >= spec.for_ms) {
          transition(AlertState::kFiring);
        }
        break;
      case AlertState::kFiring:
        break;
    }
  } else {
    switch (alert.state) {
      case AlertState::kInactive:
      case AlertState::kResolved:
        break;
      case AlertState::kPending:
        // A pending alert that clears never fired; drop it silently
        // back to inactive (still a logged transition for forensics).
        transition(AlertState::kInactive);
        break;
      case AlertState::kFiring:
        if (instance.clear_since_ms == 0) instance.clear_since_ms = now_ms;
        if (now_ms - instance.clear_since_ms >= spec.resolve_ms) {
          transition(AlertState::kResolved);
        }
        break;
    }
  }
}

void SloEngine::evaluate_spec(const SloSpec& spec, std::uint64_t now_ms,
                              std::uint64_t cycle,
                              const std::string& trace_id,
                              std::vector<AlertTransition>& transitions) {
  const std::size_t spec_index = static_cast<std::size_t>(&spec -
                                                          options_.specs.data());
  // Burn-rate specs aggregate across matching series (one logical
  // request stream split over {code=...}); the others evaluate each
  // matching series as its own alert instance.
  std::vector<LabelSet> targets;
  if (spec.type == SloSpec::Type::kBurnRate) {
    targets.push_back(spec.labels);
  } else {
    targets = history_->label_sets(spec.metric, spec.labels);
    // Keep already-tracked instances (e.g. a series that stopped
    // reporting) so firing alerts can still resolve.
    for (const auto& [key, instance] : instances_) {
      if (key.first != spec_index) continue;
      if (std::find(targets.begin(), targets.end(), key.second) ==
          targets.end()) {
        targets.push_back(key.second);
      }
    }
    std::sort(targets.begin(), targets.end());
  }

  for (const LabelSet& labels : targets) {
    auto [it, inserted] =
        instances_.try_emplace(std::make_pair(spec_index, labels));
    Instance& instance = it->second;
    if (inserted) {
      instance.alert.name = spec.name;
      instance.alert.labels = labels;
    }
    Evaluation evaluation;
    switch (spec.type) {
      case SloSpec::Type::kBurnRate:
        evaluation = evaluate_burn_rate(spec, now_ms);
        break;
      case SloSpec::Type::kThreshold:
        evaluation = evaluate_threshold(spec, labels, now_ms);
        break;
      case SloSpec::Type::kAnomaly:
        evaluation = evaluate_anomaly(spec, labels, instance);
        break;
      case SloSpec::Type::kFlap:
        evaluation = evaluate_flap(spec, labels, now_ms);
        break;
    }
    step_instance(spec, instance, evaluation, now_ms, cycle, trace_id,
                  transitions);
  }
}

std::vector<AlertTransition> SloEngine::evaluate(std::uint64_t now_ms,
                                                 std::uint64_t cycle,
                                                 const std::string& trace_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++evaluations_;
  std::vector<AlertTransition> transitions;
  for (const SloSpec& spec : options_.specs) {
    evaluate_spec(spec, now_ms, cycle, trace_id, transitions);
  }
  return transitions;
}

std::vector<Alert> SloEngine::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Alert> out;
  for (const auto& [key, instance] : instances_) {
    if (instance.alert.state == AlertState::kPending ||
        instance.alert.state == AlertState::kFiring) {
      out.push_back(instance.alert);
    }
  }
  return out;
}

std::vector<AlertTransition> SloEngine::recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {recent_.begin(), recent_.end()};
}

std::uint64_t SloEngine::evaluations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evaluations_;
}

util::JsonValue SloEngine::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  util::JsonArray active_json;
  for (const auto& [key, instance] : instances_) {
    if (instance.alert.state == AlertState::kPending ||
        instance.alert.state == AlertState::kFiring) {
      active_json.emplace_back(alert_to_json(instance.alert));
    }
  }
  util::JsonArray recent_json;
  for (const AlertTransition& record : recent_) {
    util::JsonObject entry;
    entry.emplace("from", alert_state_name(record.from));
    entry.emplace("alert", alert_to_json(record.alert));
    recent_json.emplace_back(std::move(entry));
  }
  util::JsonObject out;
  out.emplace("specs", static_cast<std::int64_t>(options_.specs.size()));
  out.emplace("evaluations", static_cast<std::int64_t>(evaluations_));
  out.emplace("active", std::move(active_json));
  out.emplace("recent", std::move(recent_json));
  return util::JsonValue(std::move(out));
}

}  // namespace iqb::obs
