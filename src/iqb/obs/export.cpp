#include "iqb/obs/export.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>

namespace iqb::obs {

namespace {

const char* kind_name(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

/// HELP text escaping: backslash and newline only (per the format).
std::string escape_help(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void append_label_pairs(std::string& out, const LabelSet& labels,
                        const std::string* extra_key = nullptr,
                        const std::string* extra_value = nullptr) {
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += prometheus_escape(value);
    out += '"';
  }
  if (extra_key) {
    if (!first) out += ',';
    out += *extra_key;
    out += "=\"";
    out += prometheus_escape(*extra_value);
    out += '"';
  }
  out += '}';
}

void append_sample_line(std::string& out, const std::string& name,
                        const LabelSet& labels, double value,
                        const std::string* extra_key = nullptr,
                        const std::string* extra_value = nullptr) {
  out += name;
  if (!labels.empty() || extra_key) {
    append_label_pairs(out, labels, extra_key, extra_value);
  }
  out += ' ';
  out += format_metric_value(value);
  out += '\n';
}

util::JsonObject labels_to_json(const LabelSet& labels) {
  util::JsonObject out;
  for (const auto& [key, value] : labels) out.emplace(key, value);
  return out;
}

}  // namespace

std::string prometheus_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string format_metric_value(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc()) return "0";  // cannot happen for finite doubles
  return std::string(buffer, ptr);
}

std::string to_prometheus(const MetricsRegistry& registry) {
  const auto families = registry.snapshot();
  std::string out;
  static const std::string kLe = "le";
  for (const auto& family : families) {
    out += "# HELP ";
    out += family.name;
    out += ' ';
    out += escape_help(family.help);
    out += "\n# TYPE ";
    out += family.name;
    out += ' ';
    out += kind_name(family.kind);
    out += '\n';
    for (const auto& sample : family.samples) {
      append_sample_line(out, family.name, sample.labels, sample.value);
    }
    for (const auto& histogram : family.histograms) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < histogram.upper_bounds.size(); ++i) {
        cumulative += histogram.counts[i];
        const std::string le = format_metric_value(histogram.upper_bounds[i]);
        append_sample_line(out, family.name + "_bucket", histogram.labels,
                           static_cast<double>(cumulative), &kLe, &le);
      }
      cumulative += histogram.counts.back();
      static const std::string kInf = "+Inf";
      append_sample_line(out, family.name + "_bucket", histogram.labels,
                         static_cast<double>(cumulative), &kLe, &kInf);
      append_sample_line(out, family.name + "_sum", histogram.labels,
                         histogram.sum);
      append_sample_line(out, family.name + "_count", histogram.labels,
                         static_cast<double>(histogram.count));
    }
  }
  return out;
}

util::JsonValue metrics_to_json(const MetricsRegistry& registry) {
  const auto families = registry.snapshot();
  util::JsonArray metrics;
  for (const auto& family : families) {
    util::JsonObject entry;
    entry.emplace("name", family.name);
    entry.emplace("help", family.help);
    entry.emplace("type", kind_name(family.kind));
    util::JsonArray samples;
    for (const auto& sample : family.samples) {
      util::JsonObject s;
      if (!sample.labels.empty()) {
        s.emplace("labels", labels_to_json(sample.labels));
      }
      s.emplace("value", sample.value);
      samples.push_back(std::move(s));
    }
    for (const auto& histogram : family.histograms) {
      util::JsonObject s;
      if (!histogram.labels.empty()) {
        s.emplace("labels", labels_to_json(histogram.labels));
      }
      util::JsonArray buckets;
      for (std::size_t i = 0; i < histogram.upper_bounds.size(); ++i) {
        util::JsonObject bucket;
        bucket.emplace("le", histogram.upper_bounds[i]);
        bucket.emplace("count",
                       static_cast<std::int64_t>(histogram.counts[i]));
        buckets.push_back(std::move(bucket));
      }
      util::JsonObject overflow;
      overflow.emplace("le", "+Inf");
      overflow.emplace("count",
                       static_cast<std::int64_t>(histogram.counts.back()));
      buckets.push_back(std::move(overflow));
      s.emplace("buckets", std::move(buckets));
      s.emplace("sum", histogram.sum);
      s.emplace("count", static_cast<std::int64_t>(histogram.count));
      samples.push_back(std::move(s));
    }
    entry.emplace("samples", std::move(samples));
    metrics.push_back(std::move(entry));
  }
  util::JsonObject root;
  root.emplace("metrics", std::move(metrics));
  return root;
}

namespace {

util::JsonValue span_to_json(
    const std::vector<Tracer::SpanRecord>& spans,
    const std::vector<std::vector<std::size_t>>& children, std::size_t id,
    std::uint64_t base_ns) {
  const Tracer::SpanRecord& span = spans[id];
  util::JsonObject out;
  out.emplace("name", span.name);
  out.emplace("start_ns",
              static_cast<std::int64_t>(span.start_ns - base_ns));
  out.emplace("duration_ns", static_cast<std::int64_t>(span.duration_ns()));
  if (!span.ended) out.emplace("ended", false);
  if (!span.attributes.empty()) {
    // Later set_attribute calls win, matching "overwrite" semantics.
    util::JsonObject attributes;
    for (const auto& [key, value] : span.attributes) {
      attributes.insert_or_assign(key, value);
    }
    out.emplace("attributes", std::move(attributes));
  }
  util::JsonArray kids;
  for (std::size_t child : children[id]) {
    kids.push_back(span_to_json(spans, children, child, base_ns));
  }
  out.emplace("children", std::move(kids));
  return out;
}

}  // namespace

util::JsonValue trace_to_json(const Tracer& tracer) {
  const auto spans = tracer.spans();
  std::uint64_t base_ns = 0;
  if (!spans.empty()) {
    base_ns = std::numeric_limits<std::uint64_t>::max();
    for (const auto& span : spans) base_ns = std::min(base_ns, span.start_ns);
  }
  std::vector<std::vector<std::size_t>> children(spans.size());
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent == Tracer::kNoSpan) {
      roots.push_back(i);
    } else {
      children[spans[i].parent].push_back(i);
    }
  }
  util::JsonArray trace;
  for (std::size_t root : roots) {
    trace.push_back(span_to_json(spans, children, root, base_ns));
  }
  util::JsonObject out;
  out.emplace("trace", std::move(trace));
  return out;
}

}  // namespace iqb::obs
