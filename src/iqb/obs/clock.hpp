// Injectable monotonic time source for the observability layer.
//
// Telemetry needs timestamps; tests need determinism. Everything in
// iqb::obs that reads time does so through this interface, so unit
// tests inject a ManualClock and get byte-stable traces while
// production code falls back to the process steady clock. No code
// outside clock.cpp touches std::chrono::steady_clock.
#pragma once

#include <cstdint>

namespace iqb::obs {

/// Monotonic nanosecond clock. Implementations must never go
/// backwards between calls on the same instance.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::uint64_t now_ns() = 0;
};

/// Process-wide monotonic clock (steady_clock under the hood).
/// Shared instance; now_ns() is thread-safe.
Clock& steady_clock();

/// Test clock: time moves only when told to. `auto_advance_ns`, when
/// non-zero, advances the clock by that much *after* every now_ns()
/// read, which gives spans deterministic non-zero durations without
/// any explicit advance calls in the code under test.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::uint64_t start_ns = 0,
                       std::uint64_t auto_advance_ns = 0) noexcept
      : now_ns_(start_ns), auto_advance_ns_(auto_advance_ns) {}

  std::uint64_t now_ns() override {
    const std::uint64_t t = now_ns_;
    now_ns_ += auto_advance_ns_;
    return t;
  }

  void advance_ns(std::uint64_t delta) noexcept { now_ns_ += delta; }
  void advance_ms(std::uint64_t delta) noexcept {
    now_ns_ += delta * 1'000'000ull;
  }

 private:
  std::uint64_t now_ns_;
  std::uint64_t auto_advance_ns_;
};

}  // namespace iqb::obs
