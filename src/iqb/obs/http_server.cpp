#include "iqb/obs/http_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>

#include "iqb/obs/clock.hpp"
#include "iqb/obs/metrics.hpp"
#include "iqb/obs/request_stats.hpp"
#include "iqb/obs/span_buffer.hpp"
#include "iqb/obs/trace.hpp"
#include "iqb/util/log.hpp"
#include "iqb/util/strings.hpp"

namespace iqb::obs {

namespace {

void set_io_timeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Write the whole buffer; MSG_NOSIGNAL so a peer that hung up mid-
/// response yields EPIPE instead of killing the process.
bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// A header name or value containing CR/LF would let a handler-
/// supplied string terminate the header block early and smuggle
/// extra headers (or a second response) past the renderer.
bool header_field_safe(std::string_view field) noexcept {
  return field.find('\r') == std::string_view::npos &&
         field.find('\n') == std::string_view::npos;
}

std::string render_response(const HttpResponse& response) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += http_status_reason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  for (const auto& [name, value] : response.headers) {
    if (name.empty() || !header_field_safe(name) ||
        !header_field_safe(value)) {
      IQB_LOG(kWarn) << "dropping response header with CR/LF or empty name";
      continue;
    }
    out += "\r\n";
    out += name;
    out += ": ";
    out += value;
  }
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

void send_response(int fd, const HttpResponse& response) {
  send_all(fd, render_response(response));
}

enum class ReadHeadResult { kOk, kDisconnect, kTooLarge };

/// Read until the end of the header block (CRLFCRLF), bounded by
/// `max_bytes`. The bound covers the request line + headers only:
/// once the blank line is in the buffer we stop reading, so body
/// bytes that arrived in the same packet sit after it in `head` and
/// the rest stays in the socket for read_request_body. A client still
/// streaming headers past the bound gets kTooLarge (-> 431) instead
/// of growing our buffer.
ReadHeadResult read_request_head(int fd, std::string& head,
                                 std::size_t max_bytes) {
  char buffer[2048];
  for (;;) {
    if (head.find("\r\n\r\n") != std::string::npos) return ReadHeadResult::kOk;
    if (head.size() >= max_bytes) return ReadHeadResult::kTooLarge;
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) return ReadHeadResult::kDisconnect;  // timeout/reset/EOF
    head.append(buffer, static_cast<std::size_t>(n));
  }
}

/// Read the remainder of a Content-Length body whose first bytes may
/// already sit in `body` (they arrived with the header packet).
/// Returns false on disconnect/timeout before the declared length.
bool read_request_body(int fd, std::string& body, std::size_t content_length) {
  if (body.size() > content_length) body.resize(content_length);
  char buffer[4096];
  while (body.size() < content_length) {
    const std::size_t want =
        std::min(sizeof(buffer), content_length - body.size());
    const ssize_t n = ::recv(fd, buffer, want, 0);
    if (n <= 0) return false;
    body.append(buffer, static_cast<std::size_t>(n));
  }
  return true;
}

/// Parse "GET /path?query HTTP/1.1" into method + path + query.
bool parse_request_line(const std::string& head, HttpRequest& request) {
  const std::size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) return false;
  const std::string line = head.substr(0, line_end);
  const std::size_t first_space = line.find(' ');
  if (first_space == std::string::npos) return false;
  const std::size_t second_space = line.find(' ', first_space + 1);
  if (second_space == std::string::npos) return false;
  request.method = line.substr(0, first_space);
  std::string target =
      line.substr(first_space + 1, second_space - first_space - 1);
  const std::size_t query = target.find('?');
  if (query != std::string::npos) {
    request.query = target.substr(query + 1);
    target.resize(query);
  }
  if (target.empty() || target[0] != '/') return false;
  request.path = std::move(target);
  return util::starts_with(line.substr(second_space + 1), "HTTP/1.");
}

/// Parse the header lines after the request line into (lowercased
/// name, trimmed value) pairs. Malformed lines (no colon) are skipped
/// — telemetry serving has no reason to hard-fail on a stray line the
/// request line already validated past.
void parse_request_headers(const std::string& head, HttpRequest& request) {
  const std::size_t header_end = head.find("\r\n\r\n");
  if (header_end == std::string::npos) return;
  std::size_t pos = head.find("\r\n") + 2;
  while (pos < header_end) {
    const std::size_t line_end = head.find("\r\n", pos);
    const std::string_view line(head.data() + pos, line_end - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      request.headers.emplace_back(
          util::to_lower(std::string(util::trim(line.substr(0, colon)))),
          std::string(util::trim(line.substr(colon + 1))));
    }
    pos = line_end + 2;
  }
}

/// Client "ip:port" of a connected socket, or "" if the kernel won't
/// say (already-reset connection).
std::string peer_address(int fd) {
  sockaddr_in address{};
  socklen_t len = sizeof(address);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&address), &len) != 0) {
    return {};
  }
  char ip[INET_ADDRSTRLEN] = {};
  if (::inet_ntop(AF_INET, &address.sin_addr, ip, sizeof(ip)) == nullptr) {
    return {};
  }
  return std::string(ip) + ":" + std::to_string(ntohs(address.sin_port));
}

}  // namespace

std::string HttpRequest::header(const std::string& name) const {
  const std::string wanted = util::to_lower(name);
  for (const auto& [key, value] : headers) {
    if (key == wanted) return value;
  }
  return {};
}

std::string query_param(const std::string& query, std::string_view key) {
  for (const std::string& pair : util::split(query, '&')) {
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) continue;
    if (pair.compare(0, eq, key) == 0) return pair.substr(eq + 1);
  }
  return {};
}

const char* http_status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

HttpServer::HttpServer(Options options, HttpHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  if (options_.worker_threads == 0) options_.worker_threads = 1;
  if (options_.max_pending == 0) options_.max_pending = 1;
  if (options_.max_request_bytes == 0) options_.max_request_bytes = 1024;
}

HttpServer::~HttpServer() { stop(); }

util::Result<void> HttpServer::start() {
  if (running_) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "HttpServer already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::make_error(util::ErrorCode::kIoError,
                            std::string("socket: ") + std::strerror(errno));
  }
  int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                  &address.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "bad bind address '" + options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::make_error(util::ErrorCode::kIoError,
                            "bind/listen " + options_.bind_address + ":" +
                                std::to_string(options_.port) + ": " + detail);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  bound_port_ = ntohs(bound.sin_port);

  stopping_ = false;
  running_ = true;
  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  return {};
}

void HttpServer::stop() { shutdown_threads(/*graceful=*/false); }

void HttpServer::drain() { shutdown_threads(/*graceful=*/true); }

void HttpServer::shutdown_threads(bool graceful) {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (graceful) {
      draining_ = true;  // workers finish the queue, then exit
    } else {
      stopping_ = true;  // workers exit immediately
    }
  }
  // Unblock accept(): shutdown makes the blocking call return on
  // Linux; close alone is not guaranteed to.
  ::shutdown(listen_fd_, SHUT_RDWR);
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Under a hard stop anything still queued is closed unanswered: the
  // peer sees a reset, which is honest — nobody processed the
  // request. After a drain the queue is empty by construction.
  for (int fd : pending_) ::close(fd);
  pending_.clear();
  running_ = false;
}

void HttpServer::accept_loop() {
  // Transient accept() failures (EMFILE/ENFILE/ENOBUFS while someone
  // else leaks fds, for instance) must never kill the acceptor: the
  // server would look alive — workers idle, port bound — but never
  // answer again. Back off with a doubling delay instead, and keep
  // the delay interruptible so stop()/drain() still join promptly.
  int backoff_ms = 0;
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (stopping_ || draining_) {
        if (fd >= 0) ::close(fd);
        return;
      }
      if (fd >= 0 && pending_.size() < options_.max_pending) {
        backoff_ms = 0;
        pending_.push_back(fd);
        queue_cv_.notify_one();
        continue;
      }
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      accept_errors_.fetch_add(1);
      if (options_.metrics) {
        options_.metrics
            ->counter("http_accept_errors_total",
                      "accept() failures survived by the acceptor "
                      "(EMFILE/ENFILE/ENOBUFS and friends)")
            .inc();
      }
      backoff_ms = backoff_ms == 0 ? 5 : std::min(backoff_ms * 2, 1000);
      IQB_LOG(kWarn) << "telemetry server accept failed: "
                     << std::strerror(errno) << "; retrying in "
                     << backoff_ms << " ms";
      std::unique_lock<std::mutex> lock(queue_mutex_);
      if (queue_cv_.wait_for(lock, std::chrono::milliseconds(backoff_ms),
                             [this] { return stopping_ || draining_; })) {
        return;
      }
      continue;
    }
    backoff_ms = 0;
    // Queue full: shed load loudly rather than buffering unboundedly.
    // The 503 is best-effort and strictly non-blocking — a slow (or
    // malicious) client on the shed path must not stall accepts for
    // everyone else — so one send attempt, then close either way.
    shed_connection(fd);
  }
}

void HttpServer::shed_connection(int fd) {
  shed_total_.fetch_add(1);
  if (options_.metrics) {
    options_.metrics
        ->counter("http_requests_shed_total",
                  "Connections answered 503 by the acceptor because the "
                  "pending queue was full")
        .inc();
  }
  static const std::string kOverloaded = render_response(
      {503, "application/json", "{\"error\":\"server overloaded\"}\n"});
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  ::send(fd, kOverloaded.data(), kOverloaded.size(),
         MSG_NOSIGNAL | MSG_DONTWAIT);
  ::close(fd);
}

void HttpServer::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_ || draining_ || !pending_.empty();
      });
      if (stopping_) return;
      if (pending_.empty()) return;  // draining and nothing left
      fd = pending_.front();
      pending_.pop_front();
    }
    handle_connection(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  const std::uint64_t started_ns = steady_clock().now_ns();
  set_io_timeout(fd, options_.io_timeout_ms);
  std::string head;
  HttpRequest request;
  request.peer = peer_address(fd);

  // One exit path for every outcome — early rejections included — so
  // the access log sees the 431s and 400s a probe sends, not just the
  // requests the handler answered.
  const auto finish = [&](const HttpResponse& response) {
    send_response(fd, response);
    ::close(fd);
    if (options_.request_stats != nullptr) {
      RequestStats::Record record;
      record.trace_id = request.trace_id;
      record.peer = request.peer;
      record.method = request.method;
      record.path = request.path;
      record.status = response.status;
      record.bytes = response.body.size();
      record.duration_ms =
          static_cast<double>(steady_clock().now_ns() - started_ns) / 1e6;
      options_.request_stats->record(record);
    }
  };

  const ReadHeadResult read =
      read_request_head(fd, head, options_.max_request_bytes);
  if (read == ReadHeadResult::kTooLarge) {
    finish({431, "application/json",
            "{\"error\":\"request header section too large\"}\n"});
    return;
  }
  if (read != ReadHeadResult::kOk || !parse_request_line(head, request)) {
    finish({400, "application/json", "{\"error\":\"malformed request\"}\n"});
    return;
  }
  parse_request_headers(head, request);
  if (request.method != "GET" && request.method != "HEAD" &&
      request.method != "POST") {
    finish({405, "application/json", "{\"error\":\"method not allowed\"}\n"});
    return;
  }
  if (request.method == "POST") {
    // The body is bounded by its *declared* length, checked before a
    // single body byte is consumed, so an oversized upload costs one
    // header read, not max_body_bytes of buffering. A POST with no
    // Content-Length header carries no body (RFC 9110 §8.6); a header
    // that is present but unparsable is refused.
    const std::string declared_header = request.header("content-length");
    std::size_t content_length = 0;
    if (!declared_header.empty()) {
      const auto declared = util::parse_int(declared_header);
      if (!declared.ok() || declared.value() < 0) {
        finish({400, "application/json",
                "{\"error\":\"POST requires a valid Content-Length\"}\n"});
        return;
      }
      content_length = static_cast<std::size_t>(declared.value());
    }
    if (content_length > options_.max_body_bytes) {
      finish({413, "application/json",
              "{\"error\":\"body exceeds " +
                  std::to_string(options_.max_body_bytes) + " bytes\"}\n"});
      return;
    }
    request.body = head.substr(head.find("\r\n\r\n") + 4);
    if (!read_request_body(fd, request.body, content_length)) {
      finish({400, "application/json",
              "{\"error\":\"body shorter than Content-Length\"}\n"});
      return;
    }
  }

  // Context extraction: an inbound traceparent names the caller's
  // trace and span. With a span sink configured, the handler runs
  // under a server span parented to that remote span (or a fresh
  // local trace when the caller sent none); without one, the request
  // path — and every response byte — is exactly the untraced one.
  const std::optional<SpanContext> inbound =
      parse_traceparent(request.header(kTraceparentHeader));
  if (inbound) request.trace_id = inbound->trace_id;

  HttpResponse response;
  if (options_.spans != nullptr) {
    if (request.trace_id.empty()) request.trace_id = generate_trace_id();
    Tracer tracer;
    tracer.set_trace_id(request.trace_id);
    if (inbound) tracer.set_remote_parent(inbound->span_uid);
    {
      util::ScopedLogTrace log_trace(request.trace_id);
      ScopedSpan span(&tracer, "http.server");
      span.set_attribute("method", request.method);
      span.set_attribute("path", request.path);
      if (!request.peer.empty()) span.set_attribute("peer", request.peer);
      response = handler_(request);
      span.set_attribute("status", std::to_string(response.status));
    }
    options_.spans->ingest(tracer);
    response.headers.emplace_back("X-IQB-Trace", request.trace_id);
  } else {
    response = handler_(request);
  }
  if (request.method == "HEAD") response.body.clear();
  finish(response);
}

}  // namespace iqb::obs
