// Bounded buffer of recently completed spans, for live inspection.
//
// A long-lived daemon cannot keep a Tracer forever — the span vector
// grows without bound. Instead each pipeline cycle runs with a fresh
// Tracer and, when the cycle completes, its *ended* spans are folded
// into a SpanRingBuffer tagged with the cycle's trace id. The buffer
// keeps the newest `capacity` spans and drops the oldest, which is
// exactly what a /tracez page wants: "what did the last few cycles
// do", not "everything since boot".
//
// Thread-safe: the daemon thread pushes while server threads snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "iqb/obs/trace.hpp"
#include "iqb/util/json.hpp"

namespace iqb::obs {

/// One finished span, denormalized for display: the parent link is
/// replaced by the root-relative depth so /tracez can indent without
/// rebuilding the tree.
struct CompletedSpan {
  std::string trace_id;
  std::string name;
  std::size_t depth = 0;       ///< 0 for roots.
  std::uint64_t span_uid = 0;  ///< Fleet-unique span id (Tracer uid).
  /// Parent's uid — possibly a *remote* span's (a span in another
  /// process's buffer), which is what lets /fleet/tracez stitch shard
  /// dumps under the coordinator's tree. 0 for an unparented root.
  std::uint64_t parent_uid = 0;
  std::uint64_t start_ns = 0;  ///< Rebased to the cycle's first span.
  std::uint64_t duration_ns = 0;
  std::vector<std::pair<std::string, std::string>> attributes;
};

class SpanRingBuffer {
 public:
  explicit SpanRingBuffer(std::size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  SpanRingBuffer(const SpanRingBuffer&) = delete;
  SpanRingBuffer& operator=(const SpanRingBuffer&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const;

  /// Append one span, evicting the oldest if full.
  void push(CompletedSpan span);

  /// Fold every *ended* span of `tracer` into the buffer (begin order,
  /// timestamps rebased to the tracer's earliest start), tagged with
  /// `trace_id`. Returns how many spans were ingested.
  std::size_t ingest(const Tracer& tracer, const std::string& trace_id);

  /// As above, tagged with the tracer's own trace id.
  std::size_t ingest(const Tracer& tracer);

  /// Oldest-to-newest copy of the buffered spans.
  std::vector<CompletedSpan> recent() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<CompletedSpan> spans_;
};

/// JSON document {"spans":[...],"count":N} for the /tracez endpoint:
/// oldest to newest, each span carrying trace id ("trace"), name,
/// depth, span/parent uids as 16-hex strings ("span"/"parent_span",
/// the latter "" for roots), rebased start and duration, and
/// attributes. The field set is a stability contract (golden-tested):
/// iqb_tracecat and /fleet/tracez consume these dumps across
/// processes and releases. A non-empty `trace_filter` keeps only
/// spans of that trace (the /tracez?trace=<id> form).
util::JsonValue tracez_to_json(const SpanRingBuffer& buffer,
                               const std::string& trace_filter = "");

}  // namespace iqb::obs
