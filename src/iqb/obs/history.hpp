// In-process time-series history: a fixed-memory ring-buffer TSDB.
//
// /metrics is a point-in-time scrape; nothing in a scrape can answer
// "has this been drifting for an hour?". TimeSeriesStore closes that
// gap without an external Prometheus: every daemon cycle it samples
// the live MetricsRegistry (counters, gauges, and each histogram's
// cumulative buckets) plus whatever per-region score values the
// daemon appends directly, into one bounded ring buffer per series.
//
// Memory is fixed by construction: at most `max_series` series, each
// a ring of at most `capacity_per_series` points (16 bytes/point), so
// a default store tops out at a few MiB no matter how long the daemon
// runs. A registry that tries to mint more series than the bound gets
// the excess dropped and counted (dropped_series()), never an
// allocation storm.
//
// Queries are windowed, matching how the SLO layer consumes history:
//   * rate()/delta over counters (last - first inside the window);
//   * min/max/mean/p95 over gauge samples;
//   * per-bucket deltas over histogram cumulative counts (each bucket
//     is its own counter series `<name>_bucket{le=...}`, exactly the
//     Prometheus data model), which is what burn-rate math needs.
//
// Timestamps come from the caller (the daemon passes an injected
// Clock), so tests with a ManualClock get byte-stable documents; the
// /historyz JSON is ordered by (family, labels) via std::map, making
// the serialization deterministic.
//
// Thread-safe: the daemon loop appends while HTTP workers query.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "iqb/obs/metrics.hpp"
#include "iqb/util/json.hpp"

namespace iqb::obs {

/// One timestamped observation.
struct SamplePoint {
  std::uint64_t t_ms = 0;
  double value = 0.0;
};

/// How a series' points combine over a window. Counters report
/// delta/rate; gauges report the distribution (min/max/mean/p95).
enum class SeriesKind { kCounterSeries, kGaugeSeries };

/// Windowed summary of one series.
struct WindowStats {
  std::size_t samples = 0;
  std::uint64_t t_first_ms = 0;
  std::uint64_t t_last_ms = 0;
  double first = 0.0;
  double last = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p95 = 0.0;
  double delta = 0.0;       ///< last - first (counter increase).
  double rate_per_s = 0.0;  ///< delta / covered seconds (0 if <2 samples).
};

class TimeSeriesStore {
 public:
  struct Options {
    /// Ring size per series; the oldest point is evicted when full.
    std::size_t capacity_per_series = 512;
    /// Hard bound on distinct series; appends past it are dropped and
    /// counted, so a label explosion cannot grow memory.
    std::size_t max_series = 4096;
  };

  TimeSeriesStore();  ///< Default Options.
  explicit TimeSeriesStore(Options options);
  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Append one point to (name, labels). Points must arrive in
  /// non-decreasing time order per series (the samplers guarantee
  /// this); a point older than the series' newest is dropped.
  void append(const std::string& name, const LabelSet& labels,
              SeriesKind kind, std::uint64_t t_ms, double value);

  /// Sample every family in the registry at time `t_ms`: counters and
  /// gauges verbatim; each histogram as cumulative-count counter
  /// series `<name>_bucket{le=...}` (including "+Inf") plus
  /// `<name>_count` and `<name>_sum`.
  void sample_registry(const MetricsRegistry& registry, std::uint64_t t_ms);

  /// Windowed summary of one exact series, or nullopt if the series
  /// is unknown or has no point in [now_ms - window_ms, now_ms].
  std::optional<WindowStats> query(const std::string& name,
                                   const LabelSet& labels,
                                   std::uint64_t window_ms,
                                   std::uint64_t now_ms) const;

  /// Raw points of one series inside the window, oldest to newest.
  std::vector<SamplePoint> points_in_window(const std::string& name,
                                            const LabelSet& labels,
                                            std::uint64_t window_ms,
                                            std::uint64_t now_ms) const;

  /// Newest point of one series, if any.
  std::optional<SamplePoint> latest(const std::string& name,
                                    const LabelSet& labels) const;

  /// Every label set recorded under `name` whose labels contain all
  /// of `match` (sorted by label set — deterministic).
  std::vector<LabelSet> label_sets(const std::string& name,
                                   const LabelSet& match = {}) const;

  /// Sum of window deltas (last - first per series) across every
  /// series of `name` whose labels contain all of `match`. The
  /// burn-rate primitive: histogram families split one logical series
  /// across {code=...} label sets; the SLO cares about their sum.
  double sum_window_delta(const std::string& name, const LabelSet& match,
                          std::uint64_t window_ms,
                          std::uint64_t now_ms) const;

  /// Distinct values of label `key` across series of `name` (sorted).
  std::vector<std::string> distinct_label_values(const std::string& name,
                                                 const std::string& key) const;

  std::size_t series_count() const;
  std::size_t dropped_series() const;

  /// The /historyz document. `family_filter` empty lists every
  /// family; otherwise only series of that family are emitted.
  /// `include_points` additionally emits the raw [t_ms, value] pairs
  /// (sparkline feed for iqb_top). Ordering is byte-stable.
  util::JsonValue to_json(const std::string& family_filter,
                          std::uint64_t window_ms, std::uint64_t now_ms,
                          bool include_points) const;

 private:
  /// Fixed-capacity ring of points, oldest overwritten first.
  struct Series {
    SeriesKind kind = SeriesKind::kGaugeSeries;
    std::vector<SamplePoint> points;  ///< Grows to capacity, then wraps.
    std::size_t head = 0;             ///< Next write slot once full.
    bool full = false;

    std::vector<SamplePoint> ordered() const;
    std::optional<SamplePoint> newest() const;
  };

  using SeriesMap = std::map<LabelSet, Series>;

  const Series* find(const std::string& name, const LabelSet& labels) const;
  static bool labels_match(const LabelSet& labels, const LabelSet& match);
  static WindowStats stats_of(const std::vector<SamplePoint>& points);

  Options options_;
  mutable std::mutex mutex_;
  std::map<std::string, SeriesMap> families_;
  std::size_t series_count_ = 0;
  std::size_t dropped_series_ = 0;
};

}  // namespace iqb::obs
