// Per-request HTTP server telemetry: counters, latency histograms and
// a bounded in-memory access log.
//
// obs::HttpServer handles every connection — including the ones its
// handler never sees (malformed request lines, oversized heads,
// unsupported methods) — so this layer lives *there*, one record()
// call per connection, rather than in the routing layer. It feeds
// three places:
//
//   * the shared MetricsRegistry: http_requests_total{path},
//     http_responses_total{class} (status class 2xx/3xx/4xx/5xx) and
//     http_request_duration_ms{path,code} fixed-bucket histograms,
//     all exported through the existing byte-stable Prometheus/JSON
//     exporters;
//   * a bounded ring of recent requests — trace id, peer, method,
//     path, status, bytes, duration — served on /requestz;
//   * the log: a request slower than slow_request_ms is promoted to
//     WARN with its trace id, so the offender is greppable (and its
//     full trace findable in /tracez) without scraping histograms.
//
// Path labels are bounded-cardinality: only paths in known_paths are
// labeled verbatim, everything else pools into "other", so a URL
// scanner cannot grow the registry. The access log keeps the real
// path.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "iqb/util/json.hpp"

namespace iqb::obs {

class MetricsRegistry;

/// Fixed upper bounds (milliseconds) for the per-request latency
/// histograms: sub-millisecond scrapes up to tens of seconds.
const std::vector<double>& request_duration_buckets_ms();

class RequestStats {
 public:
  struct Options {
    /// Non-owning; null records no metrics (the access log and slow-
    /// request promotion still work).
    MetricsRegistry* metrics = nullptr;
    /// Access-log bound; the oldest entry is evicted when full.
    std::size_t access_log_capacity = 256;
    /// Requests at or over this wall time are promoted to a WARN log
    /// line carrying their trace id; 0 disables promotion.
    std::uint64_t slow_request_ms = 500;
    /// Paths labeled verbatim in metrics; everything else is "other".
    std::vector<std::string> known_paths;
  };

  /// One handled request, as recorded by the server.
  struct Record {
    std::string trace_id;  ///< Empty when the request carried none.
    std::string peer;      ///< "ip:port" of the client.
    std::string method;
    std::string path;      ///< Actual path ("" if unparseable).
    int status = 0;
    std::uint64_t bytes = 0;      ///< Response body bytes sent.
    double duration_ms = 0.0;     ///< Read -> response-sent wall time.
  };

  explicit RequestStats(Options options);
  RequestStats(const RequestStats&) = delete;
  RequestStats& operator=(const RequestStats&) = delete;

  /// Record one handled request. Thread-safe (called from every
  /// server worker).
  void record(const Record& record);

  std::uint64_t total() const;
  std::uint64_t slow_total() const;

  /// Oldest-to-newest copy of the access log.
  std::vector<Record> recent() const;

  /// The /requestz document: {"count","slow_count","capacity",
  /// "slow_request_ms","requests":[...]} with requests oldest to
  /// newest.
  util::JsonValue to_json() const;

 private:
  const std::string& path_label(const std::string& path) const;

  Options options_;
  mutable std::mutex mutex_;
  std::deque<Record> log_;
  std::uint64_t total_ = 0;
  std::uint64_t slow_total_ = 0;
};

}  // namespace iqb::obs
