#include "iqb/obs/telemetry_server.hpp"

#include "iqb/obs/clock.hpp"
#include "iqb/obs/export.hpp"
#include "iqb/obs/request_stats.hpp"
#include "iqb/obs/trace.hpp"
#include "iqb/util/json.hpp"
#include "iqb/util/version.hpp"

namespace iqb::obs {

namespace {

constexpr const char* kIndexBody =
    "iqb telemetry endpoints:\n"
    "  /metrics       Prometheus text exposition\n"
    "  /metrics.json  metrics as JSON\n"
    "  /healthz       liveness (always 200 while serving)\n"
    "  /readyz        readiness (503 before first cycle or at tier C)\n"
    "  /tracez        recent completed spans (?trace=<id> to filter)\n"
    "  /requestz      recent requests (access log)\n"
    "  /historyz      windowed time-series history (?series=&window=&points=)\n"
    "  /alertz        active + recent SLO alerts\n"
    "  /scores        latest per-region IQB scores\n"
    "  /shard/aggregate  serialized aggregate table (fleet scatter-gather)\n"
    "  /checkpointz   retained checkpoint catalog (replication)\n";

/// Bounded-cardinality path label: known endpoints verbatim,
/// everything else pooled, so a URL scanner cannot grow the registry.
const std::string& path_label(const std::string& path) {
  static const std::string other = "other";
  static const std::string checkpointz = "/checkpointz";
  for (const std::string& candidate : default_telemetry_paths()) {
    if (path == candidate) return candidate;
  }
  // Per-generation checkpoint fetches ("/checkpointz/42") fold into
  // the catalog label: still bounded, still attributable.
  if (path.rfind(checkpointz + "/", 0) == 0) return checkpointz;
  return other;
}

std::string json_error(const std::string& status, const std::string& reason) {
  util::JsonObject out;
  out.emplace("status", status);
  out.emplace("reason", reason);
  return util::JsonValue(std::move(out)).dump() + "\n";
}

}  // namespace

const std::vector<std::string>& default_telemetry_paths() {
  static const std::vector<std::string> paths = {
      "/",        "/metrics",  "/metrics.json",    "/healthz",
      "/readyz",  "/tracez",   "/requestz",        "/scores",
      "/historyz",             "/alertz",
      "/shard/aggregate",      "/fleetz",          "/fleet/tracez",
      "/fleet/alertz",         "/checkpointz"};
  return paths;
}

TelemetryServer::TelemetryServer(Options options, MetricsRegistry* metrics,
                                 SpanRingBuffer* spans)
    : options_([&options, metrics] {
        // The HTTP server's own health counters (accept errors, shed
        // connections) land in the same registry as everything else.
        if (options.http.metrics == nullptr) options.http.metrics = metrics;
        return std::move(options);
      }()),
      metrics_(metrics),
      spans_(spans),
      http_(options_.http,
            [this](const HttpRequest& request) { return handle(request); }) {}

void TelemetryServer::publish(std::shared_ptr<const ScoreSnapshot> snapshot) {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(snapshot);
}

std::shared_ptr<const ScoreSnapshot> TelemetryServer::latest() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

bool TelemetryServer::ready() const { return latest() != nullptr; }

HttpResponse TelemetryServer::handle(const HttpRequest& request) {
  const std::uint64_t start_ns = steady_clock().now_ns();
  std::optional<HttpResponse> overridden;
  if (options_.route_override) overridden = options_.route_override(request);
  HttpResponse response =
      overridden ? std::move(*overridden) : route(request);
  if (metrics_) {
    const double elapsed_s =
        static_cast<double>(steady_clock().now_ns() - start_ns) * 1e-9;
    const LabelSet labels = {{"path", path_label(request.path)},
                             {"status", std::to_string(response.status)}};
    metrics_
        ->counter("iqb_server_requests_total",
                  "Telemetry HTTP requests served", labels)
        .inc();
    metrics_
        ->histogram("iqb_server_request_duration_seconds",
                    "Telemetry HTTP request handling latency",
                    latency_buckets_s(),
                    {{"path", path_label(request.path)}})
        .observe(elapsed_s);
  }
  return response;
}

HttpResponse TelemetryServer::route(const HttpRequest& request) const {
  // The HTTP layer admits POST (checkpoint replication uploads ride
  // on it), but every built-in endpoint here is read-only: a POST
  // that no route_override claimed is a method error, not a 404.
  if (request.method == "POST") {
    return {405, "application/json",
            json_error("error", "method not allowed")};
  }
  const std::string& path = request.path;
  if (path == "/") {
    return {200, "text/plain; charset=utf-8", kIndexBody};
  }
  if (path == "/metrics") {
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            metrics_ ? to_prometheus(*metrics_) : std::string()};
  }
  if (path == "/metrics.json") {
    std::string body = metrics_ ? metrics_to_json(*metrics_).dump(2) + "\n"
                                : std::string("{\"metrics\":[]}\n");
    return {200, "application/json", std::move(body)};
  }
  if (path == "/healthz") {
    util::JsonObject out;
    out.emplace("git_sha", util::git_sha());
    out.emplace("status", "ok");
    out.emplace("version", util::version());
    return {200, "application/json",
            util::JsonValue(std::move(out)).dump() + "\n"};
  }
  if (path == "/readyz") {
    const auto snapshot = latest();
    if (!snapshot) {
      return {503, "application/json",
              json_error("unready", "no completed pipeline cycle yet")};
    }
    if (snapshot->tier_c) {
      std::string regions;
      for (const std::string& region : snapshot->tier_c_regions) {
        if (!regions.empty()) regions += ", ";
        regions += region;
      }
      return {503, "application/json",
              json_error("degraded",
                         "confidence tier C (single-source or worse): " +
                             regions)};
    }
    // A recovered (checkpoint) snapshot is serveable — that is the
    // point of recovery — but flagged stale so orchestration can tell
    // "restored last good state" from "freshly scored".
    util::JsonObject out;
    out.emplace("status", snapshot->stale ? "recovered" : "ready");
    out.emplace("stale", snapshot->stale);
    out.emplace("cycle", static_cast<std::int64_t>(snapshot->cycle));
    out.emplace("trace", snapshot->trace_id);
    return {200, "application/json",
            util::JsonValue(std::move(out)).dump() + "\n"};
  }
  if (path == "/tracez") {
    const std::string filter = query_param(request.query, "trace");
    std::string body = spans_
                           ? tracez_to_json(*spans_, filter).dump(2) + "\n"
                           : std::string("{\"count\":0,\"spans\":[]}\n");
    return {200, "application/json", std::move(body)};
  }
  if (path == "/requestz") {
    const RequestStats* stats = options_.http.request_stats;
    std::string body =
        stats ? stats->to_json().dump(2) + "\n"
              : std::string("{\"count\":0,\"requests\":[]}\n");
    return {200, "application/json", std::move(body)};
  }
  if (path == "/scores") {
    const auto snapshot = latest();
    if (!snapshot) {
      return {503, "application/json",
              json_error("unready", "no scores yet")};
    }
    HttpResponse response{200, "application/json", snapshot->scores_json};
    if (snapshot->stale) {
      // The body is the pre-rendered score document (schema-stable for
      // consumers); staleness rides in a header instead.
      response.headers.emplace_back("X-IQB-Stale", "true");
      response.headers.emplace_back("X-IQB-Recovered-Cycle",
                                    std::to_string(snapshot->cycle));
    }
    return response;
  }
  if (path == "/shard/aggregate") {
    const auto snapshot = latest();
    if (!snapshot || snapshot->aggregate_json.empty()) {
      // A recovered checkpoint has scores but no table; a coordinator
      // should treat this shard as warming up and keep its cache.
      return {503, "application/json",
              json_error("unavailable", "no aggregate table yet")};
    }
    HttpResponse response{200, "application/json", snapshot->aggregate_json};
    response.headers.emplace_back("X-IQB-Cycle",
                                  std::to_string(snapshot->cycle));
    // Trace link: the served aggregate was produced by this shard's
    // own cycle trace, which the caller's trace knows nothing about.
    // Tagging the enclosing server span with it lets /fleet/tracez
    // graft the shard's cycle spans under the coordinator's tree.
    if (!snapshot->trace_id.empty()) {
      annotate_current_span("shard_trace", snapshot->trace_id);
    }
    return response;
  }
  return {404, "application/json", json_error("error", "no such endpoint")};
}

}  // namespace iqb::obs
