// Degraded-mode accounting: what was missing when a score was made.
//
// The paper's cross-dataset agreement argument cuts both ways: a score
// built from three independent datasets deserves more confidence than
// one built from a single surviving feed. When feeds are late, corrupt
// or circuit-broken the pipeline still scores every region it can —
// eq. (1)'s normalized weights run over the *present* datasets — but
// every such score carries a DegradationReport stating exactly what
// was missing and a coarse confidence tier:
//
//   A — full panel present, nothing quarantined, no breaker open;
//   B — degraded but still cross-checked (>= 2 datasets present);
//   C — single-source (or worse): no cross-dataset agreement at all.
//
// A fully healthy run is bit-identical to a pre-robustness run; this
// layer only *annotates*.
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace iqb::robust {

enum class ConfidenceTier { kA, kB, kC };

/// Stable single-letter name ("A" / "B" / "C").
const char* confidence_tier_name(ConfidenceTier tier) noexcept;

/// Ingest-side health flowing into scoring: filled by whoever loaded
/// the data (CLI, campaign, test harness), consumed by the pipeline.
struct IngestHealth {
  /// Total rows quarantined across all feeds.
  std::size_t rows_quarantined = 0;
  /// Names of sources whose circuit breaker is currently open.
  std::vector<std::string> open_breakers;
  /// Sources retried before succeeding (informational).
  std::size_t sources_retried = 0;

  bool healthy() const noexcept {
    return rows_quarantined == 0 && open_breakers.empty();
  }
};

/// Per-region account of everything that degraded this score.
struct DegradationReport {
  std::string region;
  std::vector<std::string> expected_datasets;
  std::vector<std::string> present_datasets;
  std::vector<std::string> missing_datasets;
  std::size_t rows_quarantined = 0;
  std::vector<std::string> open_breakers;
  ConfidenceTier tier = ConfidenceTier::kA;

  bool degraded() const noexcept { return tier != ConfidenceTier::kA; }
};

/// Tier from dataset presence plus ingest health. `present`/`expected`
/// count datasets contributing to / configured for the region.
ConfidenceTier assess_tier(std::size_t present, std::size_t expected,
                           bool ingest_faults) noexcept;

/// Build the report for one region. `expected` is the configured
/// dataset panel; `present` the datasets that actually contributed.
DegradationReport assess_region(const std::string& region,
                                const std::vector<std::string>& expected,
                                const std::vector<std::string>& present,
                                const IngestHealth& health = {});

/// Renormalize weights over the present datasets so they sum to 1 —
/// eq. (1)'s w'_{u,r,d} made explicit. `weight_of` maps dataset name
/// to its raw (unnormalized) weight. Datasets with weight <= 0 are
/// omitted; an all-zero panel yields an empty map.
template <typename WeightFn>
std::map<std::string, double> renormalize_weights(
    const std::vector<std::string>& present, WeightFn&& weight_of) {
  double total = 0.0;
  for (const std::string& dataset : present) {
    const double w = static_cast<double>(weight_of(dataset));
    if (w > 0.0) total += w;
  }
  std::map<std::string, double> out;
  if (total <= 0.0) return out;
  for (const std::string& dataset : present) {
    const double w = static_cast<double>(weight_of(dataset));
    if (w > 0.0) out[dataset] = w / total;
  }
  return out;
}

}  // namespace iqb::robust
