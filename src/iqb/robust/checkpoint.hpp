// Crash-safe scoring checkpoints for the iqbd daemon.
//
// A checkpoint captures the last good published state of the scoring
// loop — the served snapshot (cycle ordinal, trace id, rendered
// scores, degradation summary) plus the loop counters — so a restarted
// daemon can serve the previous results immediately, flagged stale,
// instead of answering 503 until the first fresh cycle lands.
//
// On-disk format (version 1), one file per checkpoint:
//
//   IQBCKPT 1 <crc32-hex8> <payload-bytes>\n
//   <payload: compact JSON object, exactly payload-bytes long>
//
// The header pins the payload length, so truncation is detected even
// when the cut lands on a JSON-valid prefix; the CRC-32 (util::fs)
// covers the payload, so bit rot and partial sector writes are
// detected; the version gate rejects future/foreign formats instead
// of misparsing them. Files are written via util::fs::atomic_write,
// so a crash mid-write can only ever leave a stray .tmp file (which
// loading ignores), never a half-written checkpoint under the real
// name.
//
// CheckpointStore manages a state directory of checkpoint-<cycle>
// files: save() persists atomically and prunes old generations,
// load_newest() scans newest-first and returns the first checkpoint
// that decodes cleanly, reporting every rejected file with a reason
// so the daemon can log and count corruption instead of silently
// serving garbage.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "iqb/util/result.hpp"

namespace iqb::robust {

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Serializable last-good-state of the scoring loop.
struct Checkpoint {
  std::uint64_t cycle = 0;           ///< Completed-cycle ordinal.
  std::uint64_t cycles_attempted = 0;///< Loop counter incl. failures.
  std::uint64_t cycles_failed = 0;
  std::string trace_id;              ///< The completed cycle's id.
  std::string scores_json;           ///< Rendered /scores document.
  bool tier_c = false;               ///< Degradation summary of the
  std::vector<std::string> tier_c_regions;  ///< snapshot, as served.

  /// Serialize to the framed on-disk format above.
  std::string encode() const;

  /// Parse + verify a framed checkpoint. Errors name the defect
  /// ("truncated payload", "crc mismatch", "unsupported version N").
  static util::Result<Checkpoint> decode(std::string_view data);
};

class CheckpointStore {
 public:
  /// `keep` bounds retained generations (>= 1): save() prunes the
  /// oldest files beyond it, so a corrupt newest checkpoint still has
  /// intact predecessors to fall back to.
  explicit CheckpointStore(std::filesystem::path dir, std::size_t keep = 3);

  const std::filesystem::path& dir() const noexcept { return dir_; }

  /// Create the directory if needed and verify it is writable.
  util::Result<void> prepare() const;

  /// Persist atomically as checkpoint-<cycle, zero-padded>.ckpt and
  /// prune beyond the keep bound.
  util::Result<void> save(const Checkpoint& checkpoint) const;

  /// Remove the oldest generations beyond the keep bound, then fsync
  /// the directory: unlinks are directory mutations, and without the
  /// fsync a crash mid-prune can resurrect a deleted file as
  /// newest-on-disk. save() runs this best-effort; exposed so tests
  /// (and operators) can prune explicitly and see failures.
  util::Result<void> prune() const;

  /// One retained generation, as advertised on /checkpointz.
  struct Entry {
    std::uint64_t cycle = 0;    ///< Generation ordinal (from the frame).
    std::uint64_t bytes = 0;    ///< Framed size on disk (header + payload).
    std::string crc32_hex;      ///< Payload CRC from the verified header.
  };

  /// Every retained generation that decodes cleanly, oldest first.
  /// Corrupt files are skipped (load_newest() reports their reasons);
  /// a missing directory is an empty catalog, not an error.
  util::Result<std::vector<Entry>> list() const;

  /// Raw framed bytes of `cycle`'s checkpoint, decode-verified before
  /// returning so a rotted frame is never served to a peer.
  util::Result<std::string> read_frame(std::uint64_t cycle) const;

  /// Validate `data` as a framed checkpoint (magic, version, size,
  /// CRC) and persist it under its own cycle ordinal, pruning beyond
  /// the keep bound. Returns the decoded checkpoint. This is how a
  /// replica received from a peer enters a store: the frame's own
  /// integrity header is re-verified on this side of the wire.
  util::Result<Checkpoint> import_frame(std::string_view data) const;

  struct Rejected {
    std::string file;    ///< Filename (not full path).
    std::string reason;  ///< Why decoding refused it.
  };
  struct LoadOutcome {
    std::optional<Checkpoint> checkpoint;  ///< Newest valid, if any.
    std::vector<Rejected> rejected;        ///< Skipped on the way.
  };

  /// Scan the directory newest-first (cycle order is encoded in the
  /// zero-padded filename) and return the first checkpoint that
  /// decodes cleanly. A missing directory is an empty outcome, not an
  /// error; .tmp leftovers are ignored.
  util::Result<LoadOutcome> load_newest() const;

  /// Path a given cycle's checkpoint would live at (exposed so the
  /// chaos harness can target specific files for corruption).
  std::filesystem::path path_for_cycle(std::uint64_t cycle) const;

 private:
  std::filesystem::path dir_;
  std::size_t keep_;
};

}  // namespace iqb::robust
