#include "iqb/robust/fault_injection.hpp"

#include <utility>
#include <vector>

namespace iqb::robust {

using util::ErrorCode;
using util::make_error;
using util::Result;

Result<std::string> FaultInjector::fetch(const std::string& source_name,
                                         const TextSource& source) {
  last_latency_s_ = 0.0;
  if (spec_.latency_spike_rate > 0.0 &&
      rng_.bernoulli(spec_.latency_spike_rate)) {
    ++counters_.latency_spikes;
    last_latency_s_ = spec_.latency_spike_s;
  }
  if (spec_.io_error_rate > 0.0 && rng_.bernoulli(spec_.io_error_rate)) {
    ++counters_.io_errors;
    return make_error(ErrorCode::kIoError,
                      "injected IO error fetching '" + source_name + "'");
  }
  auto text = source();
  if (!text.ok()) return text;
  std::string payload = std::move(text).value();
  if (spec_.truncation_rate > 0.0 && !payload.empty() &&
      rng_.bernoulli(spec_.truncation_rate)) {
    ++counters_.truncations;
    const auto cut = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(payload.size()) - 1));
    payload.resize(cut);
  }
  if (spec_.row_corruption_rate > 0.0) {
    payload = corrupt_csv(payload);
  }
  return payload;
}

TextSource FaultInjector::wrap(std::string source_name, TextSource source) {
  return [this, name = std::move(source_name),
          inner = std::move(source)]() { return fetch(name, inner); };
}

std::string FaultInjector::corrupt_csv(const std::string& text) {
  static const char* kGarbage[] = {"???", "NaN", "Inf", "-1e999", ""};
  std::string out;
  out.reserve(text.size());
  std::size_t line_start = 0;
  bool is_header = true;
  while (line_start <= text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    const bool last = line_end == std::string::npos;
    std::string line = text.substr(
        line_start, last ? std::string::npos : line_end - line_start);
    if (!is_header && !line.empty() &&
        rng_.bernoulli(spec_.row_corruption_rate)) {
      // Replace one comma-delimited field with garbage. Plain split is
      // enough here: injected corruption doesn't need quote fidelity.
      std::vector<std::string> fields;
      std::size_t field_start = 0;
      while (true) {
        std::size_t comma = line.find(',', field_start);
        if (comma == std::string::npos) {
          fields.push_back(line.substr(field_start));
          break;
        }
        fields.push_back(line.substr(field_start, comma - field_start));
        field_start = comma + 1;
      }
      const auto victim = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(fields.size()) - 1));
      fields[victim] = kGarbage[rng_.uniform_int(0, 4)];
      ++counters_.corrupted_rows;
      line.clear();
      for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) line += ',';
        line += fields[i];
      }
    }
    out += line;
    if (last) break;
    out += '\n';
    line_start = line_end + 1;
    is_header = false;
  }
  return out;
}

}  // namespace iqb::robust
