// Deterministic retry with exponential backoff and decorrelated jitter.
//
// Dataset feeds (and simulated measurement sessions) fail transiently:
// a fetch that errors once often succeeds a moment later. RetryPolicy
// captures the standard remedy — exponential backoff with decorrelated
// jitter (Brooker, "Exponential Backoff And Jitter") capped by a total
// deadline — but stays reproducible: jitter draws from an explicitly
// seeded util::Rng, and "time" is the virtual sum of computed delays,
// never the wall clock, so tests and simulations replay bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "iqb/util/result.hpp"
#include "iqb/util/rng.hpp"

namespace iqb::robust {

struct RetryPolicy {
  /// Total tries including the first one; 1 disables retrying.
  std::size_t max_attempts = 4;
  /// First backoff delay (seconds, virtual).
  double base_delay_s = 0.1;
  /// Per-delay cap (seconds, virtual).
  double max_delay_s = 5.0;
  /// Total virtual-time budget across all backoff delays. Once the
  /// accumulated delay would exceed it, retrying stops even if
  /// attempts remain.
  double deadline_s = 30.0;
  /// Seed for the decorrelated jitter stream.
  std::uint64_t seed = 1;

  util::Result<void> validate() const;
};

/// The delay sequence of one retry episode. Separated from the
/// execution loop so tests can inspect the schedule directly.
class RetrySchedule {
 public:
  explicit RetrySchedule(const RetryPolicy& policy)
      : policy_(policy), rng_(policy.seed), previous_delay_s_(policy.base_delay_s) {}

  /// Delay before the next retry, or a negative value when the policy
  /// is exhausted (attempts or deadline). Advances internal state.
  double next_delay_s();

  std::size_t attempts_started() const noexcept { return attempts_; }
  double elapsed_s() const noexcept { return elapsed_s_; }

 private:
  RetryPolicy policy_;
  util::Rng rng_;
  double previous_delay_s_;
  std::size_t attempts_ = 1;  // the initial attempt is free
  double elapsed_s_ = 0.0;
};

/// Outcome statistics of run_with_retry, for degradation reporting.
struct RetryStats {
  std::size_t attempts = 0;
  double total_backoff_s = 0.0;
  bool exhausted = false;  ///< Gave up with the policy spent.
};

/// Run `fn` (returning util::Result<T>) until it succeeds or the
/// policy is exhausted. Returns the first success, or the final error
/// annotated with the attempt count. `stats`, when non-null, receives
/// the episode's statistics either way.
template <typename Fn>
auto run_with_retry(const RetryPolicy& policy, Fn&& fn,
                    RetryStats* stats = nullptr)
    -> decltype(fn()) {
  RetrySchedule schedule(policy);
  auto outcome = fn();
  std::size_t attempts = 1;
  while (!outcome.ok()) {
    const double delay = schedule.next_delay_s();
    if (delay < 0.0) break;
    outcome = fn();
    ++attempts;
  }
  if (stats) {
    stats->attempts = attempts;
    stats->total_backoff_s = schedule.elapsed_s();
    stats->exhausted = !outcome.ok();
  }
  if (!outcome.ok()) {
    return util::make_error(outcome.error().code,
                            outcome.error().message + " (after " +
                                std::to_string(attempts) + " attempts)");
  }
  return outcome;
}

}  // namespace iqb::robust
