#include "iqb/robust/checkpoint.hpp"

#include <algorithm>
#include <cstdio>

#include "iqb/util/fs.hpp"
#include "iqb/util/json.hpp"
#include "iqb/util/strings.hpp"

namespace iqb::robust {

namespace {

constexpr const char* kMagic = "IQBCKPT";
constexpr const char* kExtension = ".ckpt";

util::Error reject(const std::string& reason) {
  return util::make_error(util::ErrorCode::kParseError, reason);
}

std::string crc_hex(std::uint32_t crc) {
  char buffer[9];
  std::snprintf(buffer, sizeof(buffer), "%08x", crc);
  return buffer;
}

/// Zero-padded so lexicographic filename order == cycle order.
std::string cycle_file_name(std::uint64_t cycle) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "checkpoint-%020llu",
                static_cast<unsigned long long>(cycle));
  return std::string(buffer) + kExtension;
}

std::uint64_t number_or_zero(const util::JsonValue& object,
                             std::string_view key) {
  auto value = object.get_number(key);
  if (!value.ok() || value.value() < 0.0) return 0;
  return static_cast<std::uint64_t>(value.value());
}

}  // namespace

std::string Checkpoint::encode() const {
  util::JsonObject payload;
  payload.emplace("cycle", static_cast<std::int64_t>(cycle));
  payload.emplace("cycles_attempted",
                  static_cast<std::int64_t>(cycles_attempted));
  payload.emplace("cycles_failed", static_cast<std::int64_t>(cycles_failed));
  payload.emplace("trace_id", trace_id);
  payload.emplace("scores_json", scores_json);
  payload.emplace("tier_c", tier_c);
  util::JsonArray regions;
  for (const std::string& region : tier_c_regions) {
    regions.emplace_back(region);
  }
  payload.emplace("tier_c_regions", std::move(regions));

  const std::string body = util::JsonValue(std::move(payload)).dump();
  std::string out = kMagic;
  out += ' ';
  out += std::to_string(kCheckpointVersion);
  out += ' ';
  out += crc_hex(util::fs::crc32(body));
  out += ' ';
  out += std::to_string(body.size());
  out += '\n';
  out += body;
  return out;
}

util::Result<Checkpoint> Checkpoint::decode(std::string_view data) {
  const std::size_t header_end = data.find('\n');
  if (header_end == std::string_view::npos) {
    return reject("missing header line");
  }
  const std::string header(data.substr(0, header_end));
  const std::vector<std::string> fields = util::split(header, ' ');
  if (fields.size() != 4 || fields[0] != kMagic) {
    return reject("bad header magic");
  }
  auto version = util::parse_int(fields[1]);
  if (!version.ok() || version.value() < 0) {
    return reject("bad header version field");
  }
  if (static_cast<std::uint32_t>(version.value()) != kCheckpointVersion) {
    return reject("unsupported version " + fields[1]);
  }
  auto declared_size = util::parse_int(fields[3]);
  if (!declared_size.ok() || declared_size.value() < 0) {
    return reject("bad header size field");
  }

  const std::string_view payload = data.substr(header_end + 1);
  if (payload.size() <
      static_cast<std::size_t>(declared_size.value())) {
    return reject("truncated payload (" + std::to_string(payload.size()) +
                  " of " + fields[3] + " bytes)");
  }
  if (payload.size() > static_cast<std::size_t>(declared_size.value())) {
    return reject("trailing bytes after payload");
  }
  const std::string expected_crc = crc_hex(util::fs::crc32(payload));
  if (expected_crc != fields[2]) {
    return reject("crc mismatch (header " + fields[2] + ", payload " +
                  expected_crc + ")");
  }

  auto parsed = util::parse_json(payload);
  if (!parsed.ok()) {
    return reject("payload is not valid JSON: " + parsed.error().message);
  }
  Checkpoint checkpoint;
  checkpoint.cycle = number_or_zero(*parsed, "cycle");
  checkpoint.cycles_attempted = number_or_zero(*parsed, "cycles_attempted");
  checkpoint.cycles_failed = number_or_zero(*parsed, "cycles_failed");
  if (auto trace = parsed->get_string("trace_id"); trace.ok()) {
    checkpoint.trace_id = std::move(trace).value();
  }
  auto scores = parsed->get_string("scores_json");
  if (!scores.ok()) return reject("payload missing scores_json");
  checkpoint.scores_json = std::move(scores).value();
  if (auto tier_c = parsed->get_bool("tier_c"); tier_c.ok()) {
    checkpoint.tier_c = tier_c.value();
  }
  if (auto regions = parsed->get_array("tier_c_regions"); regions.ok()) {
    for (const util::JsonValue& region : regions.value()) {
      if (region.is_string()) {
        checkpoint.tier_c_regions.push_back(region.as_string());
      }
    }
  }
  if (checkpoint.cycle == 0) return reject("payload missing cycle");
  return checkpoint;
}

CheckpointStore::CheckpointStore(std::filesystem::path dir, std::size_t keep)
    : dir_(std::move(dir)), keep_(keep == 0 ? 1 : keep) {}

util::Result<void> CheckpointStore::prepare() const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return util::make_error(util::ErrorCode::kIoError,
                            "cannot create state dir '" + dir_.string() +
                                "': " + ec.message());
  }
  return {};
}

std::filesystem::path CheckpointStore::path_for_cycle(
    std::uint64_t cycle) const {
  return dir_ / cycle_file_name(cycle);
}

util::Result<void> CheckpointStore::save(const Checkpoint& checkpoint) const {
  if (auto prepared = prepare(); !prepared.ok()) return prepared;
  auto written = util::fs::atomic_write(path_for_cycle(checkpoint.cycle),
                                        checkpoint.encode());
  if (!written.ok()) return written.with_context("saving checkpoint");

  // Prune oldest generations beyond the keep bound. Best-effort: a
  // prune failure never fails the save that preserved the new state.
  auto pruned = prune();
  (void)pruned;
  return {};
}

util::Result<void> CheckpointStore::prune() const {
  std::error_code ec;
  // A store that was never prepared (or was wiped) holds nothing to
  // prune; only a directory that exists but cannot be read is an error.
  if (!std::filesystem::exists(dir_, ec)) return {};
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (util::starts_with(name, "checkpoint-") &&
        util::ends_with(name, kExtension)) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  bool removed = false;
  while (files.size() > keep_) {
    std::filesystem::remove(files.front(), ec);
    files.erase(files.begin());
    removed = true;
  }
  if (ec) {
    return util::make_error(util::ErrorCode::kIoError,
                            "prune failed in '" + dir_.string() +
                                "': " + ec.message());
  }
  if (removed) {
    // The unlinks above are directory mutations: without this fsync a
    // crash mid-prune can roll them back and resurrect a deleted
    // generation as newest-on-disk, which recovery would then serve.
    if (auto synced = util::fs::fsync_dir(dir_); !synced.ok()) {
      return synced.with_context("after pruning checkpoints");
    }
  }
  return {};
}

util::Result<CheckpointStore::LoadOutcome> CheckpointStore::load_newest()
    const {
  LoadOutcome outcome;
  std::error_code ec;
  if (!std::filesystem::exists(dir_, ec)) return outcome;

  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (util::starts_with(name, "checkpoint-") &&
        util::ends_with(name, kExtension)) {
      files.push_back(entry.path());
    }
  }
  if (ec) {
    return util::make_error(util::ErrorCode::kIoError,
                            "cannot scan state dir '" + dir_.string() +
                                "': " + ec.message());
  }
  // Newest first: the filename zero-pads the cycle ordinal.
  std::sort(files.rbegin(), files.rend());
  for (const std::filesystem::path& file : files) {
    auto data = util::fs::read_file(file);
    if (!data.ok()) {
      outcome.rejected.push_back(
          {file.filename().string(), data.error().message});
      continue;
    }
    auto decoded = Checkpoint::decode(*data);
    if (!decoded.ok()) {
      outcome.rejected.push_back(
          {file.filename().string(), decoded.error().message});
      continue;
    }
    outcome.checkpoint = std::move(decoded).value();
    break;
  }
  return outcome;
}

util::Result<std::vector<CheckpointStore::Entry>> CheckpointStore::list()
    const {
  std::vector<Entry> entries;
  std::error_code ec;
  if (!std::filesystem::exists(dir_, ec)) return entries;

  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (util::starts_with(name, "checkpoint-") &&
        util::ends_with(name, kExtension)) {
      files.push_back(entry.path());
    }
  }
  if (ec) {
    return util::make_error(util::ErrorCode::kIoError,
                            "cannot scan state dir '" + dir_.string() +
                                "': " + ec.message());
  }
  std::sort(files.begin(), files.end());
  for (const std::filesystem::path& file : files) {
    auto data = util::fs::read_file(file);
    if (!data.ok()) continue;
    auto decoded = Checkpoint::decode(*data);
    if (!decoded.ok()) continue;  // load_newest() reports the reason
    Entry entry;
    entry.cycle = decoded->cycle;
    entry.bytes = data->size();
    // The CRC is the verified header's third field; decode() above
    // already proved it matches the payload.
    const std::vector<std::string> fields =
        util::split(data->substr(0, data->find('\n')), ' ');
    if (fields.size() == 4) entry.crc32_hex = fields[2];
    entries.push_back(std::move(entry));
  }
  return entries;
}

util::Result<std::string> CheckpointStore::read_frame(
    std::uint64_t cycle) const {
  auto data = util::fs::read_file(path_for_cycle(cycle));
  if (!data.ok()) return data;
  auto decoded = Checkpoint::decode(*data);
  if (!decoded.ok()) {
    return util::make_error(decoded.error().code,
                            "refusing to serve checkpoint " +
                                std::to_string(cycle) + ": " +
                                decoded.error().message);
  }
  if (decoded->cycle != cycle) {
    return util::make_error(util::ErrorCode::kParseError,
                            "checkpoint file for cycle " +
                                std::to_string(cycle) + " carries cycle " +
                                std::to_string(decoded->cycle));
  }
  return data;
}

util::Result<Checkpoint> CheckpointStore::import_frame(
    std::string_view data) const {
  auto decoded = Checkpoint::decode(data);
  if (!decoded.ok()) {
    return util::make_error(decoded.error().code,
                            "rejecting imported frame: " +
                                decoded.error().message);
  }
  if (auto prepared = prepare(); !prepared.ok()) return prepared.error();
  auto written =
      util::fs::atomic_write(path_for_cycle(decoded->cycle), data);
  if (!written.ok()) {
    return util::make_error(written.error().code,
                            "storing imported frame: " +
                                written.error().message);
  }
  auto pruned = prune();
  (void)pruned;  // best-effort, like save()
  return decoded;
}

}  // namespace iqb::robust
