#include "iqb/robust/retry.hpp"

#include <algorithm>

namespace iqb::robust {

using util::ErrorCode;
using util::make_error;
using util::Result;

Result<void> RetryPolicy::validate() const {
  if (max_attempts == 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "retry max_attempts must be >= 1");
  }
  if (base_delay_s < 0.0 || max_delay_s < base_delay_s) {
    return make_error(ErrorCode::kInvalidArgument,
                      "retry delays must satisfy 0 <= base <= max");
  }
  if (deadline_s < 0.0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "retry deadline_s must be >= 0");
  }
  return Result<void>::success();
}

double RetrySchedule::next_delay_s() {
  if (attempts_ >= policy_.max_attempts) return -1.0;
  // Decorrelated jitter: sleep = min(cap, uniform(base, prev * 3)).
  // Spreads synchronized clients apart while still growing roughly
  // exponentially in expectation.
  const double upper = std::max(policy_.base_delay_s, previous_delay_s_ * 3.0);
  double delay = rng_.uniform(policy_.base_delay_s,
                              std::max(policy_.base_delay_s, upper));
  delay = std::min(delay, policy_.max_delay_s);
  if (elapsed_s_ + delay > policy_.deadline_s) return -1.0;
  previous_delay_s_ = delay;
  elapsed_s_ += delay;
  ++attempts_;
  return delay;
}

}  // namespace iqb::robust
