#include "iqb/robust/degradation.hpp"

#include <iterator>

namespace iqb::robust {

const char* confidence_tier_name(ConfidenceTier tier) noexcept {
  switch (tier) {
    case ConfidenceTier::kA: return "A";
    case ConfidenceTier::kB: return "B";
    case ConfidenceTier::kC: return "C";
  }
  return "?";
}

ConfidenceTier assess_tier(std::size_t present, std::size_t expected,
                           bool ingest_faults) noexcept {
  if (present <= 1) return ConfidenceTier::kC;
  if (present < expected || ingest_faults) return ConfidenceTier::kB;
  return ConfidenceTier::kA;
}

DegradationReport assess_region(const std::string& region,
                                const std::vector<std::string>& expected,
                                const std::vector<std::string>& present,
                                const IngestHealth& health) {
  DegradationReport report;
  report.region = region;
  report.expected_datasets = expected;
  report.present_datasets = present;
  std::sort(report.expected_datasets.begin(), report.expected_datasets.end());
  std::sort(report.present_datasets.begin(), report.present_datasets.end());
  std::set_difference(
      report.expected_datasets.begin(), report.expected_datasets.end(),
      report.present_datasets.begin(), report.present_datasets.end(),
      std::back_inserter(report.missing_datasets));
  report.rows_quarantined = health.rows_quarantined;
  report.open_breakers = health.open_breakers;
  report.tier = assess_tier(report.present_datasets.size(),
                            report.expected_datasets.size(), !health.healthy());
  return report;
}

}  // namespace iqb::robust
