#include "iqb/robust/watchdog.hpp"

#include <chrono>
#include <utility>

namespace iqb::robust {

namespace {

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

CycleWatchdog::CycleWatchdog(Options options) : options_(std::move(options)) {
  if (!options_.now_ms) options_.now_ms = steady_now_ms;
  if (options_.check_interval_ms == 0) options_.check_interval_ms = 1;
}

CycleWatchdog::~CycleWatchdog() { stop(); }

void CycleWatchdog::start() {
  if (running_ || options_.deadline_ms == 0) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = false;
  }
  running_ = true;
  monitor_ = std::thread([this] { monitor_loop(); });
}

void CycleWatchdog::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  running_ = false;
}

void CycleWatchdog::arm(std::uint64_t cycle) {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = true;
  fired_ = false;
  cycle_ = cycle;
  deadline_at_ms_ = options_.now_ms() + options_.deadline_ms;
}

void CycleWatchdog::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = false;
}

bool CycleWatchdog::expired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fired_;
}

std::uint64_t CycleWatchdog::timeouts_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return timeouts_total_;
}

bool CycleWatchdog::evaluate(std::uint64_t& timed_out_cycle) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_ || fired_ || options_.deadline_ms == 0) return false;
  if (options_.now_ms() < deadline_at_ms_) return false;
  fired_ = true;
  ++timeouts_total_;
  timed_out_cycle = cycle_;
  return true;
}

bool CycleWatchdog::check_now() {
  std::uint64_t timed_out_cycle = 0;
  // The callback runs outside the lock so it may take other locks
  // (metrics registry, logging) without ordering hazards.
  if (evaluate(timed_out_cycle) && options_.on_timeout) {
    options_.on_timeout(timed_out_cycle);
  }
  return expired();
}

void CycleWatchdog::monitor_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (cv_.wait_for(lock,
                       std::chrono::milliseconds(options_.check_interval_ms),
                       [this] { return stop_requested_; })) {
        return;
      }
    }
    check_now();
  }
}

}  // namespace iqb::robust
