#include "iqb/robust/circuit_breaker.hpp"

#include <algorithm>

namespace iqb::robust {

const char* breaker_state_name(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

bool CircuitBreaker::allow_request() {
  switch (state_) {
    case BreakerState::kClosed:
    case BreakerState::kHalfOpen:
      return true;
    case BreakerState::kOpen:
      ++denied_;
      if (cooldown_left_ > 0) --cooldown_left_;
      if (cooldown_left_ == 0) {
        half_open_streak_ = 0;
        transition(BreakerState::kHalfOpen);
      }
      return false;
  }
  return true;
}

void CircuitBreaker::record_success() {
  if (state_ == BreakerState::kHalfOpen) {
    if (++half_open_streak_ >= config_.half_open_successes) {
      // The source recovered: close with a clean window so the old
      // failure burst cannot immediately re-trip the breaker.
      reset();
    }
    return;
  }
  if (window_.size() < config_.window_size) {
    window_.push_back(false);
  } else {
    window_[window_next_] = false;
    window_next_ = (window_next_ + 1) % config_.window_size;
  }
  window_count_ = window_.size();
}

void CircuitBreaker::record_failure() {
  ++total_failures_;
  if (state_ == BreakerState::kHalfOpen) {
    trip();  // probe failed: straight back to open
    return;
  }
  if (window_.size() < config_.window_size) {
    window_.push_back(true);
  } else {
    window_[window_next_] = true;
    window_next_ = (window_next_ + 1) % config_.window_size;
  }
  window_count_ = window_.size();
  if (window_count_ >= config_.min_samples &&
      failure_rate() >= config_.failure_threshold) {
    trip();
  }
}

double CircuitBreaker::failure_rate() const noexcept {
  if (window_.empty()) return 0.0;
  const auto failures = static_cast<double>(
      std::count(window_.begin(), window_.end(), true));
  return failures / static_cast<double>(window_.size());
}

void CircuitBreaker::reset() {
  window_.clear();
  window_next_ = 0;
  window_count_ = 0;
  cooldown_left_ = 0;
  half_open_streak_ = 0;
  transition(BreakerState::kClosed);
}

void CircuitBreaker::trip() {
  cooldown_left_ = std::max<std::size_t>(config_.cooldown_denials, 1);
  half_open_streak_ = 0;
  transition(BreakerState::kOpen);
}

void CircuitBreaker::transition(BreakerState to) {
  if (state_ == to) return;
  const BreakerState from = state_;
  state_ = to;
  if (on_state_change_) on_state_change_(from, to);
}

}  // namespace iqb::robust
