#include "iqb/robust/quarantine.hpp"

namespace iqb::robust {

void Quarantine::add(std::string source, std::size_t row, util::Error error) {
  ++count_;
  if (rows_.size() < max_stored_) {
    rows_.push_back({std::move(source), row, std::move(error)});
  }
}

double Quarantine::error_rate(std::size_t total_rows) const noexcept {
  if (total_rows == 0) return 0.0;
  return static_cast<double>(count_) / static_cast<double>(total_rows);
}

bool Quarantine::exceeds(const IngestPolicy& policy,
                         std::size_t total_rows) const noexcept {
  return error_rate(total_rows) > policy.max_error_rate;
}

std::string Quarantine::summary() const {
  if (count_ == 0) return "no rows quarantined";
  std::string out = std::to_string(count_) + " rows quarantined";
  if (!rows_.empty()) {
    out += ", first: " + rows_.front().source + " row " +
           std::to_string(rows_.front().row) + " (" +
           rows_.front().error.to_string() + ")";
  }
  return out;
}

void Quarantine::clear() noexcept {
  count_ = 0;
  rows_.clear();
}

}  // namespace iqb::robust
