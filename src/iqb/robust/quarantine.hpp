// Quarantine sink for lenient ingestion.
//
// Strict importers abort on the first malformed row — correct for
// curated exports, fatal for real feeds where a truncated tail or a
// handful of corrupt rows should not discard a month of measurements.
// In lenient mode importers push each bad row here (with its row
// number and a row-precise error) and keep going; the caller then
// decides whether the error *rate* is still trustworthy via
// IngestPolicy::max_error_rate.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "iqb/util/result.hpp"

namespace iqb::robust {

/// How importers treat malformed rows.
enum class IngestMode {
  kStrict,   ///< First malformed row fails the whole import.
  kLenient,  ///< Malformed rows are quarantined; import continues.
};

struct IngestPolicy {
  IngestMode mode = IngestMode::kStrict;
  /// Lenient mode only: quarantined / total row fraction above which
  /// the import is rejected anyway (feed considered corrupt).
  double max_error_rate = 0.25;
  /// Cap on *stored* quarantined rows (all are still counted).
  std::size_t max_stored = 100;

  static IngestPolicy strict() { return {}; }
  static IngestPolicy lenient(double max_error_rate = 0.25) {
    IngestPolicy policy;
    policy.mode = IngestMode::kLenient;
    policy.max_error_rate = max_error_rate;
    return policy;
  }
};

/// One rejected row.
struct QuarantinedRow {
  std::string source;  ///< Importer/feed name ("ndt_csv", "ookla_csv", ...).
  std::size_t row = 0; ///< 0-based data-row index (excludes the header).
  util::Error error;
};

class Quarantine {
 public:
  explicit Quarantine(std::size_t max_stored = 100)
      : max_stored_(max_stored) {}

  void add(std::string source, std::size_t row, util::Error error);

  /// Rows rejected in total (including ones beyond the storage cap).
  std::size_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  const std::vector<QuarantinedRow>& rows() const noexcept { return rows_; }

  /// Quarantined fraction of `total_rows`; 0 when total_rows == 0.
  double error_rate(std::size_t total_rows) const noexcept;

  /// True when the quarantined fraction exceeds the policy threshold.
  bool exceeds(const IngestPolicy& policy, std::size_t total_rows) const noexcept;

  /// One-line human summary ("3 rows quarantined, first: ...").
  std::string summary() const;

  void clear() noexcept;

 private:
  std::size_t max_stored_;
  std::size_t count_ = 0;
  std::vector<QuarantinedRow> rows_;
};

}  // namespace iqb::robust
