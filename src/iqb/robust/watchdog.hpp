// Per-cycle deadline enforcement for long-running loops.
//
// A scoring loop that processes operator-supplied input can be wedged
// by one pathological file: a cycle that never finishes stalls the
// loop forever and the service goes quietly stale. CycleWatchdog puts
// a deadline on each cycle from a separate monitor thread: the loop
// arm()s before a cycle, disarm()s after, and if the deadline passes
// in between the watchdog fires its on_timeout callback exactly once
// for that cycle. Abort is cooperative — the callback typically sets
// a cancellation flag the cycle checks at stage boundaries — because
// forcibly killing a thread mid-pipeline would leak locks and
// corrupt shared state.
//
// Time is injected (now_ms function) so tests drive a manual clock
// and fire deadlines deterministically; check_now() evaluates the
// deadline synchronously for tests that don't want the monitor
// thread at all. Production uses the default steady-clock source.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace iqb::robust {

class CycleWatchdog {
 public:
  struct Options {
    /// Per-cycle deadline; 0 disables the watchdog entirely.
    std::uint64_t deadline_ms = 60'000;
    /// Monitor thread wake cadence (real time).
    std::uint64_t check_interval_ms = 100;
    /// Time source for deadline arithmetic. Null: process steady
    /// clock. Injected by tests for deterministic expiry.
    std::function<std::uint64_t()> now_ms;
    /// Fired once per armed cycle when its deadline passes, from the
    /// monitor thread (or the check_now() caller). Must not call back
    /// into the watchdog.
    std::function<void(std::uint64_t cycle)> on_timeout;
  };

  explicit CycleWatchdog(Options options);
  ~CycleWatchdog();  ///< Calls stop().
  CycleWatchdog(const CycleWatchdog&) = delete;
  CycleWatchdog& operator=(const CycleWatchdog&) = delete;

  /// Launch the monitor thread. No-op when the deadline is 0 or the
  /// watchdog is already running.
  void start();

  /// Stop and join the monitor thread. Idempotent.
  void stop();

  bool running() const noexcept { return running_; }

  /// Begin the deadline for `cycle`. Re-arming replaces the previous
  /// deadline (each cycle gets a fresh budget).
  void arm(std::uint64_t cycle);

  /// The armed cycle finished (or was abandoned); no further timeout
  /// can fire for it.
  void disarm();

  /// True once on_timeout fired for the currently/last armed cycle;
  /// reset by the next arm().
  bool expired() const;

  /// Evaluate the deadline synchronously (what the monitor thread
  /// does each wake). Returns expired(). Exposed for deterministic
  /// tests and usable without start().
  bool check_now();

  /// Timeouts fired over the watchdog's lifetime.
  std::uint64_t timeouts_total() const;

 private:
  void monitor_loop();
  /// Returns the armed cycle id if its deadline just passed.
  bool evaluate(std::uint64_t& timed_out_cycle);

  Options options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  ///< Guarded by mutex_.
  bool armed_ = false;
  bool fired_ = false;
  std::uint64_t cycle_ = 0;
  std::uint64_t deadline_at_ms_ = 0;
  std::uint64_t timeouts_total_ = 0;

  bool running_ = false;
  std::thread monitor_;
};

}  // namespace iqb::robust
