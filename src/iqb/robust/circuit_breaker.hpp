// Per-source circuit breaker (closed / open / half-open).
//
// A feed that fails persistently should stop being hammered: after the
// failure rate over a sliding outcome window crosses a threshold the
// breaker opens and callers skip the source outright, re-probing it
// with a limited number of half-open trials after a cooldown. The
// cooldown is counted in *denied requests* rather than wall-clock time
// so behaviour is deterministic and clock-free — the natural unit in a
// library whose time is simulated.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace iqb::robust {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

/// Stable name for a state ("closed" / "open" / "half_open").
const char* breaker_state_name(BreakerState state) noexcept;

struct CircuitBreakerConfig {
  /// Sliding window of most-recent outcomes considered.
  std::size_t window_size = 20;
  /// Outcomes required in the window before the breaker may trip.
  std::size_t min_samples = 5;
  /// Failure fraction in [0,1] at which the breaker opens.
  double failure_threshold = 0.5;
  /// Denied requests while open before moving to half-open.
  std::size_t cooldown_denials = 3;
  /// Consecutive half-open successes required to close again.
  std::size_t half_open_successes = 2;
};

class CircuitBreaker {
 public:
  /// Observer for state edges. Fired exactly once per transition,
  /// after the new state is in place (so state() == to inside the
  /// callback); never fired when the state does not actually change
  /// (e.g. reset() on an already-closed breaker).
  using StateChangeCallback =
      std::function<void(BreakerState from, BreakerState to)>;

  explicit CircuitBreaker(CircuitBreakerConfig config = {})
      : config_(config) {}

  /// Install (or clear, with nullptr) the transition observer. The
  /// callback must not call back into this breaker.
  void on_state_change(StateChangeCallback callback) {
    on_state_change_ = std::move(callback);
  }

  /// Ask permission before hitting the source. In the open state this
  /// counts down the cooldown and returns false; in half-open it
  /// admits probe requests.
  bool allow_request();

  /// Report the outcome of an admitted request.
  void record_success();
  void record_failure();

  BreakerState state() const noexcept { return state_; }
  bool open() const noexcept { return state_ == BreakerState::kOpen; }

  /// Failure fraction over the current window (0 when empty).
  double failure_rate() const noexcept;

  std::size_t total_failures() const noexcept { return total_failures_; }
  std::size_t denied_requests() const noexcept { return denied_; }

  /// Forget all history and close the breaker.
  void reset();

 private:
  void trip();
  void transition(BreakerState to);

  CircuitBreakerConfig config_;
  StateChangeCallback on_state_change_;
  BreakerState state_ = BreakerState::kClosed;
  std::vector<bool> window_;     // ring buffer: true = failure
  std::size_t window_next_ = 0;  // next slot to overwrite
  std::size_t window_count_ = 0;
  std::size_t cooldown_left_ = 0;
  std::size_t half_open_streak_ = 0;
  std::size_t total_failures_ = 0;
  std::size_t denied_ = 0;
};

}  // namespace iqb::robust
