// Seeded fault injection for robustness testing.
//
// Nothing in a test suite proves fault tolerance unless something can
// inject faults. FaultInjector wraps a text source (a feed fetch, a
// file read) and deterministically perturbs it: hard IO errors,
// truncation mid-byte-stream, per-row CSV corruption, and latency
// spikes (reported, not slept — time is virtual here). All draws come
// from a seeded util::Rng, so a failing fault scenario replays
// exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "iqb/util/result.hpp"
#include "iqb/util/rng.hpp"

namespace iqb::robust {

/// A callable producing the raw text of a feed (file contents, HTTP
/// body, ...). The unit the injector wraps.
using TextSource = std::function<util::Result<std::string>()>;

struct FaultSpec {
  /// Probability a fetch fails outright with kIoError.
  double io_error_rate = 0.0;
  /// Probability the returned text is truncated at a random point.
  double truncation_rate = 0.0;
  /// Per-data-row probability of corrupting one field (CSV payloads).
  double row_corruption_rate = 0.0;
  /// Probability a fetch reports a latency spike.
  double latency_spike_rate = 0.0;
  /// Spike magnitude (virtual seconds) when one fires.
  double latency_spike_s = 10.0;

  /// A spec that never fires (useful as a healthy control).
  static FaultSpec none() { return {}; }
};

/// Counters of what actually fired, for assertions.
struct FaultCounters {
  std::size_t io_errors = 0;
  std::size_t truncations = 0;
  std::size_t corrupted_rows = 0;
  std::size_t latency_spikes = 0;
};

class FaultInjector {
 public:
  FaultInjector(FaultSpec spec, std::uint64_t seed)
      : spec_(spec), rng_(seed) {}

  /// Fetch through the fault layer: may fail, truncate or corrupt the
  /// text per the spec. `source_name` labels injected error messages.
  util::Result<std::string> fetch(const std::string& source_name,
                                  const TextSource& source);

  /// Wrap a source so every call goes through fetch(). The injector
  /// must outlive the returned callable.
  TextSource wrap(std::string source_name, TextSource source);

  /// Corrupt CSV text in place: each data row independently gets one
  /// field replaced with garbage ("???", "NaN", "Inf", "-1e999" or
  /// empty) with probability spec.row_corruption_rate. The header is
  /// never touched.
  std::string corrupt_csv(const std::string& text);

  /// Virtual delay (seconds) the last fetch would have added; exposed
  /// so retry/deadline logic can be driven in tests.
  double last_latency_s() const noexcept { return last_latency_s_; }

  const FaultCounters& counters() const noexcept { return counters_; }

 private:
  FaultSpec spec_;
  util::Rng rng_;
  FaultCounters counters_;
  double last_latency_s_ = 0.0;
};

}  // namespace iqb::robust
