// Bootstrap confidence intervals for aggregate statistics.
//
// A region's p95 computed from a finite sample of speed tests is an
// estimate; the IQB report layer attaches percentile-bootstrap
// confidence intervals so near-threshold scores can be flagged as
// statistically fragile (a score that flips inside its CI is noise,
// not signal).
#pragma once

#include <functional>
#include <span>

#include "iqb/util/result.hpp"
#include "iqb/util/rng.hpp"

namespace iqb::stats {

struct ConfidenceInterval {
  double point = 0.0;  ///< Statistic on the original sample.
  double lower = 0.0;  ///< CI lower bound.
  double upper = 0.0;  ///< CI upper bound.
  double level = 0.95; ///< Nominal coverage.
};

/// A statistic maps a sample to a scalar (e.g. the p95).
using Statistic = std::function<double(std::span<const double>)>;

/// Percentile bootstrap: resample with replacement `resamples` times,
/// take the empirical (alpha/2, 1-alpha/2) quantiles of the statistic.
/// Error on an empty sample or resamples == 0.
util::Result<ConfidenceInterval> bootstrap_ci(std::span<const double> sample,
                                              const Statistic& statistic,
                                              util::Rng& rng,
                                              std::size_t resamples = 1000,
                                              double level = 0.95);

/// Convenience wrapper for a percentile statistic (IQB's p95 default).
util::Result<ConfidenceInterval> bootstrap_percentile_ci(
    std::span<const double> sample, double p, util::Rng& rng,
    std::size_t resamples = 1000, double level = 0.95);

}  // namespace iqb::stats
