#include "iqb/stats/p2.hpp"

#include <algorithm>
#include <cmath>

namespace iqb::stats {

P2Quantile::P2Quantile(double q) noexcept : q_(std::clamp(q, 1e-9, 1.0 - 1e-9)) {
  desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
  increments_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
  positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
}

void P2Quantile::add(double x) noexcept {
  if (count_ < 5) {
    add_initial(x);
  } else {
    add_steady(x);
  }
  ++count_;
}

void P2Quantile::add_initial(double x) noexcept {
  heights_[count_] = x;
  if (count_ == 4) {
    std::sort(heights_.begin(), heights_.end());
  }
}

void P2Quantile::add_steady(double x) noexcept {
  // Find the cell k containing x and update extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    k = 0;
    for (int i = 1; i < 5; ++i) {
      if (x < heights_[i]) {
        k = i - 1;
        break;
      }
    }
  }

  // Shift positions of markers above the new observation.
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    double d = desired_[i] - positions_[i];
    bool can_move_up = positions_[i + 1] - positions_[i] > 1.0;
    bool can_move_down = positions_[i - 1] - positions_[i] < -1.0;
    if ((d >= 1.0 && can_move_up) || (d <= -1.0 && can_move_down)) {
      double step = d >= 0 ? 1.0 : -1.0;
      double candidate = parabolic(i, step);
      // Fall back to linear if the parabolic estimate is not monotone.
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = linear(i, step);
      }
      positions_[i] += step;
    }
  }
}

double P2Quantile::parabolic(int i, double d) const noexcept {
  const auto& n = positions_;
  const auto& h = heights_;
  return h[i] + d / (n[i + 1] - n[i - 1]) *
                    ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i]) +
                     (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]));
}

double P2Quantile::linear(int i, double d) const noexcept {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

double P2Quantile::value() const noexcept {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile (nearest rank) over what we have.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<int>(count_));
    auto rank = static_cast<std::size_t>(
        std::ceil(q_ * static_cast<double>(count_)));
    rank = std::max<std::size_t>(rank, 1);
    return sorted[rank - 1];
  }
  return heights_[2];
}

}  // namespace iqb::stats
