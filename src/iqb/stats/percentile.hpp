// Batch percentile / quantile computation.
//
// IQB's aggregation rule is "take the 95th percentile of the dataset's
// measurements for the region" (paper §2). Percentile is not a single
// well-defined function on finite samples: different systems (numpy,
// R, BigQuery — which M-Lab uses for NDT aggregation) use different
// interpolation rules that disagree on small samples. We implement the
// common definitions from Hyndman & Fan (1996) so the aggregation tier
// can be configured to match any upstream and so the ablation bench
// can quantify how much the choice matters.
#pragma once

#include <span>
#include <vector>

#include "iqb/util/result.hpp"

namespace iqb::stats {

/// Quantile estimator definitions, numbered per Hyndman & Fan.
enum class QuantileMethod {
  kNearestRank,     ///< R-1: inverse empirical CDF (no interpolation).
  kLinear,          ///< R-7: numpy/Excel default, linear between order stats.
  kHazen,           ///< R-5: midpoint plotting positions (hydrology).
  kMedianUnbiased,  ///< R-8: approximately median-unbiased, recommended by H&F.
  kNormalUnbiased,  ///< R-9: approximately unbiased for normal samples.
};

/// Percentile p in [0, 100] of an unsorted sample (copies + sorts).
/// Error on empty input or p outside [0, 100].
util::Result<double> percentile(std::span<const double> sample, double p,
                                QuantileMethod method = QuantileMethod::kLinear);

/// Percentile of an already-sorted (ascending) sample; no copy.
util::Result<double> percentile_sorted(std::span<const double> sorted, double p,
                                       QuantileMethod method = QuantileMethod::kLinear);

/// Percentile by selection (std::nth_element) instead of a full sort:
/// O(n) expected time, so the aggregation tier's per-cell cost stops
/// being dominated by sorting. Reorders `values` arbitrarily. Every
/// method computes the same fractional rank and interpolation
/// expression as the sort path, so results are bit-identical to
/// percentile() on the same sample.
util::Result<double> percentile_select(std::span<double> values, double p,
                                       QuantileMethod method = QuantileMethod::kLinear);

/// Multiple percentiles in one sort. ps values in [0, 100].
util::Result<std::vector<double>> percentiles(std::span<const double> sample,
                                              std::span<const double> ps,
                                              QuantileMethod method = QuantileMethod::kLinear);

/// Exact median convenience wrapper (R-7).
util::Result<double> median(std::span<const double> sample);

/// Parse/format the method name ("linear", "nearest_rank", ...),
/// used by IqbConfig.
util::Result<QuantileMethod> quantile_method_from_name(std::string_view name);
std::string_view quantile_method_name(QuantileMethod method) noexcept;

}  // namespace iqb::stats
