#include "iqb/stats/tdigest.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace iqb::stats {

namespace {

/// k1 scale function and inverse: k(q) = δ/(2π)·asin(2q-1). Centroid
/// size limits derive from the steepness of k near the boundaries.
double k_scale(double q, double compression) noexcept {
  q = std::clamp(q, 0.0, 1.0);
  return compression / (2.0 * std::numbers::pi) * std::asin(2.0 * q - 1.0);
}

}  // namespace

TDigest::TDigest(double compression)
    : compression_(std::max(20.0, compression)) {
  buffer_.reserve(static_cast<std::size_t>(compression_) * 4);
}

void TDigest::add(double x, double weight) {
  if (weight <= 0.0 || !std::isfinite(x)) return;
  if (total_weight_ + buffered_weight_ <= 0.0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  // Weighted points enter the buffer as repeated entries only for
  // integer weights of 1; general weights go through a tiny shim that
  // flushes first and appends a centroid directly.
  if (weight == 1.0) {
    buffer_.push_back(x);
    buffered_weight_ += 1.0;
    if (buffer_.size() >= buffer_.capacity()) flush();
  } else {
    flush();
    centroids_.push_back({x, weight});
    total_weight_ += weight;
    std::sort(centroids_.begin(), centroids_.end(),
              [](const Centroid& a, const Centroid& b) { return a.mean < b.mean; });
  }
}

void TDigest::merge(const TDigest& other) {
  ++merge_count_;
  other.flush();
  for (const Centroid& c : other.centroids_) {
    if (c.weight > 0.0) {
      if (total_weight_ + buffered_weight_ <= 0.0) {
        min_ = other.min_;
        max_ = other.max_;
      } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
      }
      flush();
      centroids_.push_back(c);
      total_weight_ += c.weight;
    }
  }
  std::sort(centroids_.begin(), centroids_.end(),
            [](const Centroid& a, const Centroid& b) { return a.mean < b.mean; });
  flush();
}

void TDigest::flush() const {
  if (buffer_.empty() && centroids_.size() <= static_cast<std::size_t>(compression_)) {
    return;
  }
  // Combine existing centroids and buffered points, sort, then merge
  // greedily under the k-scale size limit.
  std::vector<Centroid> all;
  all.reserve(centroids_.size() + buffer_.size());
  for (const Centroid& c : centroids_) all.push_back(c);
  for (double x : buffer_) all.push_back({x, 1.0});
  buffer_.clear();
  total_weight_ += buffered_weight_;
  buffered_weight_ = 0.0;
  if (all.empty()) {
    centroids_.clear();
    return;
  }
  std::sort(all.begin(), all.end(),
            [](const Centroid& a, const Centroid& b) { return a.mean < b.mean; });

  std::vector<Centroid> merged;
  merged.reserve(static_cast<std::size_t>(compression_) + 8);
  double weight_so_far = 0.0;
  double k_lower = k_scale(0.0, compression_);
  Centroid current = all.front();
  for (std::size_t i = 1; i < all.size(); ++i) {
    const Centroid& next = all[i];
    double proposed_weight = current.weight + next.weight;
    double q_upper = (weight_so_far + proposed_weight) / total_weight_;
    if (k_scale(q_upper, compression_) - k_lower <= 1.0) {
      // Absorb next into current (weighted mean update).
      current.mean = (current.mean * current.weight + next.mean * next.weight) /
                     proposed_weight;
      current.weight = proposed_weight;
    } else {
      merged.push_back(current);
      weight_so_far += current.weight;
      k_lower = k_scale(weight_so_far / total_weight_, compression_);
      current = next;
    }
  }
  merged.push_back(current);
  centroids_ = std::move(merged);
}

double TDigest::quantile(double q) const {
  flush();
  if (centroids_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (centroids_.size() == 1) return centroids_.front().mean;
  const double target = q * total_weight_;

  // Walk centroids treating each as centred at its cumulative midpoint;
  // interpolate between adjacent midpoints.
  double cumulative = 0.0;
  double prev_mid = 0.0;
  double prev_mean = min_;
  for (std::size_t i = 0; i < centroids_.size(); ++i) {
    const double mid = cumulative + centroids_[i].weight / 2.0;
    if (target < mid) {
      if (mid == prev_mid) return centroids_[i].mean;
      const double t = (target - prev_mid) / (mid - prev_mid);
      return prev_mean + t * (centroids_[i].mean - prev_mean);
    }
    cumulative += centroids_[i].weight;
    prev_mid = mid;
    prev_mean = centroids_[i].mean;
  }
  return max_;
}

double TDigest::cdf(double x) const {
  flush();
  if (centroids_.empty()) return 0.0;
  if (x <= min_) return 0.0;
  if (x >= max_) return 1.0;
  double cumulative = 0.0;
  double prev_mid = 0.0;
  double prev_mean = min_;
  for (const Centroid& c : centroids_) {
    const double mid = cumulative + c.weight / 2.0;
    if (x < c.mean) {
      const double span = c.mean - prev_mean;
      const double t = span > 0.0 ? (x - prev_mean) / span : 0.0;
      return (prev_mid + t * (mid - prev_mid)) / total_weight_;
    }
    cumulative += c.weight;
    prev_mid = mid;
    prev_mean = c.mean;
  }
  return 1.0;
}

std::size_t TDigest::centroid_count() const {
  flush();
  return centroids_.size();
}

}  // namespace iqb::stats
