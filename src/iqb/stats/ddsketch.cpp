#include "iqb/stats/ddsketch.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace iqb::stats {

DdSketch::DdSketch(double alpha, std::size_t max_buckets)
    : alpha_(std::clamp(alpha, 1e-4, 0.3)),
      gamma_((1.0 + alpha_) / (1.0 - alpha_)),
      log_gamma_(std::log(gamma_)),
      max_buckets_(std::max<std::size_t>(max_buckets, 16)) {}

int DdSketch::bucket_index(double x) const noexcept {
  // Bucket i covers (gamma^(i-1), gamma^i]; ceil(log_gamma(x)).
  return static_cast<int>(std::ceil(std::log(x) / log_gamma_));
}

double DdSketch::bucket_value(int index) const noexcept {
  // Midpoint estimate: 2*gamma^i / (gamma + 1) is the standard
  // representative value with bounded relative error.
  return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

void DdSketch::add(double x) {
  if (!(x >= 0.0) || !std::isfinite(x)) return;  // rejects NaN too
  ++total_;
  if (x == 0.0) {
    ++zero_count_;
    return;
  }
  ++buckets_[bucket_index(x)];
  collapse_if_needed();
}

void DdSketch::collapse_if_needed() {
  // Collapse the two lowest buckets together until within budget.
  while (buckets_.size() > max_buckets_) {
    auto lowest = buckets_.begin();
    auto second = std::next(lowest);
    second->second += lowest->second;
    buckets_.erase(lowest);
  }
}

double DdSketch::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_ - 1);
  if (target < static_cast<double>(zero_count_)) return 0.0;
  std::uint64_t cumulative = zero_count_;
  for (const auto& [index, count] : buckets_) {
    cumulative += count;
    if (static_cast<double>(cumulative) > target) {
      return bucket_value(index);
    }
  }
  return buckets_.empty() ? 0.0 : bucket_value(buckets_.rbegin()->first);
}

void DdSketch::merge(const DdSketch& other) {
  assert(std::abs(alpha_ - other.alpha_) < 1e-12 &&
         "DDSketch merge requires identical alpha");
  ++merge_count_;
  zero_count_ += other.zero_count_;
  total_ += other.total_;
  for (const auto& [index, count] : other.buckets_) {
    buckets_[index] += count;
  }
  collapse_if_needed();
}

}  // namespace iqb::stats
