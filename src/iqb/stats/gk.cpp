#include "iqb/stats/gk.hpp"

#include <algorithm>
#include <cmath>

namespace iqb::stats {

GkSketch::GkSketch(double epsilon) noexcept
    : epsilon_(std::clamp(epsilon, 1e-6, 0.5)) {}

void GkSketch::add(double x) {
  // Find insertion point (first tuple with value >= x).
  auto it = std::lower_bound(
      tuples_.begin(), tuples_.end(), x,
      [](const Tuple& t, double v) { return t.value < v; });

  std::uint64_t delta;
  if (it == tuples_.begin() || it == tuples_.end()) {
    // New minimum or maximum is known exactly.
    delta = 0;
  } else {
    delta = static_cast<std::uint64_t>(
        std::floor(2.0 * epsilon_ * static_cast<double>(count_)));
  }
  tuples_.insert(it, Tuple{x, 1, delta});
  ++count_;

  // Compress periodically: every ~1/(2ε) insertions amortizes the
  // linear scan while keeping space within the GK bound.
  const auto period = static_cast<std::size_t>(1.0 / (2.0 * epsilon_));
  if (count_ % std::max<std::size_t>(period, 1) == 0) {
    compress();
  }
}

void GkSketch::compress() {
  if (tuples_.size() < 3) return;
  const double threshold = 2.0 * epsilon_ * static_cast<double>(count_);
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size());
  merged.push_back(tuples_.front());
  // Merge tuple i into its successor when the combined uncertainty
  // stays within the 2εn band: the successor inherits the merged rank
  // gap. First and last tuples are kept so min/max stay exact.
  std::uint64_t pending_g = 0;
  for (std::size_t i = 1; i + 1 < tuples_.size(); ++i) {
    Tuple current = tuples_[i];
    current.g += pending_g;
    const Tuple& next = tuples_[i + 1];
    if (static_cast<double>(current.g + next.g + next.delta) <= threshold) {
      pending_g = current.g;  // fold this tuple's gap into its successor
    } else {
      merged.push_back(current);
      pending_g = 0;
    }
  }
  Tuple last = tuples_.back();
  last.g += pending_g;
  merged.push_back(last);
  tuples_ = std::move(merged);
}

double GkSketch::quantile(double q) const noexcept {
  if (tuples_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Extremes are tracked exactly (first/last tuples are never merged).
  if (q == 0.0) return tuples_.front().value;
  if (q == 1.0) return tuples_.back().value;
  const double target_rank = q * static_cast<double>(count_);
  const double slack = std::max(1.0, epsilon_ * static_cast<double>(count_));
  // Return the last tuple whose maximum possible rank does not exceed
  // target + slack; its true rank is then within ε·n of the target.
  double answer = tuples_.front().value;
  std::uint64_t rank_min = 0;
  for (const Tuple& t : tuples_) {
    rank_min += t.g;
    const double rank_max = static_cast<double>(rank_min + t.delta);
    if (rank_max > target_rank + slack) return answer;
    answer = t.value;
  }
  return tuples_.back().value;
}

}  // namespace iqb::stats
