// Fixed-bin histograms with quantile estimation.
//
// Two bin layouts are provided: linear (equal-width bins over a fixed
// range, for latency in ms) and logarithmic (geometric bin edges, for
// throughput spanning 0.1–10000 Mb/s). Histograms are the cheapest
// aggregation structure with bounded error determined by bin width,
// and they render directly into report gauges.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "iqb/util/result.hpp"

namespace iqb::stats {

class Histogram {
 public:
  /// Equal-width bins over [lo, hi). Values outside the range land in
  /// underflow/overflow counters.
  static util::Result<Histogram> linear(double lo, double hi, std::size_t bins);

  /// Geometric bins over [lo, hi), lo > 0.
  static util::Result<Histogram> logarithmic(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_n(double x, std::uint64_t n) noexcept;

  std::uint64_t count() const noexcept { return total_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t bin_value(std::size_t i) const noexcept { return counts_[i]; }
  /// [lower, upper) edges of bin i.
  double bin_lower(std::size_t i) const noexcept { return edges_[i]; }
  double bin_upper(std::size_t i) const noexcept { return edges_[i + 1]; }

  /// Quantile estimate via linear interpolation within the containing
  /// bin. q in [0,1]. Underflow mass is attributed to the range
  /// minimum, overflow to the maximum. Error on empty histogram.
  util::Result<double> quantile(double q) const;

  /// Merge a histogram with identical binning; error otherwise.
  util::Result<void> merge(const Histogram& other);

  /// Simple ASCII rendering (one row per bin), used in examples.
  std::string to_ascii(std::size_t max_width = 50) const;

 private:
  Histogram() = default;

  std::size_t bin_index(double x) const noexcept;

  bool log_scale_ = false;
  std::vector<double> edges_;        // bin_count()+1 monotone edges
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace iqb::stats
