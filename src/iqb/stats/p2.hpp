// P² (P-square) streaming quantile estimator.
//
// Jain & Chlamtac (1985): tracks a single quantile with five markers
// and O(1) memory, no storage of observations. IQB's aggregation tier
// offers this as the cheapest streaming alternative to exact
// percentiles when ingesting unbounded measurement feeds.
#pragma once

#include <array>
#include <cstddef>

namespace iqb::stats {

class P2Quantile {
 public:
  /// q in (0, 1), e.g. 0.95 for the IQB default aggregation.
  explicit P2Quantile(double q) noexcept;

  void add(double x) noexcept;

  /// Current estimate. Before five observations arrive this falls back
  /// to the exact quantile of what has been seen.
  double value() const noexcept;

  std::size_t count() const noexcept { return count_; }
  double quantile() const noexcept { return q_; }

 private:
  void add_initial(double x) noexcept;
  void add_steady(double x) noexcept;
  double parabolic(int i, double d) const noexcept;
  double linear(int i, double d) const noexcept;

  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights (values)
  std::array<double, 5> positions_{};  // actual marker positions (ranks)
  std::array<double, 5> desired_{};    // desired marker positions
  std::array<double, 5> increments_{}; // desired position increments
};

}  // namespace iqb::stats
