#include "iqb/stats/percentile.hpp"

#include <algorithm>
#include <cmath>
#include <string_view>

namespace iqb::stats {

using util::ErrorCode;
using util::make_error;
using util::Result;

namespace {

/// Interpolated order statistic: value at (1-g)*x[j] + g*x[j+1] where
/// h = j + 1 + g is the 1-based fractional rank.
double at_fractional_rank(std::span<const double> sorted, double h) noexcept {
  const auto n = static_cast<double>(sorted.size());
  if (h <= 1.0) return sorted.front();
  if (h >= n) return sorted.back();
  const double floor_h = std::floor(h);
  const auto j = static_cast<std::size_t>(floor_h) - 1;  // 0-based lower index
  const double g = h - floor_h;
  return sorted[j] + g * (sorted[j + 1] - sorted[j]);
}

}  // namespace

Result<double> percentile_sorted(std::span<const double> sorted, double p,
                                 QuantileMethod method) {
  if (sorted.empty()) {
    return make_error(ErrorCode::kEmptyInput, "percentile: empty sample");
  }
  if (!(p >= 0.0 && p <= 100.0)) {
    return make_error(ErrorCode::kOutOfRange,
                      "percentile: p must be in [0,100], got " + std::to_string(p));
  }
  const double q = p / 100.0;
  const auto n = static_cast<double>(sorted.size());
  switch (method) {
    case QuantileMethod::kNearestRank: {
      // R-1: smallest x such that F(x) >= q. ceil(n*q), clamped to >= 1.
      const double rank = std::max(1.0, std::ceil(n * q));
      return sorted[static_cast<std::size_t>(rank) - 1];
    }
    case QuantileMethod::kLinear:
      return at_fractional_rank(sorted, (n - 1.0) * q + 1.0);          // R-7
    case QuantileMethod::kHazen:
      return at_fractional_rank(sorted, n * q + 0.5);                  // R-5
    case QuantileMethod::kMedianUnbiased:
      return at_fractional_rank(sorted, (n + 1.0 / 3.0) * q + 1.0 / 3.0);  // R-8
    case QuantileMethod::kNormalUnbiased:
      return at_fractional_rank(sorted, (n + 0.25) * q + 0.375);       // R-9
  }
  return make_error(ErrorCode::kInvalidArgument, "unknown quantile method");
}

Result<double> percentile(std::span<const double> sample, double p,
                          QuantileMethod method) {
  if (sample.empty()) {
    return make_error(ErrorCode::kEmptyInput, "percentile: empty sample");
  }
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p, method);
}

Result<std::vector<double>> percentiles(std::span<const double> sample,
                                        std::span<const double> ps,
                                        QuantileMethod method) {
  if (sample.empty()) {
    return make_error(ErrorCode::kEmptyInput, "percentiles: empty sample");
  }
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) {
    auto v = percentile_sorted(sorted, p, method);
    if (!v.ok()) return v.error();
    out.push_back(v.value());
  }
  return out;
}

Result<double> median(std::span<const double> sample) {
  return percentile(sample, 50.0, QuantileMethod::kLinear);
}

Result<QuantileMethod> quantile_method_from_name(std::string_view name) {
  if (name == "nearest_rank") return QuantileMethod::kNearestRank;
  if (name == "linear") return QuantileMethod::kLinear;
  if (name == "hazen") return QuantileMethod::kHazen;
  if (name == "median_unbiased") return QuantileMethod::kMedianUnbiased;
  if (name == "normal_unbiased") return QuantileMethod::kNormalUnbiased;
  return make_error(ErrorCode::kInvalidArgument,
                    "unknown quantile method '" + std::string(name) + "'");
}

std::string_view quantile_method_name(QuantileMethod method) noexcept {
  switch (method) {
    case QuantileMethod::kNearestRank: return "nearest_rank";
    case QuantileMethod::kLinear: return "linear";
    case QuantileMethod::kHazen: return "hazen";
    case QuantileMethod::kMedianUnbiased: return "median_unbiased";
    case QuantileMethod::kNormalUnbiased: return "normal_unbiased";
  }
  return "unknown";
}

}  // namespace iqb::stats
