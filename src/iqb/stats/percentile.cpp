#include "iqb/stats/percentile.hpp"

#include <algorithm>
#include <cmath>
#include <string_view>

namespace iqb::stats {

using util::ErrorCode;
using util::make_error;
using util::Result;

namespace {

/// 1-based fractional rank h evaluated by `method` for quantile q of
/// n samples: the value returned is (1-g)*x[j] + g*x[j+1] where
/// h = j + 1 + g. Shared by the sort and selection paths so both
/// interpolate at bit-identical positions. Negative return: unknown
/// method.
double fractional_rank(double n, double q, QuantileMethod method) noexcept {
  switch (method) {
    case QuantileMethod::kNearestRank:
      // R-1: smallest x such that F(x) >= q. ceil(n*q), clamped >= 1;
      // integral h, so no interpolation happens.
      return std::max(1.0, std::ceil(n * q));
    case QuantileMethod::kLinear:
      return (n - 1.0) * q + 1.0;                  // R-7
    case QuantileMethod::kHazen:
      return n * q + 0.5;                          // R-5
    case QuantileMethod::kMedianUnbiased:
      return (n + 1.0 / 3.0) * q + 1.0 / 3.0;      // R-8
    case QuantileMethod::kNormalUnbiased:
      return (n + 0.25) * q + 0.375;               // R-9
  }
  return -1.0;
}

/// Interpolated order statistic: value at (1-g)*x[j] + g*x[j+1] where
/// h = j + 1 + g is the 1-based fractional rank.
double at_fractional_rank(std::span<const double> sorted, double h) noexcept {
  const auto n = static_cast<double>(sorted.size());
  if (h <= 1.0) return sorted.front();
  if (h >= n) return sorted.back();
  const double floor_h = std::floor(h);
  const auto j = static_cast<std::size_t>(floor_h) - 1;  // 0-based lower index
  const double g = h - floor_h;
  if (g == 0.0) return sorted[j];  // integral rank: exact order statistic
  return sorted[j] + g * (sorted[j + 1] - sorted[j]);
}

Result<void> validate_sample(std::size_t size, double p) {
  if (size == 0) {
    return make_error(ErrorCode::kEmptyInput, "percentile: empty sample");
  }
  if (!(p >= 0.0 && p <= 100.0)) {
    return make_error(ErrorCode::kOutOfRange,
                      "percentile: p must be in [0,100], got " + std::to_string(p));
  }
  return util::Result<void>::success();
}

}  // namespace

Result<double> percentile_sorted(std::span<const double> sorted, double p,
                                 QuantileMethod method) {
  if (auto valid = validate_sample(sorted.size(), p); !valid.ok()) {
    return valid.error();
  }
  const double h = fractional_rank(static_cast<double>(sorted.size()),
                                   p / 100.0, method);
  if (h < 0.0) {
    return make_error(ErrorCode::kInvalidArgument, "unknown quantile method");
  }
  return at_fractional_rank(sorted, h);
}

Result<double> percentile_select(std::span<double> values, double p,
                                 QuantileMethod method) {
  if (auto valid = validate_sample(values.size(), p); !valid.ok()) {
    return valid.error();
  }
  const auto n = static_cast<double>(values.size());
  const double h = fractional_rank(n, p / 100.0, method);
  if (h < 0.0) {
    return make_error(ErrorCode::kInvalidArgument, "unknown quantile method");
  }
  // The boundary and interpolation expressions mirror
  // at_fractional_rank exactly: same order statistics, same
  // arithmetic, hence bit-identical results.
  if (h <= 1.0) return *std::min_element(values.begin(), values.end());
  if (h >= n) return *std::max_element(values.begin(), values.end());
  const double floor_h = std::floor(h);
  const auto j = static_cast<std::size_t>(floor_h) - 1;  // 0-based lower index
  const double g = h - floor_h;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(j),
                   values.end());
  const double lower = values[j];
  if (g == 0.0) return lower;  // integral rank: exact order statistic
  // x[j+1] is the minimum of the partition above the pivot (1 < h < n
  // guarantees it exists).
  const double upper = *std::min_element(
      values.begin() + static_cast<std::ptrdiff_t>(j) + 1, values.end());
  return lower + g * (upper - lower);
}

Result<double> percentile(std::span<const double> sample, double p,
                          QuantileMethod method) {
  if (sample.empty()) {
    return make_error(ErrorCode::kEmptyInput, "percentile: empty sample");
  }
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p, method);
}

Result<std::vector<double>> percentiles(std::span<const double> sample,
                                        std::span<const double> ps,
                                        QuantileMethod method) {
  if (sample.empty()) {
    return make_error(ErrorCode::kEmptyInput, "percentiles: empty sample");
  }
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) {
    auto v = percentile_sorted(sorted, p, method);
    if (!v.ok()) return v.error();
    out.push_back(v.value());
  }
  return out;
}

Result<double> median(std::span<const double> sample) {
  return percentile(sample, 50.0, QuantileMethod::kLinear);
}

Result<QuantileMethod> quantile_method_from_name(std::string_view name) {
  if (name == "nearest_rank") return QuantileMethod::kNearestRank;
  if (name == "linear") return QuantileMethod::kLinear;
  if (name == "hazen") return QuantileMethod::kHazen;
  if (name == "median_unbiased") return QuantileMethod::kMedianUnbiased;
  if (name == "normal_unbiased") return QuantileMethod::kNormalUnbiased;
  return make_error(ErrorCode::kInvalidArgument,
                    "unknown quantile method '" + std::string(name) + "'");
}

std::string_view quantile_method_name(QuantileMethod method) noexcept {
  switch (method) {
    case QuantileMethod::kNearestRank: return "nearest_rank";
    case QuantileMethod::kLinear: return "linear";
    case QuantileMethod::kHazen: return "hazen";
    case QuantileMethod::kMedianUnbiased: return "median_unbiased";
    case QuantileMethod::kNormalUnbiased: return "normal_unbiased";
  }
  return "unknown";
}

}  // namespace iqb::stats
