// DDSketch — quantile sketch with relative-error guarantees
// (Masson, Rim & Lee, VLDB 2019).
//
// GK bounds *rank* error; DDSketch bounds *value* error: the returned
// quantile is within a factor (1±alpha) of the true value. That is
// the right guarantee for latency data spanning decades (5 ms fiber
// to 600 ms satellite): a fixed rank error can be a huge value error
// in the tail, while DDSketch's logarithmic buckets keep p95/p99
// accurate to alpha everywhere. Used as an alternative aggregation
// backend and compared against the others in bench_percentile.
//
// This implementation covers positive values with logarithmic
// buckets, an explicit zero bucket, and collapse of the lowest
// buckets when a maximum bucket budget is exceeded (the standard
// memory bound, biasing only the low quantiles).
#pragma once

#include <cstdint>
#include <map>

namespace iqb::stats {

class DdSketch {
 public:
  /// alpha: relative accuracy, e.g. 0.01 -> quantiles within ±1%.
  /// max_buckets bounds memory; lowest buckets collapse when exceeded.
  explicit DdSketch(double alpha = 0.01, std::size_t max_buckets = 2048);

  /// Add a sample. Negative values are rejected (latency/throughput/
  /// loss are non-negative); zeros go to a dedicated bucket.
  void add(double x);

  /// Quantile estimate, q in [0,1]. Returns 0 for an empty sketch.
  double quantile(double q) const noexcept;

  /// Merge another sketch with the same alpha (asserted).
  void merge(const DdSketch& other);

  std::size_t count() const noexcept { return total_; }
  std::size_t bucket_count() const noexcept { return buckets_.size(); }
  /// Times merge() absorbed another sketch (exported to telemetry via
  /// obs::record_sketch_merges).
  std::size_t merge_count() const noexcept { return merge_count_; }
  double alpha() const noexcept { return alpha_; }
  double relative_accuracy() const noexcept { return alpha_; }

 private:
  int bucket_index(double x) const noexcept;
  double bucket_value(int index) const noexcept;
  void collapse_if_needed();

  double alpha_;
  double gamma_;      ///< (1 + alpha) / (1 - alpha).
  double log_gamma_;
  std::size_t max_buckets_;
  std::map<int, std::uint64_t> buckets_;  ///< index -> count, sorted.
  std::uint64_t zero_count_ = 0;
  std::uint64_t total_ = 0;
  std::size_t merge_count_ = 0;
};

}  // namespace iqb::stats
