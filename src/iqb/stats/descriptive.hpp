// Descriptive statistics over measurement samples.
#pragma once

#include <cstddef>
#include <span>

#include "iqb/util/result.hpp"

namespace iqb::stats {

/// Summary of a sample: central tendency, spread and extremes.
/// Produced in one pass (Welford for variance) by summarize().
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< Unbiased (n-1) sample variance; 0 for n<2.
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// One-pass summary. Error on an empty sample.
util::Result<Summary> summarize(std::span<const double> sample);

/// Arithmetic mean; error on empty input.
util::Result<double> mean(std::span<const double> sample);

/// Unbiased sample variance; error for n < 2.
util::Result<double> variance(std::span<const double> sample);

/// Median absolute deviation (robust spread). Error on empty input.
util::Result<double> median_absolute_deviation(std::span<const double> sample);

/// Pearson correlation of two equal-length samples; error on length
/// mismatch, n < 2, or zero variance in either sample.
util::Result<double> pearson_correlation(std::span<const double> x,
                                         std::span<const double> y);

/// Online (streaming) mean/variance accumulator — Welford's algorithm.
/// Numerically stable for long measurement streams.
class OnlineStats {
 public:
  void add(double x) noexcept;
  /// Merge another accumulator (parallel streams, Chan et al.).
  void merge(const OnlineStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for count < 2.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average, used by the TCP model for
/// smoothed RTT and by clients for rate smoothing.
class Ewma {
 public:
  /// alpha in (0, 1]: weight of each new observation.
  explicit Ewma(double alpha) noexcept : alpha_(alpha) {}

  void add(double x) noexcept {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ += alpha_ * (x - value_);
    }
  }

  bool initialized() const noexcept { return initialized_; }
  double value() const noexcept { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace iqb::stats
