#include "iqb/stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "iqb/stats/percentile.hpp"

namespace iqb::stats {

using util::ErrorCode;
using util::make_error;
using util::Result;

Result<ConfidenceInterval> bootstrap_ci(std::span<const double> sample,
                                        const Statistic& statistic,
                                        util::Rng& rng, std::size_t resamples,
                                        double level) {
  if (sample.empty()) {
    return make_error(ErrorCode::kEmptyInput, "bootstrap: empty sample");
  }
  if (resamples == 0) {
    return make_error(ErrorCode::kInvalidArgument, "bootstrap: resamples == 0");
  }
  if (!(level > 0.0 && level < 1.0)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "bootstrap: level must be in (0,1)");
  }

  std::vector<double> resample(sample.size());
  std::vector<double> estimates;
  estimates.reserve(resamples);
  const auto n = static_cast<std::int64_t>(sample.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& slot : resample) {
      slot = sample[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    }
    estimates.push_back(statistic(resample));
  }

  const double alpha = 1.0 - level;
  auto lo = percentile(estimates, alpha / 2.0 * 100.0);
  auto hi = percentile(estimates, (1.0 - alpha / 2.0) * 100.0);
  if (!lo.ok()) return lo.error();
  if (!hi.ok()) return hi.error();

  ConfidenceInterval ci;
  ci.point = statistic(sample);
  ci.lower = lo.value();
  ci.upper = hi.value();
  ci.level = level;
  return ci;
}

Result<ConfidenceInterval> bootstrap_percentile_ci(std::span<const double> sample,
                                                   double p, util::Rng& rng,
                                                   std::size_t resamples,
                                                   double level) {
  if (!(p >= 0.0 && p <= 100.0)) {
    return make_error(ErrorCode::kOutOfRange, "bootstrap: p outside [0,100]");
  }
  Statistic stat = [p](std::span<const double> s) {
    // Sample is non-empty by construction here; fall back to 0 only on
    // the (unreachable) error path to keep the closure total.
    auto v = percentile(s, p);
    return v.ok() ? v.value() : 0.0;
  };
  return bootstrap_ci(sample, stat, rng, resamples, level);
}

}  // namespace iqb::stats
