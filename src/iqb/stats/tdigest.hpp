// t-digest: mergeable quantile sketch with relative accuracy at the
// tails (Dunning & Ertl). IQB aggregates at the 95th percentile, i.e.
// deep in the tail where t-digest's k-scale clustering shines: tail
// centroids hold few points, so p95/p99 come back nearly exact while
// the body of the distribution is compressed aggressively.
//
// This implementation uses the merging variant: incoming points are
// buffered and periodically merged into the centroid list with the
// k1 scale function.
#pragma once

#include <cstddef>
#include <vector>

namespace iqb::stats {

class TDigest {
 public:
  /// compression delta (~100 gives ≲0.5% rank error at the tails).
  explicit TDigest(double compression = 100.0);

  void add(double x, double weight = 1.0);

  /// Merge another digest into this one (used to combine per-region
  /// shards). Both remain valid; this absorbs other's centroids.
  void merge(const TDigest& other);

  /// Quantile estimate, q in [0,1]. Returns 0 for an empty digest.
  double quantile(double q) const;

  /// Approximate CDF: fraction of mass at or below x.
  double cdf(double x) const;

  std::size_t count() const noexcept { return static_cast<std::size_t>(total_weight_); }
  std::size_t centroid_count() const;  ///< Space usage, for benches.
  double compression() const noexcept { return compression_; }
  /// Times merge() absorbed another digest (exported to telemetry via
  /// obs::record_sketch_merges).
  std::size_t merge_count() const noexcept { return merge_count_; }

 private:
  struct Centroid {
    double mean;
    double weight;
  };

  void flush() const;  // merge buffer_ into centroids_ (logically const)

  double compression_;
  mutable std::vector<Centroid> centroids_;  // sorted by mean after flush
  mutable std::vector<double> buffer_;
  mutable double total_weight_ = 0.0;
  mutable double buffered_weight_ = 0.0;
  mutable double min_ = 0.0;
  mutable double max_ = 0.0;
  std::size_t merge_count_ = 0;
};

}  // namespace iqb::stats
