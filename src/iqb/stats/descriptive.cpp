#include "iqb/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "iqb/stats/percentile.hpp"

namespace iqb::stats {

using util::ErrorCode;
using util::make_error;
using util::Result;

Result<Summary> summarize(std::span<const double> sample) {
  if (sample.empty()) {
    return make_error(ErrorCode::kEmptyInput, "summarize: empty sample");
  }
  OnlineStats acc;
  double sum = 0.0;
  for (double x : sample) {
    acc.add(x);
    sum += x;
  }
  Summary s;
  s.count = acc.count();
  s.mean = acc.mean();
  s.variance = acc.variance();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.sum = sum;
  return s;
}

Result<double> mean(std::span<const double> sample) {
  if (sample.empty()) {
    return make_error(ErrorCode::kEmptyInput, "mean: empty sample");
  }
  double sum = 0.0;
  for (double x : sample) sum += x;
  return sum / static_cast<double>(sample.size());
}

Result<double> variance(std::span<const double> sample) {
  if (sample.size() < 2) {
    return make_error(ErrorCode::kInvalidArgument,
                      "variance: need at least 2 samples");
  }
  OnlineStats acc;
  for (double x : sample) acc.add(x);
  return acc.variance();
}

Result<double> median_absolute_deviation(std::span<const double> sample) {
  if (sample.empty()) {
    return make_error(ErrorCode::kEmptyInput, "mad: empty sample");
  }
  auto med = percentile(sample, 50.0);
  if (!med.ok()) return med.error();
  std::vector<double> deviations;
  deviations.reserve(sample.size());
  for (double x : sample) deviations.push_back(std::abs(x - med.value()));
  return percentile(deviations, 50.0);
}

Result<double> pearson_correlation(std::span<const double> x,
                                   std::span<const double> y) {
  if (x.size() != y.size()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "pearson: length mismatch");
  }
  if (x.size() < 2) {
    return make_error(ErrorCode::kInvalidArgument,
                      "pearson: need at least 2 samples");
  }
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(x.size());
  my /= static_cast<double>(x.size());
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "pearson: zero variance sample");
  }
  return sxy / std::sqrt(sxx * syy);
}

void OnlineStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  std::size_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double OnlineStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace iqb::stats
