#include "iqb/stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "iqb/util/strings.hpp"

namespace iqb::stats {

using util::ErrorCode;
using util::make_error;
using util::Result;

Result<Histogram> Histogram::linear(double lo, double hi, std::size_t bins) {
  if (!(lo < hi) || bins == 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "histogram: require lo < hi and bins > 0");
  }
  Histogram h;
  h.log_scale_ = false;
  h.edges_.resize(bins + 1);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (std::size_t i = 0; i <= bins; ++i) {
    h.edges_[i] = lo + width * static_cast<double>(i);
  }
  h.edges_.back() = hi;  // avoid accumulation drift at the top edge
  h.counts_.assign(bins, 0);
  return h;
}

Result<Histogram> Histogram::logarithmic(double lo, double hi, std::size_t bins) {
  if (!(lo > 0.0) || !(lo < hi) || bins == 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "histogram: require 0 < lo < hi and bins > 0");
  }
  Histogram h;
  h.log_scale_ = true;
  h.edges_.resize(bins + 1);
  const double log_lo = std::log(lo);
  const double log_step = (std::log(hi) - log_lo) / static_cast<double>(bins);
  for (std::size_t i = 0; i <= bins; ++i) {
    h.edges_[i] = std::exp(log_lo + log_step * static_cast<double>(i));
  }
  h.edges_.front() = lo;
  h.edges_.back() = hi;
  h.counts_.assign(bins, 0);
  return h;
}

std::size_t Histogram::bin_index(double x) const noexcept {
  // Binary search over edges; callers have already range-checked.
  auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  return static_cast<std::size_t>(std::distance(edges_.begin(), it)) - 1;
}

void Histogram::add(double x) noexcept { add_n(x, 1); }

void Histogram::add_n(double x, std::uint64_t n) noexcept {
  total_ += n;
  if (!(x >= edges_.front())) {  // also catches NaN
    underflow_ += n;
    return;
  }
  if (x >= edges_.back()) {
    overflow_ += n;
    return;
  }
  counts_[bin_index(x)] += n;
}

Result<double> Histogram::quantile(double q) const {
  if (total_ == 0) {
    return make_error(ErrorCode::kEmptyInput, "histogram quantile: empty");
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (target <= cumulative) return edges_.front();
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double t = (target - cumulative) / static_cast<double>(counts_[i]);
      return edges_[i] + t * (edges_[i + 1] - edges_[i]);
    }
    cumulative = next;
  }
  return edges_.back();
}

Result<void> Histogram::merge(const Histogram& other) {
  if (other.edges_ != edges_ || other.log_scale_ != log_scale_) {
    return make_error(ErrorCode::kInvalidArgument,
                      "histogram merge: incompatible binning");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  return Result<void>::success();
}

std::string Histogram::to_ascii(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (std::uint64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    out += "[" + util::format_fixed(edges_[i], 1) + ", " +
           util::format_fixed(edges_[i + 1], 1) + ") ";
    out.append(bar_len, '#');
    out += " " + std::to_string(counts_[i]) + "\n";
  }
  return out;
}

}  // namespace iqb::stats
