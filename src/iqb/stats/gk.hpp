// Greenwald–Khanna ε-approximate quantile sketch.
//
// GK (SIGMOD 2001) answers any quantile query over a stream with rank
// error at most ε·n using O((1/ε)·log(ε·n)) space. The aggregation
// tier uses it when a full sample is too large to hold but *all*
// quantiles (not one fixed q, unlike P²) may be queried afterwards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iqb::stats {

class GkSketch {
 public:
  /// epsilon: maximum rank error as a fraction of the stream length,
  /// e.g. 0.001 keeps the p95 of 1e6 samples within ±1000 ranks.
  explicit GkSketch(double epsilon) noexcept;

  void add(double x);

  /// Value whose rank is within ε·n of q·n. q in [0,1]. Returns 0 for
  /// an empty sketch.
  double quantile(double q) const noexcept;

  std::size_t count() const noexcept { return count_; }
  /// Number of retained tuples (space usage), exposed for benches.
  std::size_t tuple_count() const noexcept { return tuples_.size(); }
  double epsilon() const noexcept { return epsilon_; }

 private:
  struct Tuple {
    double value;       // observed value
    std::uint64_t g;    // rank gap to the previous tuple
    std::uint64_t delta;  // rank uncertainty
  };

  void compress();

  double epsilon_;
  std::size_t count_ = 0;
  std::vector<Tuple> tuples_;  // sorted by value
};

}  // namespace iqb::stats
