// Reservoir sampling (Vitter's algorithm R).
//
// Keeps a uniform random sample of fixed size k from a stream of
// unknown length. The dataset layer uses it to bound memory when a
// simulated measurement campaign produces more records than the
// aggregation tier wants to retain per (region, dataset) cell.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "iqb/util/rng.hpp"

namespace iqb::stats {

template <typename T>
class Reservoir {
 public:
  /// capacity k > 0: maximum retained sample size.
  explicit Reservoir(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
    items_.reserve(capacity_);
  }

  /// Offer one stream element.
  void add(const T& item, util::Rng& rng) {
    ++seen_;
    if (items_.size() < capacity_) {
      items_.push_back(item);
      return;
    }
    // Replace a random slot with probability k/seen.
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(seen_) - 1));
    if (j < capacity_) items_[j] = item;
  }

  /// Number of elements offered so far (not retained).
  std::size_t seen() const noexcept { return seen_; }
  std::size_t size() const noexcept { return items_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::span<const T> sample() const noexcept { return items_; }

 private:
  std::size_t capacity_;
  std::size_t seen_ = 0;
  std::vector<T> items_;
};

}  // namespace iqb::stats
