// iqb_netchaos — a seeded socket-level fault-injection proxy for
// fleet chaos runs. Sits between a coordinator and one shard and
// shapes the traffic: pass, added latency, byte-drip (slowloris),
// mid-response reset, refusal, or blackholing.
//
//   iqb_netchaos --upstream-port N [--listen-port N] [--control-port N]
//                [--mode pass|latency|drip|reset|refuse|blackhole]
//                [--latency-ms N] [--drip-interval-ms N]
//
// The control port accepts single-line commands ("mode blackhole\n",
// "mode pass\n", "stat\n") so a CI script can flip faults mid-run
// with nothing fancier than bash's /dev/tcp. The data port is printed
// on stdout at startup ("listening on PORT") for scripts that bind
// ephemerally.
#include <csignal>
#include <atomic>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "testsupport/chaos_proxy.hpp"

namespace {

using iqb::testsupport::ChaosProxy;

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

std::optional<ChaosProxy::Mode> parse_mode(const std::string& name) {
  if (name == "pass") return ChaosProxy::Mode::kPass;
  if (name == "latency") return ChaosProxy::Mode::kLatency;
  if (name == "drip") return ChaosProxy::Mode::kDrip;
  if (name == "reset") return ChaosProxy::Mode::kReset;
  if (name == "refuse") return ChaosProxy::Mode::kRefuse;
  if (name == "blackhole") return ChaosProxy::Mode::kBlackhole;
  return std::nullopt;
}

constexpr const char* kUsage =
    "usage: iqb_netchaos --upstream-port N [--listen-port N]\n"
    "                    [--control-port N] [--mode NAME]\n"
    "                    [--latency-ms N] [--drip-interval-ms N]\n"
    "modes: pass latency drip reset refuse blackhole\n"
    "control protocol (one line per command): 'mode NAME', 'stat'\n";

/// Tiny line-oriented control listener: each connection may send any
/// number of commands; every command gets a one-line reply.
class ControlServer {
 public:
  ControlServer(ChaosProxy& proxy, std::uint16_t port)
      : proxy_(proxy), port_(port) {}
  ~ControlServer() { stop(); }

  bool start() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port_);
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&address),
               sizeof(address)) != 0 ||
        ::listen(fd_, 8) != 0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    socklen_t len = sizeof(address);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&address), &len);
    port_ = ntohs(address.sin_port);
    thread_ = std::thread([this] { loop(); });
    return true;
  }

  void stop() {
    if (fd_ < 0) return;
    stopping_.store(true);
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
    if (thread_.joinable()) thread_.join();
  }

  std::uint16_t port() const noexcept { return port_; }

 private:
  void loop() {
    while (!stopping_.load()) {
      const int client = ::accept(fd_, nullptr, nullptr);
      if (client < 0) {
        if (stopping_.load()) return;
        continue;
      }
      serve(client);
      ::close(client);
    }
  }

  void serve(int client) {
    std::string pending;
    char buffer[512];
    for (;;) {
      const std::size_t newline = pending.find('\n');
      if (newline != std::string::npos) {
        std::string line = pending.substr(0, newline);
        pending.erase(0, newline + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        const std::string reply = handle(line) + "\n";
        if (::send(client, reply.data(), reply.size(), MSG_NOSIGNAL) < 0) {
          return;
        }
        continue;
      }
      pollfd pfd{client, POLLIN, 0};
      if (::poll(&pfd, 1, 2000) <= 0) return;
      const ssize_t n = ::recv(client, buffer, sizeof(buffer), 0);
      if (n <= 0) return;
      pending.append(buffer, static_cast<std::size_t>(n));
      if (pending.size() > 4096) return;
    }
  }

  std::string handle(const std::string& line) {
    if (line.rfind("mode ", 0) == 0) {
      const auto mode = parse_mode(line.substr(5));
      if (!mode) return "err unknown mode";
      proxy_.set_mode(*mode);
      std::cerr << "iqb_netchaos: " << line << "\n";
      return "ok";
    }
    if (line == "stat") {
      return "ok connections=" + std::to_string(proxy_.connections()) +
             " faulted=" + std::to_string(proxy_.faulted());
    }
    return "err unknown command";
  }

  ChaosProxy& proxy_;
  std::uint16_t port_;
  int fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  ChaosProxy::Options options;
  std::uint16_t control_port = 0;
  bool control = false;
  ChaosProxy::Mode mode = ChaosProxy::Mode::kPass;

  const std::vector<std::string> tokens(argv + 1, argv + argc);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& key = tokens[i];
    if (i + 1 >= tokens.size()) {
      std::cerr << "missing value for " << key << "\n" << kUsage;
      return 1;
    }
    const std::string& value = tokens[++i];
    const long parsed = std::strtol(value.c_str(), nullptr, 10);
    if (key == "--upstream-port") {
      options.upstream_port = static_cast<std::uint16_t>(parsed);
    } else if (key == "--listen-port") {
      options.listen_port = static_cast<std::uint16_t>(parsed);
    } else if (key == "--control-port") {
      control_port = static_cast<std::uint16_t>(parsed);
      control = true;
    } else if (key == "--latency-ms") {
      options.latency_ms = static_cast<std::uint64_t>(parsed);
    } else if (key == "--drip-interval-ms") {
      options.drip_interval_ms = static_cast<std::uint64_t>(parsed);
    } else if (key == "--mode") {
      const auto wanted = parse_mode(value);
      if (!wanted) {
        std::cerr << "unknown mode '" << value << "'\n" << kUsage;
        return 1;
      }
      mode = *wanted;
    } else {
      std::cerr << "unknown option " << key << "\n" << kUsage;
      return 1;
    }
  }
  if (options.upstream_port == 0) {
    std::cerr << "--upstream-port is required\n" << kUsage;
    return 1;
  }

  ChaosProxy proxy(options);
  if (!proxy.start()) {
    std::cerr << "iqb_netchaos: failed to bind data port\n";
    return 2;
  }
  proxy.set_mode(mode);

  ControlServer controller(proxy, control_port);
  if (control && !controller.start()) {
    std::cerr << "iqb_netchaos: failed to bind control port\n";
    return 2;
  }

  std::cout << "listening on " << proxy.port() << std::endl;
  if (control) {
    std::cout << "control on " << controller.port() << std::endl;
  }
  std::cerr << "iqb_netchaos: forwarding 127.0.0.1:" << proxy.port()
            << " -> " << options.upstream_host << ":" << options.upstream_port
            << "\n";

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  controller.stop();
  proxy.stop();
  return 0;
}
