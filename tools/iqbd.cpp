// iqbd — the IQB watch daemon, and (with --coordinator) the fleet
// coordinator that scatter-gathers shard daemons. All logic lives in
// iqb::cli (src/iqb/cli/daemon.* and coordinator.*) so it is
// unit-testable; this file adapts argv, prints startup state, and
// translates SIGINT/SIGTERM into a clean stop().
#include <csignal>
#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "iqb/cli/coordinator.hpp"
#include "iqb/cli/daemon.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

template <typename Daemon>
int serve(Daemon& daemon, const char* role) {
  if (auto started = daemon.start(std::cerr); !started.ok()) {
    std::cerr << "iqbd: " << started.error().to_string() << "\n";
    return 2;
  }
  std::cerr << "iqbd: " << role << " serving telemetry on port "
            << daemon.port() << " — try curl localhost:" << daemon.port()
            << "/metrics\n";

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (!g_stop.load() && !daemon.finished()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  // Graceful drain: the in-flight cycle completes, in-flight HTTP
  // requests get their answers, then every thread joins.
  if (g_stop.load()) std::cerr << "iqbd: draining\n";
  daemon.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> tokens(argv + 1, argv + argc);

  const auto coordinator_flag =
      std::find(tokens.begin(), tokens.end(), "--coordinator");
  if (coordinator_flag != tokens.end()) {
    tokens.erase(coordinator_flag);
    auto options = iqb::cli::parse_coordinator_args(tokens);
    if (!options.ok()) {
      std::cerr << options.error().message << "\n"
                << iqb::cli::coordinator_usage();
      return 1;
    }
    iqb::cli::CoordinatorDaemon daemon(std::move(options).value());
    return serve(daemon, "coordinator");
  }

  auto options = iqb::cli::parse_daemon_args(tokens);
  if (!options.ok()) {
    std::cerr << options.error().message << "\n" << iqb::cli::daemon_usage();
    return 1;
  }
  iqb::cli::WatchDaemon daemon(std::move(options).value());
  return serve(daemon, "daemon");
}
