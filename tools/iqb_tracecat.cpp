// iqb_tracecat — stitch /tracez JSON dumps into a Chrome trace-event
// timeline.
//
//   iqb_tracecat [--trace ID] [--source NAME=FILE | FILE]... > out.json
//
// Each input file is one /tracez (or /fleet/tracez) JSON document.
// Files given as NAME=FILE are tagged with that source name; bare
// files use their basename (minus extension). With no files, stdin is
// read as a single dump tagged "stdin". --trace ID keeps only spans of
// that trace (after link-grafting, so shard-local cycle traces linked
// via shard_trace survive the filter as part of the requested tree).
//
// Output is Chrome trace-event JSON ({"traceEvents":[...]}): load it
// in ui.perfetto.dev or chrome://tracing. All stitching logic lives in
// iqb::fleet (src/iqb/fleet/stitch.*) so the coordinator's
// /fleet/tracez handler and this tool cannot drift apart.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "iqb/fleet/stitch.hpp"
#include "iqb/util/json.hpp"
#include "iqb/util/result.hpp"

namespace {

constexpr const char* kUsage =
    "usage: iqb_tracecat [--trace ID] [NAME=FILE | FILE]...\n"
    "  Merge /tracez JSON dumps into Chrome trace-event JSON on stdout.\n"
    "  With no files, reads one dump from stdin.\n";

// "shard0=dump.json" -> {"shard0", "dump.json"}; "a/b/dump.json" ->
// {"dump", "a/b/dump.json"}.
struct Input {
  std::string source;
  std::string path;  ///< Empty: stdin.
};

Input parse_input(const std::string& token) {
  const std::size_t eq = token.find('=');
  if (eq != std::string::npos && eq > 0) {
    return {token.substr(0, eq), token.substr(eq + 1)};
  }
  std::string name = token;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return {name.empty() ? token : name, token};
}

iqb::util::Result<std::string> slurp(const Input& input) {
  std::ostringstream text;
  if (input.path.empty()) {
    text << std::cin.rdbuf();
  } else {
    std::ifstream file(input.path);
    if (!file) {
      return iqb::util::Error(iqb::util::ErrorCode::kIoError,
                              "cannot open " + input.path);
    }
    text << file.rdbuf();
  }
  return text.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_filter;
  std::vector<Input> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::cerr << "iqb_tracecat: --trace needs a value\n" << kUsage;
        return 2;
      }
      trace_filter = argv[++i];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "iqb_tracecat: unknown flag " << arg << "\n" << kUsage;
      return 2;
    }
    inputs.push_back(parse_input(arg));
  }
  if (inputs.empty()) inputs.push_back({"stdin", ""});

  std::vector<iqb::fleet::SourcedSpan> spans;
  for (const Input& input : inputs) {
    auto text = slurp(input);
    if (!text.ok()) {
      std::cerr << "iqb_tracecat: " << text.error().message << "\n";
      return 1;
    }
    auto document = iqb::util::parse_json(*text);
    if (!document.ok()) {
      std::cerr << "iqb_tracecat: " << (input.path.empty() ? "stdin"
                                                           : input.path)
                << ": " << document.error().message << "\n";
      return 1;
    }
    auto parsed = iqb::fleet::parse_tracez_dump(*document, input.source);
    if (!parsed.ok()) {
      std::cerr << "iqb_tracecat: " << (input.path.empty() ? "stdin"
                                                           : input.path)
                << ": " << parsed.error().message << "\n";
      return 1;
    }
    spans.insert(spans.end(), parsed->begin(), parsed->end());
  }

  // Graft before filtering so linked shard-cycle traces are pulled
  // into the requested trace's tree rather than dropped by the filter.
  iqb::fleet::graft_linked_traces(spans);
  if (!trace_filter.empty()) {
    // Keep the requested trace plus any span now reachable from it:
    // grafting rewrote linked roots' parent uids, but their trace_id
    // still names the shard-local cycle, so filter by connectivity.
    const iqb::fleet::StitchedTrace stitched = iqb::fleet::stitch(spans);
    std::vector<bool> keep(spans.size(), false);
    std::vector<std::size_t> frontier;
    for (std::size_t root : stitched.roots) {
      if (spans[stitched.nodes[root].span].trace_id == trace_filter) {
        frontier.push_back(root);
      }
    }
    while (!frontier.empty()) {
      const std::size_t node = frontier.back();
      frontier.pop_back();
      keep[stitched.nodes[node].span] = true;
      for (std::size_t child : stitched.nodes[node].children) {
        frontier.push_back(child);
      }
    }
    std::vector<iqb::fleet::SourcedSpan> kept;
    for (std::size_t i = 0; i < spans.size(); ++i) {
      if (keep[i]) kept.push_back(spans[i]);
    }
    spans.swap(kept);
  }

  std::cout << iqb::fleet::to_chrome_trace(spans).dump(2) << "\n";
  return 0;
}
