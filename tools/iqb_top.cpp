// iqb_top: a terminal dashboard for an iqbd daemon or fleet
// coordinator. Polls /historyz (+points), /alertz, /fleetz and
// /healthz and renders sparkline trends, burn-rate gauges and the
// active-alert table — the operator-facing face of the barometer.
//
// usage: iqb_top --port N [--host H] [--interval-ms N] [--frames N]
//                [--window MS] [--series FAMILY] [--plain true]
//   --frames 0 (default) runs until interrupted; --frames 1 renders a
//   single frame and exits (scriptable / CI smoke).
//   --plain true suppresses the ANSI clear-screen between frames.
//
// Exit codes: 0 ok, 1 usage error, 2 the daemon never answered.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "iqb/obs/http_client.hpp"
#include "iqb/util/json.hpp"
#include "iqb/util/result.hpp"
#include "iqb/util/strings.hpp"

namespace {

using iqb::obs::HttpClient;
using iqb::util::JsonValue;

constexpr const char* kUsage =
    "usage: iqb_top --port N [--host H] [--interval-ms N] [--frames N]\n"
    "               [--window MS] [--series FAMILY] [--plain true]\n"
    "polls /historyz /alertz /fleetz /healthz on an iqbd daemon (or\n"
    "fleet coordinator) and renders sparkline trends, burn-rate\n"
    "gauges and the active-alert table. --frames 1 prints one frame\n"
    "and exits.\n";

struct TopOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t interval_ms = 2000;
  std::uint64_t frames = 0;  ///< 0: until interrupted.
  std::uint64_t window_ms = 15 * 60 * 1000;
  std::string series;  ///< Family filter for /historyz ("" = all).
  bool plain = false;
};

/// Eight-level unicode sparkline of a point series.
std::string sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {"\xe2\x96\x81", "\xe2\x96\x82",
                                  "\xe2\x96\x83", "\xe2\x96\x84",
                                  "\xe2\x96\x85", "\xe2\x96\x86",
                                  "\xe2\x96\x87", "\xe2\x96\x88"};
  if (values.empty()) return "";
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  std::string out;
  for (double value : values) {
    int level = 0;
    if (hi > lo) {
      level = static_cast<int>(std::lround((value - lo) / (hi - lo) * 7.0));
      level = std::clamp(level, 0, 7);
    }
    out += kLevels[level];
  }
  return out;
}

/// Ten-cell bar gauge for a burn rate against its page threshold.
std::string burn_gauge(double value, double threshold) {
  const double fraction =
      threshold > 0.0 ? std::clamp(value / threshold, 0.0, 1.0) : 0.0;
  const int filled = static_cast<int>(std::lround(fraction * 10.0));
  std::string out = "[";
  for (int i = 0; i < 10; ++i) out += i < filled ? "#" : ".";
  out += "]";
  return out;
}

std::string format_double(double value, int decimals) {
  return iqb::util::format_fixed(value, decimals);
}

std::optional<JsonValue> fetch_json(const HttpClient& client,
                                    const TopOptions& options,
                                    const std::string& path) {
  auto fetched = client.get(options.host, options.port, path);
  if (!fetched.ok() || fetched.value().status != 200) return std::nullopt;
  auto document = iqb::util::parse_json(fetched.value().body);
  if (!document.ok()) return std::nullopt;
  return std::move(document).value();
}

std::string labels_of(const JsonValue& entry) {
  auto labels = entry.get_object("labels");
  if (!labels.ok() || labels->empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : *labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=" + (value.is_string() ? value.as_string() : value.dump());
  }
  out += "}";
  return out;
}

void render_alerts(std::ostream& out, const JsonValue& alertz) {
  auto active = alertz.get_array("active");
  const std::size_t count = active.ok() ? active->size() : 0;
  out << "ALERTS (" << count << " active)\n";
  if (count == 0) {
    out << "  all quiet\n";
    return;
  }
  for (const JsonValue& alert : *active) {
    if (!alert.is_object()) continue;
    const std::string name = alert.get_string("name").value_or("?");
    const std::string state = alert.get_string("state").value_or("?");
    const double value = alert.get_number("value").value_or(0.0);
    const std::string reason = alert.get_string("reason").value_or("");
    out << "  " << (state == "firing" ? "!! " : " ~ ") << name
        << labels_of(alert) << "  " << state << "  value="
        << format_double(value, 3);
    if (name.find("burn") != std::string::npos) {
      out << "  " << burn_gauge(value, 14.4);
    }
    if (!reason.empty()) out << "  (" << reason << ")";
    out << "\n";
  }
}

void render_history(std::ostream& out, const JsonValue& historyz) {
  auto series = historyz.get_array("series");
  out << "TRENDS (window "
      << historyz.get_number("window_ms").value_or(0) / 1000.0 << "s, "
      << (series.ok() ? series->size() : 0) << " series)\n";
  if (!series.ok()) return;
  // Sparklines only earn their screen space for series that move;
  // show gauges first (scores, shard health), cap the list.
  constexpr std::size_t kMaxRows = 24;
  std::size_t rows = 0;
  for (const JsonValue& entry : *series) {
    if (rows >= kMaxRows) {
      out << "  ... (" << series->size() - rows << " more; use --series)\n";
      break;
    }
    if (!entry.is_object()) continue;
    const std::string name = entry.get_string("name").value_or("?");
    const std::string kind = entry.get_string("kind").value_or("gauge");
    auto points = entry.get_array("points");
    std::vector<double> values;
    if (points.ok()) {
      for (const JsonValue& pair : *points) {
        if (pair.is_array() && pair.as_array().size() == 2 &&
            pair.as_array()[1].is_number()) {
          values.push_back(pair.as_array()[1].as_number());
        }
      }
    }
    std::ostringstream row;
    row << "  " << name << labels_of(entry);
    if (kind == "counter") {
      row << "  rate/s=" << format_double(
          entry.get_number("rate_per_s").value_or(0.0), 3);
    } else {
      row << "  last=" << format_double(
          entry.get_number("last").value_or(0.0), 3)
          << " p95=" << format_double(
                 entry.get_number("p95").value_or(0.0), 3);
    }
    if (!values.empty()) row << "  " << sparkline(values);
    out << row.str() << "\n";
    ++rows;
  }
}

void render_fleet(std::ostream& out, const JsonValue& fleetz) {
  auto shards = fleetz.get_array("shards");
  if (!shards.ok()) return;
  out << "FLEET (" << shards->size() << " shards)\n";
  for (const JsonValue& shard : *shards) {
    if (!shard.is_object()) continue;
    const bool up = shard.get_bool("up").value_or(false);
    out << "  " << (up ? " up " : "DOWN") << "  "
        << shard.get_string("name").value_or("?") << "  "
        << shard.get_string("address").value_or("") << "  breaker="
        << shard.get_string("breaker").value_or("?") << "  cycle="
        << static_cast<std::int64_t>(
               shard.get_number("last_cycle").value_or(0))
        << "\n";
  }
}

int run(const TopOptions& options) {
  HttpClient::Options http;
  http.connect_timeout_ms = 1000;
  http.io_timeout_ms = 2000;
  http.total_deadline_ms = 4000;
  const HttpClient client(http);

  const std::string history_path =
      "/historyz?points=true&window=" + std::to_string(options.window_ms) +
      (options.series.empty() ? "" : "&series=" + options.series);

  bool ever_answered = false;
  for (std::uint64_t frame = 0;
       options.frames == 0 || frame < options.frames; ++frame) {
    if (frame != 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.interval_ms));
    }
    const auto healthz = fetch_json(client, options, "/healthz");
    const auto alertz = fetch_json(client, options, "/alertz");
    const auto historyz = fetch_json(client, options, history_path);
    const auto fleetz = fetch_json(client, options, "/fleetz");

    std::ostringstream out;
    out << "iqb_top " << options.host << ":" << options.port;
    if (healthz) {
      out << "  version=" << healthz->get_string("version").value_or("?")
          << " (" << healthz->get_string("git_sha").value_or("?") << ")";
    } else {
      out << "  [daemon unreachable]";
    }
    out << "\n\n";
    if (alertz) {
      render_alerts(out, *alertz);
      out << "\n";
    }
    if (historyz) {
      render_history(out, *historyz);
      out << "\n";
    }
    if (fleetz) render_fleet(out, *fleetz);
    if (healthz || alertz || historyz) ever_answered = true;

    if (!options.plain) std::cout << "\x1b[2J\x1b[H";
    std::cout << out.str() << std::flush;
  }
  if (!ever_answered) {
    std::cerr << "iqb_top: no endpoint answered at " << options.host << ":"
              << options.port << "\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  TopOptions options;
  std::vector<std::string> tokens(argv + 1, argv + argc);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& key = tokens[i];
    if (key == "--help" || key == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (i + 1 >= tokens.size()) {
      std::cerr << "missing value for " << key << "\n" << kUsage;
      return 1;
    }
    const std::string& value = tokens[++i];
    const auto parse_number = [&](std::uint64_t& target) {
      auto parsed = iqb::util::parse_int(value);
      if (!parsed.ok() || parsed.value() < 0) {
        std::cerr << "bad " << key << " '" << value << "'\n";
        return false;
      }
      target = static_cast<std::uint64_t>(parsed.value());
      return true;
    };
    if (key == "--host") {
      options.host = value;
    } else if (key == "--series") {
      options.series = value;
    } else if (key == "--plain") {
      options.plain = value == "true";
    } else if (key == "--port") {
      std::uint64_t port = 0;
      if (!parse_number(port) || port == 0 || port > 65535) {
        std::cerr << "bad --port\n";
        return 1;
      }
      options.port = static_cast<std::uint16_t>(port);
    } else if (key == "--interval-ms") {
      if (!parse_number(options.interval_ms)) return 1;
    } else if (key == "--frames") {
      if (!parse_number(options.frames)) return 1;
    } else if (key == "--window") {
      if (!parse_number(options.window_ms)) return 1;
    } else {
      std::cerr << "unknown option " << key << "\n" << kUsage;
      return 1;
    }
  }
  if (options.port == 0) {
    std::cerr << "--port is required\n" << kUsage;
    return 1;
  }
  return run(options);
}
