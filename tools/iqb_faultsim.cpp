// iqb_faultsim — deterministic CSV fault simulator.
//
// Reads a records CSV, pushes it through robust::FaultInjector with a
// seeded spec, and writes the perturbed text. Useful for producing
// reproducible "dirty" fixtures to exercise `iqbctl score --lenient
// true` and the quarantine/degraded-mode machinery end to end:
//
//   iqb_faultsim --records clean.csv --out dirty.csv \
//                --seed 7 --corrupt-rate 0.2 --truncate-rate 0.1
//
// Exit codes: 0 wrote output, 1 usage error, 2 IO failure (including
// an injected one, when --io-error-rate fires).
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "iqb/robust/fault_injection.hpp"
#include "iqb/util/strings.hpp"

namespace {

constexpr const char* kUsage =
    "usage: iqb_faultsim --records FILE.csv [--out FILE.csv] [--seed S]\n"
    "                    [--corrupt-rate R] [--truncate-rate R]\n"
    "                    [--io-error-rate R]\n"
    "Perturbs a CSV with seeded faults (row corruption, truncation,\n"
    "injected IO errors) and writes the result to --out (default:\n"
    "stdout). Same inputs + same seed -> byte-identical output.\n";

std::optional<double> parse_rate(const std::string& text) {
  auto value = iqb::util::parse_double(text);
  if (!value.ok() || value.value() < 0.0 || value.value() > 1.0) {
    return std::nullopt;
  }
  return value.value();
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> options;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0 || i + 1 >= argc) {
      std::fputs(kUsage, stderr);
      return 1;
    }
    options[key.substr(2)] = argv[++i];
  }
  auto records_it = options.find("records");
  if (records_it == options.end()) {
    std::fputs(kUsage, stderr);
    return 1;
  }
  const std::string& path = records_it->second;

  iqb::robust::FaultSpec spec;
  std::uint64_t seed = 1;
  if (auto it = options.find("seed"); it != options.end()) {
    auto value = iqb::util::parse_int(it->second);
    if (!value.ok() || value.value() < 0) {
      std::fprintf(stderr, "bad --seed '%s'\n", it->second.c_str());
      return 1;
    }
    seed = static_cast<std::uint64_t>(value.value());
  }
  struct RateFlag {
    const char* name;
    double* target;
  };
  const RateFlag rate_flags[] = {
      {"corrupt-rate", &spec.row_corruption_rate},
      {"truncate-rate", &spec.truncation_rate},
      {"io-error-rate", &spec.io_error_rate},
  };
  for (const RateFlag& flag : rate_flags) {
    if (auto it = options.find(flag.name); it != options.end()) {
      auto rate = parse_rate(it->second);
      if (!rate) {
        std::fprintf(stderr, "bad --%s '%s' (want 0..1)\n", flag.name,
                     it->second.c_str());
        return 1;
      }
      *flag.target = *rate;
    }
  }

  iqb::robust::FaultInjector injector(spec, seed);
  auto perturbed = injector.fetch(path, [&path]() {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      return iqb::util::Result<std::string>(iqb::util::make_error(
          iqb::util::ErrorCode::kIoError, "cannot open '" + path + "'"));
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return iqb::util::Result<std::string>(buffer.str());
  });
  if (!perturbed.ok()) {
    std::fprintf(stderr, "%s\n", perturbed.error().to_string().c_str());
    return 2;
  }
  const std::string text = injector.corrupt_csv(perturbed.value());

  if (auto it = options.find("out"); it != options.end()) {
    std::ofstream out(it->second, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n",
                   it->second.c_str());
      return 2;
    }
    out << text;
  } else {
    std::fwrite(text.data(), 1, text.size(), stdout);
  }

  const auto& counters = injector.counters();
  std::fprintf(stderr,
               "faultsim: %zu rows corrupted, %zu truncations, "
               "%zu io errors (seed %llu)\n",
               counters.corrupted_rows, counters.truncations,
               counters.io_errors, static_cast<unsigned long long>(seed));
  return 0;
}
