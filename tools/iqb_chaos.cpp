// iqb_chaos — crash/recovery harness for the iqbd scoring daemon.
//
// Repeatedly boots iqbd with a checkpoint state dir, lets it score,
// SIGKILLs it mid-cycle at a randomized (seeded) moment, optionally
// corrupts checkpoint files (truncation, bit flips), restarts, and
// asserts the durability invariants end to end:
//
//   1. never a torn snapshot: every 200 /scores response parses as a
//      complete JSON document with a "regions" array;
//   2. monotone recovery: absent injected corruption, the recovered
//      cycle counter never decreases across kill/restart;
//   3. convergence: after every restart /readyz reaches 200 — first
//      "recovered" (stale checkpoint) when one exists, then "ready"
//      (fresh cycle) — within the boot timeout;
//   4. corruption is contained: a truncated or bit-flipped newest
//      checkpoint is skipped (the daemon falls back to an older
//      generation or starts unready) and never crashes the daemon or
//      serves unparsable scores;
//   5. wipe survival (--wipe-every N with --peer-port): every Nth kill
//      also rm -rf's the state dir — total disk loss. The harness runs
//      a static replication peer, the main daemon pushes checkpoints
//      to it (--replicate-to), and after the wipe the reborn daemon
//      must bootstrap from the peer's replica: /readyz resumes the
//      pre-wipe cycle ordinal sequence instead of restarting at 1.
//
// Exit 0 iff every invariant held across all iterations. This is the
// tool the CI chaos-smoke job runs; it is also useful interactively:
//
//   iqb_chaos --iqbd build/tools/iqbd --records records.csv --iterations 20
//   iqb_chaos --iqbd build/tools/iqbd --records records.csv \
//             --peer-port 18991 --wipe-every 3 --iterations 9
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "iqb/util/fs.hpp"
#include "iqb/util/json.hpp"
#include "iqb/util/rng.hpp"
#include "iqb/util/strings.hpp"
#include "testsupport/http_get.hpp"

namespace {

using iqb::testsupport::http_get;
using iqb::testsupport::HttpResult;

struct ChaosOptions {
  std::string iqbd_path;
  std::string records_path;
  std::string state_dir;
  int iterations = 20;
  std::uint16_t port = 18990;
  std::uint64_t interval_ms = 100;
  std::uint64_t seed = 1;
  int corrupt_every = 5;  ///< Corrupt checkpoints every Nth kill; 0: never.
  int wipe_every = 0;     ///< rm -rf the state dir every Nth kill; 0: never.
  std::uint16_t peer_port = 0;  ///< Spawn a replication peer; 0: none.
  bool keep_state = false;
  double boot_timeout_s = 20.0;
};

constexpr const char* kUsage =
    "usage: iqb_chaos --iqbd PATH --records FILE.csv\n"
    "                 [--state-dir DIR] [--iterations N] [--port N]\n"
    "                 [--interval-ms N] [--seed S] [--corrupt-every N]\n"
    "                 [--wipe-every N] [--peer-port N]\n"
    "                 [--keep-state true]\n"
    "--peer-port spawns a second iqbd as a static replication peer and\n"
    "points the main daemon's --replicate-to at it; --wipe-every N\n"
    "(requires --peer-port) erases the whole state dir on every Nth\n"
    "kill and asserts the daemon bootstraps back from the peer.\n"
    "exit codes: 0 all invariants held, 1 usage error, 2 invariant "
    "violated\n";

bool parse_args(int argc, char** argv, ChaosOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (!iqb::util::starts_with(key, "--") || i + 1 >= argc) return false;
    const std::string value = argv[++i];
    const std::string name = key.substr(2);
    auto as_int = [&](std::int64_t lo, std::int64_t hi, std::int64_t& out) {
      auto parsed = iqb::util::parse_int(value);
      if (!parsed.ok() || parsed.value() < lo || parsed.value() > hi) {
        return false;
      }
      out = parsed.value();
      return true;
    };
    std::int64_t n = 0;
    if (name == "iqbd") {
      options.iqbd_path = value;
    } else if (name == "records") {
      options.records_path = value;
    } else if (name == "state-dir") {
      options.state_dir = value;
    } else if (name == "keep-state") {
      options.keep_state = value == "true";
    } else if (name == "iterations" && as_int(1, 100000, n)) {
      options.iterations = static_cast<int>(n);
    } else if (name == "port" && as_int(1, 65535, n)) {
      options.port = static_cast<std::uint16_t>(n);
    } else if (name == "interval-ms" && as_int(1, 3600000, n)) {
      options.interval_ms = static_cast<std::uint64_t>(n);
    } else if (name == "seed" && as_int(0, INT64_MAX, n)) {
      options.seed = static_cast<std::uint64_t>(n);
    } else if (name == "corrupt-every" && as_int(0, 100000, n)) {
      options.corrupt_every = static_cast<int>(n);
    } else if (name == "wipe-every" && as_int(0, 100000, n)) {
      options.wipe_every = static_cast<int>(n);
    } else if (name == "peer-port" && as_int(1, 65535, n)) {
      options.peer_port = static_cast<std::uint16_t>(n);
    } else {
      return false;
    }
  }
  if (options.wipe_every > 0 && options.peer_port == 0) {
    std::cerr << "--wipe-every needs --peer-port: a wiped daemon can only "
                 "recover from a replica\n";
    return false;
  }
  return !options.iqbd_path.empty() && !options.records_path.empty();
}

/// Spawn an iqbd with the given argv; returns the child pid or -1.
/// The child's stdout/stderr go to `log_path` (appended) so harness
/// output stays readable.
pid_t spawn_daemon(std::vector<std::string> args,
                   const std::string& log_path) {
  // Flush before fork so the child's freopen cannot re-emit buffered
  // harness output into our (possibly piped) stdout.
  std::cout.flush();
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child: redirect output, exec.
  FILE* log = std::freopen(log_path.c_str(), "a", stderr);
  if (log) std::freopen(log_path.c_str(), "a", stdout);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  std::perror("execv iqbd");
  _exit(127);
}

/// Argv for the daemon under test. With a peer configured it pushes
/// every cycle's checkpoint there and can bootstrap back after a wipe.
std::vector<std::string> main_daemon_args(const ChaosOptions& options) {
  std::vector<std::string> args = {
      options.iqbd_path,
      "--records", options.records_path,
      "--state-dir", options.state_dir,
      "--port", std::to_string(options.port),
      "--interval-ms", std::to_string(options.interval_ms),
      "--poll-ms", "20",
  };
  if (options.peer_port != 0) {
    args.insert(args.end(),
                {"--replicate-to", "127.0.0.1:" + std::to_string(options.peer_port),
                 "--node-id", "chaos"});
  }
  return args;
}

/// Argv for the static replication peer: it exists to serve
/// /checkpointz and store the main daemon's replicas, so its own
/// scoring loop idles on a huge interval.
std::vector<std::string> peer_daemon_args(const ChaosOptions& options,
                                          const std::string& peer_dir) {
  return {
      options.iqbd_path,
      "--records", options.records_path,
      "--state-dir", peer_dir,
      "--port", std::to_string(options.peer_port),
      "--interval-ms", "3600000",
      "--poll-ms", "20",
      "--node-id", "peer",
  };
}

bool process_alive(pid_t pid) {
  int status = 0;
  return ::waitpid(pid, &status, WNOHANG) == 0;
}

void kill_hard(pid_t pid) {
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

struct ReadyState {
  bool ok = false;
  std::string status;  ///< "recovered" | "ready".
  bool stale = false;
  std::uint64_t cycle = 0;
};

ReadyState poll_readyz(std::uint16_t port, pid_t pid, double timeout_s,
                       const std::string& want_status) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  ReadyState state;
  while (std::chrono::steady_clock::now() < deadline) {
    if (!process_alive(pid)) return state;  // daemon died: invariant 4
    const HttpResult response = http_get(port, "/readyz");
    if (response.status == 200) {
      auto parsed = iqb::util::parse_json(response.body);
      if (parsed.ok()) {
        state.status = parsed->get_string("status").value_or("");
        auto stale = parsed->get_bool("stale");
        state.stale = stale.ok() && stale.value();
        auto cycle = parsed->get_number("cycle");
        state.cycle =
            cycle.ok() ? static_cast<std::uint64_t>(cycle.value()) : 0;
        if (want_status.empty() || state.status == want_status) {
          state.ok = true;
          return state;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return state;
}

/// Invariant 1: a served scores document is complete, parsable JSON.
bool scores_intact(std::uint16_t port) {
  const HttpResult response = http_get(port, "/scores");
  if (response.status != 200) return true;  // 503 unready is fine
  auto parsed = iqb::util::parse_json(response.body);
  return parsed.ok() && parsed->contains("regions");
}

/// Newest checkpoint file in the state dir, if any.
std::string newest_checkpoint(const std::string& dir) {
  std::string newest;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (iqb::util::starts_with(name, "checkpoint-") &&
        iqb::util::ends_with(name, ".ckpt") &&
        entry.path().string() > newest) {
      newest = entry.path().string();
    }
  }
  return newest;
}

/// Alternate truncation and bit-flip corruption on the newest file.
bool corrupt_newest_checkpoint(const std::string& dir, iqb::util::Rng& rng) {
  const std::string target = newest_checkpoint(dir);
  if (target.empty()) return false;
  auto data = iqb::util::fs::read_file(target);
  if (!data.ok() || data->empty()) return false;
  std::string mutated = *data;
  if (rng.next_u64() % 2 == 0) {
    mutated.resize(mutated.size() / 2);  // torn write / truncation
    std::cout << "  corrupting (truncate) "
              << std::filesystem::path(target).filename().string() << "\n";
  } else {
    const std::size_t at =
        static_cast<std::size_t>(rng.next_u64() % mutated.size());
    mutated[at] = static_cast<char>(mutated[at] ^ 0x20);  // bit rot
    std::cout << "  corrupting (bit-flip) "
              << std::filesystem::path(target).filename().string() << "\n";
  }
  std::ofstream out(target, std::ios::binary | std::ios::trunc);
  out << mutated;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  ChaosOptions options;
  if (!parse_args(argc, argv, options)) {
    std::cerr << kUsage;
    return 1;
  }
  if (options.state_dir.empty()) {
    options.state_dir =
        (std::filesystem::temp_directory_path() /
         ("iqb_chaos_state_" + std::to_string(::getpid())))
            .string();
  }
  std::filesystem::create_directories(options.state_dir);
  // The log lives beside (not inside) the state dir: --wipe-every
  // erases the dir wholesale and must not eat the daemon's logs.
  const std::string log_path = options.state_dir + ".iqbd.log";

  // Static replication peer, spawned once and left running across
  // every kill of the main daemon.
  pid_t peer_pid = -1;
  std::string peer_dir;
  if (options.peer_port != 0) {
    peer_dir = options.state_dir + "_peer";
    std::filesystem::create_directories(peer_dir);
    peer_pid = spawn_daemon(peer_daemon_args(options, peer_dir),
                            peer_dir + ".iqbd.log");
    if (peer_pid < 0) {
      std::cerr << "fork failed for peer\n";
      return 2;
    }
    const ReadyState peer_ready =
        poll_readyz(options.peer_port, peer_pid, options.boot_timeout_s, "");
    if (!peer_ready.ok) {
      std::cerr << "replication peer never came up on port "
                << options.peer_port << "\n";
      kill_hard(peer_pid);
      return 2;
    }
    std::cout << "replication peer serving on 127.0.0.1:"
              << options.peer_port << "\n";
  }

  iqb::util::Rng rng(options.seed);
  std::uint64_t max_cycle_seen = 0;  ///< Highest persisted-and-served cycle.
  bool corrupted_since_kill = false;
  bool wiped_since_kill = false;
  int wipes = 0;
  int violations = 0;
  auto violation = [&](const std::string& what) {
    std::cerr << "INVARIANT VIOLATED: " << what << "\n";
    ++violations;
  };

  for (int iteration = 1; iteration <= options.iterations; ++iteration) {
    std::cout << "iteration " << iteration << "/" << options.iterations
              << (corrupted_since_kill ? " (post-corruption)" : "")
              << (wiped_since_kill ? " (post-wipe)" : "") << "\n";
    const pid_t pid = spawn_daemon(main_daemon_args(options), log_path);
    if (pid < 0) {
      std::cerr << "fork failed\n";
      return 2;
    }

    // Phase 1: converge to serving. With surviving checkpoints the
    // daemon serves "recovered" immediately; either way it must reach
    // "ready" (a fresh cycle) before the boot timeout.
    const ReadyState recovered =
        poll_readyz(options.port, pid, options.boot_timeout_s, "");
    if (!recovered.ok) {
      violation("daemon never reached a serving /readyz (iteration " +
                std::to_string(iteration) + ")");
      if (process_alive(pid)) kill_hard(pid);
      break;
    }
    if (max_cycle_seen > 0 && !corrupted_since_kill && !wiped_since_kill &&
        recovered.cycle < max_cycle_seen) {
      violation("recovered cycle " + std::to_string(recovered.cycle) +
                " went backwards (previous max " +
                std::to_string(max_cycle_seen) + ")");
    }
    if (!scores_intact(options.port)) {
      violation("/scores served a torn or unparsable document after boot");
    }
    const ReadyState fresh =
        poll_readyz(options.port, pid, options.boot_timeout_s, "ready");
    if (!fresh.ok || fresh.stale) {
      violation("readyz never converged from recovered to fresh");
    } else if (fresh.cycle < recovered.cycle) {
      violation("fresh cycle " + std::to_string(fresh.cycle) +
                " below recovered cycle " + std::to_string(recovered.cycle));
    } else {
      // Invariant 5: a wiped daemon lost every local byte, so resuming
      // the ordinal sequence (instead of restarting at cycle 1) proves
      // it bootstrapped from the peer's replica. The replica may trail
      // the last served cycle by the one in-flight push the kill raced,
      // which the first fresh cycle makes up — hence >= max, not >.
      if (wiped_since_kill && fresh.cycle < max_cycle_seen) {
        violation("post-wipe cycle " + std::to_string(fresh.cycle) +
                  " below pre-wipe max " + std::to_string(max_cycle_seen) +
                  ": peer bootstrap did not happen");
      } else if (wiped_since_kill) {
        std::cout << "  wipe survived: resumed at cycle " << fresh.cycle
                  << " (pre-wipe max " << std::to_string(max_cycle_seen)
                  << ", recovered from "
                  << (recovered.status == "recovered" ? "peer replica"
                                                      : "fresh cycle")
                  << ")\n";
      }
      max_cycle_seen = fresh.cycle;
    }
    corrupted_since_kill = false;
    wiped_since_kill = false;

    // Phase 2: let it score a random while, scraping for torn
    // snapshots, then kill -9 mid-cycle.
    const int scrapes = 2 + static_cast<int>(rng.next_u64() % 4);
    for (int scrape = 0; scrape < scrapes; ++scrape) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          static_cast<std::uint64_t>(rng.uniform(10.0, 120.0))));
      if (!scores_intact(options.port)) {
        violation("/scores served a torn document mid-run");
      }
      const ReadyState now = poll_readyz(options.port, pid, 2.0, "");
      if (now.ok && now.status == "ready" && now.cycle > max_cycle_seen) {
        max_cycle_seen = now.cycle;
      }
    }
    kill_hard(pid);

    // Phase 3a: every Nth kill is a kill-AND-wipe — the disk is gone,
    // only the peer's replica survives. Wipe and corruption are
    // mutually exclusive per iteration (nothing left to corrupt).
    if (options.wipe_every > 0 && iteration % options.wipe_every == 0 &&
        iteration != options.iterations) {
      std::error_code ec;
      std::filesystem::remove_all(options.state_dir, ec);
      std::filesystem::create_directories(options.state_dir);
      wiped_since_kill = true;
      ++wipes;
      std::cout << "  wiped state dir (" << options.state_dir << ")\n";
    } else if (options.corrupt_every > 0 &&
               iteration % options.corrupt_every == 0 &&
               iteration != options.iterations) {
      // Phase 3b: occasionally corrupt the newest checkpoint so
      // recovery exercises the skip-and-fall-back path.
      corrupted_since_kill =
          corrupt_newest_checkpoint(options.state_dir, rng);
    }
  }

  std::cout << "chaos run complete: " << options.iterations
            << " kill/restart iterations, " << wipes
            << " state wipes, max cycle " << max_cycle_seen
            << ", violations " << violations << "\n";
  if (peer_pid > 0) kill_hard(peer_pid);
  if (!options.keep_state) {
    std::error_code ec;
    std::filesystem::remove_all(options.state_dir, ec);
    std::filesystem::remove(log_path, ec);
    if (!peer_dir.empty()) {
      std::filesystem::remove_all(peer_dir, ec);
      std::filesystem::remove(peer_dir + ".iqbd.log", ec);
    }
  }
  return violations == 0 ? 0 : 2;
}
