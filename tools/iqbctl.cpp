// iqbctl — command-line front end for the IQB framework. All logic
// lives in iqb::cli (src/iqb/cli/) so it is unit-testable; this file
// only adapts argv and the standard streams.
#include <iostream>
#include <string>
#include <vector>

#include "iqb/cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> tokens(argv + 1, argv + argc);
  return iqb::cli::run_command(tokens, std::cout, std::cerr);
}
