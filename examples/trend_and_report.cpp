// Decision-maker workflow: score a synthetic country over three
// months of weekly data, detect per-region trends, analyze
// responsiveness (working latency / RPM), and write a self-contained
// HTML report.
//
//   $ ./trend_and_report [out.html]
#include <cstdio>

#include "iqb/core/pipeline.hpp"
#include "iqb/core/responsiveness.hpp"
#include "iqb/core/trend.hpp"
#include "iqb/datasets/synthetic.hpp"
#include "iqb/report/html.hpp"
#include "iqb/report/render.hpp"

using namespace iqb;

int main(int argc, char** argv) {
  const std::string html_path = argc > 1 ? argv[1] : "iqb_report.html";

  // Build 13 weeks of data. Two regions evolve: the DSL town gets a
  // fiber build-out (improving); the LTE region degrades under load.
  util::Rng rng(20250706);
  datasets::RecordStore store;
  const auto base = util::Timestamp::parse("2025-01-06").value();
  for (int week = 0; week < 13; ++week) {
    for (datasets::RegionProfile profile :
         datasets::example_region_profiles()) {
      if (profile.region == "small_town_dsl") {
        profile.median_download_mbps += 18.0 * week;  // fiber build-out
        profile.base_latency_ms =
            std::max(8.0, profile.base_latency_ms - 1.2 * week);
      } else if (profile.region == "urban_lte") {
        profile.median_download_mbps =
            std::max(8.0, profile.median_download_mbps - 4.0 * week);
        profile.lossy_test_fraction =
            std::min(1.0, profile.lossy_test_fraction + 0.03 * week);
      }
      datasets::SyntheticConfig config;
      config.records_per_dataset = 60;
      config.base_time = base + static_cast<std::int64_t>(week) * 7 * 86400;
      config.spacing_s = 900;
      store.add_all(datasets::generate_region_records(
          profile, datasets::default_dataset_panel(), config, rng));
    }
  }
  std::printf("Built %zu records over 13 weeks\n\n", store.size());

  const core::IqbConfig config = core::IqbConfig::paper_defaults();

  // --- current snapshot -----------------------------------------------
  core::Pipeline pipeline(config);
  auto snapshot = pipeline.run(store);
  std::printf("%s\n", report::comparison_table(snapshot.results).c_str());

  // --- trends ----------------------------------------------------------
  auto trends = core::analyze_trends(store, config);
  if (trends.ok()) {
    std::printf("Trends (weekly windows, OLS slope of the high score):\n");
    for (const auto& trend : *trends) {
      std::printf("  %-18s %-10s slope %+0.4f/day  (%.3f -> %.3f over %zu weeks)\n",
                  trend.region.c_str(),
                  std::string(core::trend_direction_name(trend.direction)).c_str(),
                  trend.slope_per_day, trend.first_score, trend.last_score,
                  trend.windows.size());
    }
  }

  // --- responsiveness ---------------------------------------------------
  auto responsiveness = core::analyze_responsiveness(store);
  if (responsiveness.ok()) {
    std::printf("\nResponsiveness (working latency, RPM):\n");
    for (const auto& report : *responsiveness) {
      std::printf("  %-18s %-9s mean RPM %7.0f", report.region.c_str(),
                  std::string(core::rpm_rating_name(report.overall)).c_str(),
                  report.mean_rpm);
      for (const auto& cell : report.cells) {
        std::printf("  [%s: %0.0fms load, +%0.0fms bloat]",
                    cell.dataset.c_str(), cell.working_ms, cell.bufferbloat_ms);
      }
      std::printf("\n");
    }
  }

  // --- HTML artifact ----------------------------------------------------
  report::HtmlOptions options;
  options.title = "IQB quarterly review (synthetic country)";
  auto written = report::write_html(html_path, snapshot.results, options);
  if (written.ok()) {
    std::printf("\nHTML report written to %s\n", html_path.c_str());
  } else {
    std::fprintf(stderr, "HTML write failed: %s\n",
                 written.error().to_string().c_str());
    return 1;
  }
  return 0;
}
