// Quickstart: score one region from a handful of inline measurement
// records using the published IQB configuration.
//
//   $ ./quickstart
//
// Walks the three tiers of Fig. 1 explicitly: records (datasets tier)
// -> 95th-percentile aggregates (network requirements tier) -> IQB
// score (use cases tier).
#include <cstdio>

#include "iqb/core/pipeline.hpp"
#include "iqb/report/render.hpp"

using namespace iqb;

namespace {

datasets::MeasurementRecord make_record(const std::string& dataset,
                                        double down_mbps, double up_mbps,
                                        double latency_ms, double loss_fraction,
                                        bool include_loss) {
  datasets::MeasurementRecord record;
  record.dataset = dataset;
  record.region = "my_town";
  record.isp = "local_isp";
  record.subscriber_id = "me";
  record.timestamp = util::Timestamp::parse("2025-03-01T12:00:00Z").value();
  record.download = util::Mbps(down_mbps);
  record.upload = util::Mbps(up_mbps);
  record.latency = util::Millis(latency_ms);
  if (include_loss) record.loss = util::LossRate(loss_fraction);
  return record;
}

}  // namespace

int main() {
  // 1. Datasets tier: a week of speed tests from three sources. The
  //    tools disagree slightly — that is expected and handled.
  datasets::RecordStore store;
  const double days[7] = {118, 122, 95, 130, 125, 88, 121};
  for (double down : days) {
    (void)store.add(make_record("ndt", down * 0.85, 21, 19.5, 0.001, true));
    (void)store.add(make_record("cloudflare", down * 0.95, 23, 21.0, 0.002, true));
    (void)store.add(make_record("ookla", down, 24, 18.0, 0.0, false));
  }
  std::printf("Loaded %zu records from %zu datasets\n", store.size(),
              store.dataset_names().size());

  // 2. The published framework: Fig. 2 thresholds, Table 1 weights,
  //    95th-percentile aggregation.
  core::Pipeline pipeline(core::IqbConfig::paper_defaults());
  auto output = pipeline.run(store);
  if (output.results.empty()) {
    std::fprintf(stderr, "no region could be scored\n");
    for (const auto& reason : output.skipped) {
      std::fprintf(stderr, "  %s\n", reason.to_string().c_str());
    }
    return 1;
  }

  // 3. The result: composite score, per-use-case breakdown, grade.
  const core::RegionResult& result = output.results.front();
  std::printf("%s\n", report::scorecard(result).c_str());
  std::printf("IQB score (high quality): %.3f -> grade %s\n",
              result.high.iqb_score,
              std::string(core::grade_name(result.grade)).c_str());
  return 0;
}
