// Sensitivity analysis: how robust is a region's IQB score to the
// framework's design choices? Runs the full SensitivityAnalyzer on a
// synthetic mid-tier region and prints:
//   - the ±1 weight perturbations with the largest effect,
//   - leave-one-dataset-out scores (the corroboration check),
//   - the aggregation percentile sweep (the paper's "95th" choice),
//   - threshold scaling per requirement.
//
//   $ ./sensitivity_report [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "iqb/core/sensitivity.hpp"
#include "iqb/datasets/synthetic.hpp"

using namespace iqb;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 11;

  // A region near the thresholds, where design choices matter most.
  util::Rng rng(seed);
  datasets::RecordStore store;
  datasets::RegionProfile profile;
  profile.region = "border_town";
  profile.median_download_mbps = 110.0;
  profile.upload_ratio = 0.2;
  profile.base_latency_ms = 35.0;
  profile.latency_mu = 2.2;
  profile.lossy_test_fraction = 0.35;
  datasets::SyntheticConfig config;
  config.records_per_dataset = 400;
  store.add_all(datasets::generate_region_records(
      profile, datasets::default_dataset_panel(), config, rng));

  core::SensitivityAnalyzer analyzer(core::IqbConfig::paper_defaults(), store);
  auto report = analyzer.analyze("border_town");
  if (!report.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 report.error().to_string().c_str());
    return 1;
  }

  std::printf("Sensitivity report for region '%s' (high quality)\n",
              report->region.c_str());
  std::printf("Baseline IQB score: %.4f\n\n", report->baseline_score);

  // Top weight perturbations by |shift|.
  auto perturbations = report->weight_perturbations;
  std::sort(perturbations.begin(), perturbations.end(),
            [](const auto& a, const auto& b) {
              return std::abs(a.shift) > std::abs(b.shift);
            });
  std::printf("Largest +/-1 weight perturbations (Table 1 entries):\n");
  const std::size_t top = std::min<std::size_t>(8, perturbations.size());
  for (std::size_t i = 0; i < top; ++i) {
    const auto& p = perturbations[i];
    std::printf("  %-20s %-22s %+d  -> %.4f (shift %+.4f)\n",
                std::string(core::use_case_name(p.use_case)).c_str(),
                std::string(core::requirement_name(p.requirement)).c_str(),
                p.delta, p.score, p.shift);
  }

  std::printf("\nLeave-one-dataset-out (corroboration check):\n");
  for (const auto& ablation : report->dataset_ablations) {
    std::printf("  without %-11s -> %.4f (shift %+.4f)\n",
                ablation.removed_dataset.c_str(), ablation.score,
                ablation.shift);
  }

  std::printf("\nAggregation percentile sweep (paper default: 95):\n");
  for (const auto& point : report->percentile_sweep) {
    std::printf("  p%-3.0f -> %.4f\n", point.percentile, point.score);
  }

  std::printf("\nThreshold scaling per requirement:\n");
  for (const auto& point : report->threshold_scaling) {
    std::printf("  %-22s x%-4.2f -> %.4f (shift %+.4f)\n",
                std::string(core::requirement_name(point.requirement)).c_str(),
                point.factor, point.score, point.shift);
  }
  return 0;
}
