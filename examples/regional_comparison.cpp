// Regional comparison: generate a six-region synthetic country with
// the fast statistical generator, score every region with the
// published IQB configuration, and print a comparison table plus a
// scorecard per region.
//
//   $ ./regional_comparison [records_per_dataset] [seed]
#include <cstdio>
#include <cstdlib>

#include "iqb/core/pipeline.hpp"
#include "iqb/datasets/io.hpp"
#include "iqb/datasets/synthetic.hpp"
#include "iqb/report/render.hpp"

using namespace iqb;

int main(int argc, char** argv) {
  const std::size_t records_per_dataset =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 400;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 2025;

  // Build the synthetic country: six regions from urban fiber to GEO
  // satellite, three datasets each with its own measurement bias.
  util::Rng rng(seed);
  datasets::RecordStore store;
  datasets::SyntheticConfig config;
  config.records_per_dataset = records_per_dataset;
  config.base_time = util::Timestamp::parse("2025-03-01").value();
  const auto panel = datasets::default_dataset_panel();
  for (const auto& profile : datasets::example_region_profiles()) {
    store.add_all(
        datasets::generate_region_records(profile, panel, config, rng));
  }
  std::printf("Generated %zu records across %zu regions x %zu datasets\n\n",
              store.size(), store.regions().size(), panel.size());

  core::Pipeline pipeline(core::IqbConfig::paper_defaults());
  auto output = pipeline.run(store);

  std::printf("%s\n", report::comparison_table(output.results).c_str());
  for (const auto& result : output.results) {
    std::printf("%s\n", report::scorecard(result).c_str());
  }
  for (const auto& skipped : output.skipped) {
    std::printf("skipped: %s\n", skipped.to_string().c_str());
  }

  // Machine-readable exports alongside the console report.
  std::printf("JSON results:\n%s\n",
              report::to_json(output.results).dump(2).c_str());
  return 0;
}
