// Adapting the framework (paper §4: "IQB is designed to be easily
// adapted"): build a custom configuration for a cloud-gaming-first
// audience — stricter latency thresholds, gaming weighted far above
// everything else, and trust shifted toward the loss-reporting
// datasets — then compare against the published defaults on the same
// data.
//
//   $ ./custom_use_case
#include <cstdio>

#include "iqb/core/pipeline.hpp"
#include "iqb/datasets/synthetic.hpp"
#include "iqb/report/render.hpp"

using namespace iqb;
using core::QualityLevel;
using core::Requirement;
using core::UseCase;

int main() {
  // Shared data: a decent cable region. Low latency is its weak spot.
  util::Rng rng(7);
  datasets::RecordStore store;
  datasets::RegionProfile profile;
  profile.region = "cable_city";
  profile.median_download_mbps = 300.0;
  profile.upload_ratio = 0.1;
  profile.base_latency_ms = 25.0;
  profile.latency_mu = 2.6;  // heavy jitter tail
  profile.latency_sigma = 0.7;
  profile.lossy_test_fraction = 0.3;
  datasets::SyntheticConfig data_config;
  data_config.records_per_dataset = 500;
  store.add_all(datasets::generate_region_records(
      profile, datasets::default_dataset_panel(), data_config, rng));

  // Configuration A: the published framework.
  const core::IqbConfig paper = core::IqbConfig::paper_defaults();

  // Configuration B: cloud-gaming barometer.
  core::IqbConfig gaming = core::IqbConfig::paper_defaults();
  // Gaming is what this audience cares about; background use cases
  // still count, but barely.
  for (UseCase use_case : core::kAllUseCases) {
    (void)gaming.weights.set_use_case_weight(use_case, 1);
  }
  (void)gaming.weights.set_use_case_weight(UseCase::kGaming, 5);
  (void)gaming.weights.set_use_case_weight(UseCase::kVideoConferencing, 3);
  // Cloud gaming is a video stream driven by inputs: 35 ms is already
  // noticeable, 15 ms is the high bar; loss shows up as frame drops.
  (void)gaming.thresholds.set(UseCase::kGaming, Requirement::kLatency,
                              QualityLevel::kMinimum, 35.0);
  (void)gaming.thresholds.set(UseCase::kGaming, Requirement::kLatency,
                              QualityLevel::kHigh, 15.0);
  (void)gaming.thresholds.set(UseCase::kGaming, Requirement::kPacketLoss,
                              QualityLevel::kMinimum, 0.005);
  (void)gaming.thresholds.set(UseCase::kGaming, Requirement::kPacketLoss,
                              QualityLevel::kHigh, 0.0005);
  // Downstream bandwidth for a 4K stream.
  (void)gaming.thresholds.set(UseCase::kGaming, Requirement::kDownloadThroughput,
                              QualityLevel::kMinimum, 35.0);
  // Trust only datasets that actually measure loss for the loss
  // requirement (weight ookla's absent loss readings to zero anyway,
  // and lean on ndt which measures it at the TCP level).
  (void)gaming.weights.set_dataset_weight(UseCase::kGaming,
                                          Requirement::kPacketLoss, "ndt", 3);
  if (auto valid = gaming.validate(); !valid.ok()) {
    std::fprintf(stderr, "invalid config: %s\n",
                 valid.error().to_string().c_str());
    return 1;
  }

  auto paper_result = core::Pipeline(paper).run(store);
  auto gaming_result = core::Pipeline(gaming).run(store);
  if (paper_result.results.empty() || gaming_result.results.empty()) {
    std::fprintf(stderr, "scoring failed\n");
    return 1;
  }

  std::printf("=== Published IQB configuration ===\n%s\n",
              report::scorecard(paper_result.results.front()).c_str());
  std::printf("=== Cloud-gaming configuration ===\n%s\n",
              report::scorecard(gaming_result.results.front()).c_str());
  std::printf(
      "Same region, same measurements: IQB %.3f under the published "
      "weights vs %.3f under the cloud-gaming lens.\n",
      paper_result.results.front().high.iqb_score,
      gaming_result.results.front().high.iqb_score);

  // Persist the custom configuration for reuse.
  const std::string path = "cloud_gaming_iqb.json";
  if (gaming.save(path).ok()) {
    std::printf("Custom configuration written to %s\n", path.c_str());
  }
  return 0;
}
