// Packet-level measurement campaign: the high-fidelity path through
// the framework. Synthesizes three regional subscriber populations
// (fiber/cable metro, mixed suburban, wireless/satellite rural), runs
// the three simulated test tools (NDT-style, Ookla-style,
// Cloudflare-style) over a discrete-event network simulation, feeds
// the sessions through the dataset adapters, and scores the regions.
//
//   $ ./measurement_campaign [subscribers_per_region] [tests_per_tool]
//
// Runtime scales with both arguments; the defaults finish in tens of
// seconds.
#include <cstdio>
#include <cstdlib>

#include "iqb/core/pipeline.hpp"
#include "iqb/datasets/io.hpp"
#include "iqb/measurement/adapters.hpp"
#include "iqb/measurement/campaign.hpp"
#include "iqb/measurement/cloudflare_style.hpp"
#include "iqb/measurement/ndt.hpp"
#include "iqb/measurement/ookla_style.hpp"
#include "iqb/measurement/population.hpp"
#include "iqb/report/render.hpp"
#include "iqb/util/log.hpp"

using namespace iqb;

int main(int argc, char** argv) {
  const std::size_t subscribers =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 6;
  const std::size_t tests_per_tool =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 2;

  util::set_log_level(util::LogLevel::kInfo);

  measurement::CampaignConfig config;
  config.seed = 20250301;
  config.tests_per_tool = tests_per_tool;
  config.base_time = util::Timestamp::parse("2025-03-01").value();
  measurement::Campaign campaign(config);
  campaign.add_client(std::make_shared<measurement::NdtClient>());
  campaign.add_client(std::make_shared<measurement::OoklaStyleClient>());
  campaign.add_client(std::make_shared<measurement::CloudflareStyleClient>());

  util::Rng rng(config.seed);
  for (const auto& plan : measurement::example_region_plans(subscribers)) {
    for (auto& subscriber : measurement::generate_population(plan, rng)) {
      campaign.add_subscriber(std::move(subscriber));
    }
  }

  std::printf("Running campaign: %zu subscribers x 3 tools x %zu tests...\n",
              subscribers * 3, tests_per_tool);
  const auto sessions = campaign.run();
  std::printf("Campaign produced %zu sessions (%zu failed)\n\n",
              sessions.size(), campaign.failed_sessions());

  // Sessions -> per-dataset measurement records.
  datasets::RecordStore store;
  store.add_all(measurement::convert_sessions_default(sessions));
  std::printf("Dataset records: %zu across datasets:", store.size());
  for (const auto& name : store.dataset_names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  // Score with the published framework.
  core::Pipeline pipeline(core::IqbConfig::paper_defaults());
  auto output = pipeline.run(store);
  std::printf("%s\n", report::comparison_table(output.results).c_str());
  for (const auto& result : output.results) {
    std::printf("%s\n", report::scorecard(result).c_str());
  }

  // Save the raw records so the scoring-only examples can reuse them.
  const std::string path = "campaign_records.csv";
  if (datasets::write_records_csv(path, store.records()).ok()) {
    std::printf("Raw records written to %s\n", path.c_str());
  }
  return 0;
}
